"""Circuit-level MOSFET instance wrapping the EKV model core.

The EKV core in :mod:`repro.devices.ekv` works in a polarity-normalized
frame (``Vgs, Vds >= 0`` in normal operation for both device types).  This
module performs the mapping between circuit node voltages and that frame,
and exposes the quantities the MNA solver needs:

* ``i_ds`` -- the current flowing from the *drain node* through the device
  to the *source node* in the circuit frame (negative for PMOS in normal
  operation, since the channel current physically flows source-to-drain);
* the Jacobian entries ``d i_ds / d {vg, vd, vs}``.

A convenient identity falls out of the polarity algebra: the circuit-frame
Jacobian entries equal the normalized ``gm``/``gds`` for both polarities::

    d i_ds/d vg = gm,   d i_ds/d vd = gds,   d i_ds/d vs = -(gm + gds)

so the small-signal (AC) stamps are polarity independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ekv import EKVModel, SmallSignal
from .params import TechParams

__all__ = ["MOSFET", "OperatingPoint"]


@dataclass(frozen=True)
class OperatingPoint:
    """DC operating point of one MOSFET in the normalized frame."""

    vgs: float
    vds: float
    small_signal: SmallSignal
    inversion_coefficient: float
    saturated: bool

    @property
    def region(self) -> str:
        """Inversion region name: ``weak``, ``moderate`` or ``strong``."""
        if self.inversion_coefficient < 1.0:
            return "weak"
        if self.inversion_coefficient <= 10.0:
            return "moderate"
        return "strong"


@dataclass
class MOSFET:
    """One MOSFET instance: name, terminals, geometry and model.

    Terminals are node names in the owning :class:`~repro.spice.netlist.Circuit`.
    The bulk terminal is tied to the source (as in the paper's LUT, which is
    indexed only by ``Vgs`` and ``Vds``).
    """

    name: str
    drain: str
    gate: str
    source: str
    tech: TechParams
    width: float
    length: float
    model: EKVModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError(
                f"{self.name}: width and length must be positive "
                f"(W={self.width}, L={self.length})"
            )
        self.model = EKVModel(self.tech)

    # ------------------------------------------------------------------
    # Frame mapping
    # ------------------------------------------------------------------
    def normalized_bias(self, vd: float, vg: float, vs: float) -> tuple[float, float]:
        """Map circuit-frame terminal voltages to normalized ``(vgs, vds)``."""
        pol = self.tech.polarity
        return pol * (vg - vs), pol * (vd - vs)

    # ------------------------------------------------------------------
    # Nonlinear DC quantities (circuit frame)
    # ------------------------------------------------------------------
    def ids(self, vd: float, vg: float, vs: float) -> float:
        """Drain-to-source channel current in the circuit frame (A)."""
        vgs, vds = self.normalized_bias(vd, vg, vs)
        return self.tech.polarity * float(
            self.model.drain_current(vgs, vds, self.width, self.length)
        )

    def conductances(self, vd: float, vg: float, vs: float) -> tuple[float, float]:
        """Normalized ``(gm, gds)`` at the bias point (polarity-independent)."""
        vgs, vds = self.normalized_bias(vd, vg, vs)
        gm = float(self.model.transconductance(vgs, vds, self.width, self.length))
        gds = float(self.model.output_conductance(vgs, vds, self.width, self.length))
        return gm, gds

    # ------------------------------------------------------------------
    # Operating point extraction
    # ------------------------------------------------------------------
    def operating_point(self, vd: float, vg: float, vs: float) -> OperatingPoint:
        """Full operating-point bundle (small-signal params, region, sat)."""
        vgs, vds = self.normalized_bias(vd, vg, vs)
        small = self.model.small_signal(vgs, vds, self.width, self.length)
        ic = float(self.model.inversion_coefficient(vgs, vds))
        saturated = bool(self.model.is_saturated(vgs, vds))
        return OperatingPoint(
            vgs=vgs,
            vds=vds,
            small_signal=small,
            inversion_coefficient=ic,
            saturated=saturated,
        )

    def with_width(self, width: float) -> MOSFET:
        """Return a copy of this device with a different width."""
        return MOSFET(
            name=self.name,
            drain=self.drain,
            gate=self.gate,
            source=self.source,
            tech=self.tech,
            width=width,
            length=self.length,
        )

    def with_tech(self, tech: TechParams) -> MOSFET:
        """Return a copy under a different technology parameter set.

        Used by the corner machinery: a PVT corner rebuilds every device of
        a circuit with skewed ``TechParams`` (and the matching fresh
        :class:`EKVModel`) while geometry and connectivity stay shared.
        """
        return MOSFET(
            name=self.name,
            drain=self.drain,
            gate=self.gate,
            source=self.source,
            tech=tech,
            width=self.width,
            length=self.length,
        )
