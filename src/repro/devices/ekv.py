"""EKV-style long-channel MOSFET compact model.

This is the device substrate that replaces the foundry SPICE models used in
the paper.  It provides the five quantities the paper's precomputed lookup
table stores per unit width::

    [Id  gm  gds  Cds  Cgs] = f(Vgs, Vds)

The model is the classic EKV long-channel formulation (Enz-Krummenacher-
Vittoz) with a first-order channel-length-modulation term:

* normalized forward/reverse currents ``i_f = F((Vp - Vs)/Ut)`` and
  ``i_r = F((Vp - Vd)/Ut)`` with the interpolation function
  ``F(v) = ln^2(1 + e^(v/2))``, which is smooth and accurate from weak to
  strong inversion;
* pinch-off voltage ``Vp = (Vgs - Vt0) / n``;
* drain current ``Id = Ispec (i_f - i_r) clm(Vds)`` with
  ``Ispec = 2 n kp (W/L) Ut^2`` and the channel-length-modulation factor
  ``clm(Vds) = 1 + lambda * Ut * softplus(Vds/Ut)``.  The softplus form
  equals the familiar ``1 + lambda Vds`` for ``Vds >> Ut`` but stays
  positive and smooth for the negative-``Vds`` excursions Newton iterations
  take, which matters because short-channel 65 nm devices need a large
  ``lambda`` (~1/V) to reproduce the paper's low intrinsic gains.

Because ``Ispec`` is proportional to ``W`` and the capacitance terms are
built from per-width constants, every output scales linearly in width --
the property that lets the paper characterize a single reference width
(700 nm) and ratio against it (gm/Id methodology).

All functions are vectorized over numpy arrays.  Voltages are
polarity-normalized: pass ``Vgs, Vds >= 0`` for normal operation of both
NMOS and PMOS; the circuit-level wrapper in :mod:`repro.devices.mosfet`
performs the polarity mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .params import TechParams

__all__ = ["EKVModel", "SmallSignal", "interp_f", "interp_f_prime"]

ArrayLike = float | np.ndarray


def interp_f(v: ArrayLike) -> np.ndarray:
    """EKV interpolation function ``F(v) = ln^2(1 + exp(v/2))``.

    Smoothly interpolates between weak inversion (``F ~ e^v``) and strong
    inversion (``F ~ (v/2)^2``).  Implemented with ``logaddexp`` for
    numerical stability at large ``|v|``.
    """
    half = np.asarray(v, dtype=float) / 2.0
    log_term = np.logaddexp(0.0, half)
    return log_term * log_term


def interp_f_prime(v: ArrayLike) -> np.ndarray:
    """Derivative ``dF/dv = sqrt(F(v)) * sigmoid(v/2)`` of :func:`interp_f`."""
    half = np.asarray(v, dtype=float) / 2.0
    log_term = np.logaddexp(0.0, half)
    # sigmoid(half) computed stably through exp of the negative branch.
    sigmoid = np.exp(half - np.logaddexp(0.0, half))
    return log_term * sigmoid


@dataclass(frozen=True)
class SmallSignal:
    """Operating-point small-signal parameters of one device.

    All values are in SI units and refer to the device's own orientation
    (polarity-normalized); currents and conductances are non-negative in
    normal operation.
    """

    id: float
    gm: float
    gds: float
    cgs: float
    cds: float

    def as_array(self) -> np.ndarray:
        """Return ``[Id, gm, gds, Cds, Cgs]`` in the paper's LUT ordering."""
        return np.array([self.id, self.gm, self.gds, self.cds, self.cgs])


class EKVModel:
    """Evaluator for the EKV-style model over a :class:`TechParams` set."""

    #: Ordering of the vector-valued LUT outputs, matching Eq. (3).
    OUTPUT_NAMES = ("id", "gm", "gds", "cds", "cgs")

    def __init__(self, tech: TechParams):
        self.tech = tech

    # ------------------------------------------------------------------
    # Core current model
    # ------------------------------------------------------------------
    def _normalized_currents(
        self, vgs: ArrayLike, vds: ArrayLike
    ) -> tuple[np.ndarray, np.ndarray]:
        """Forward and reverse normalized currents ``(i_f, i_r)``."""
        tech = self.tech
        vp = (np.asarray(vgs, dtype=float) - tech.vt0) / tech.n_slope
        i_f = interp_f(vp / tech.ut)
        i_r = interp_f((vp - np.asarray(vds, dtype=float)) / tech.ut)
        return i_f, i_r

    def _clm(self, length: float) -> float:
        """Effective channel-length-modulation coefficient (1/V)."""
        return self.tech.lambda_l / length

    def _clm_factor(
        self, vds: ArrayLike, length: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """CLM factor ``1 + lambda*Ut*softplus(Vds/Ut)`` and its d/dVds."""
        ut = self.tech.ut
        lam = self._clm(length)
        v = np.asarray(vds, dtype=float) / ut
        softplus = np.logaddexp(0.0, v)
        sigmoid = np.exp(v - np.logaddexp(0.0, v))
        return 1.0 + lam * ut * softplus, lam * sigmoid

    def drain_current(
        self, vgs: ArrayLike, vds: ArrayLike, width: float, length: float
    ) -> np.ndarray:
        """Drain current ``Id`` (A) in polarity-normalized orientation.

        Positive for ``vds > 0`` in normal operation; the EKV formulation is
        source/drain symmetric, so negative ``vds`` yields a negative current
        (reverse conduction), which keeps Newton iterations well behaved.
        """
        i_f, i_r = self._normalized_currents(vgs, vds)
        ispec = self.tech.spec_current(width, length)
        clm, _ = self._clm_factor(vds, length)
        return ispec * (i_f - i_r) * clm

    def inversion_coefficient(
        self, vgs: ArrayLike, vds: ArrayLike
    ) -> np.ndarray:
        """Inversion coefficient ``IC = i_f`` (width independent).

        ``IC < 1`` indicates weak inversion, ``1 <= IC <= 10`` moderate, and
        ``IC > 10`` strong inversion; the paper's data generation enforces
        weak inversion for differential pairs and strong inversion for
        current mirrors.
        """
        i_f, _ = self._normalized_currents(vgs, vds)
        return i_f

    # ------------------------------------------------------------------
    # Small-signal conductances
    # ------------------------------------------------------------------
    def transconductance(
        self, vgs: ArrayLike, vds: ArrayLike, width: float, length: float
    ) -> np.ndarray:
        """Gate transconductance ``gm = dId/dVgs`` (S)."""
        tech = self.tech
        vp = (np.asarray(vgs, dtype=float) - tech.vt0) / tech.n_slope
        vds_arr = np.asarray(vds, dtype=float)
        dif = interp_f_prime(vp / tech.ut)
        dir_ = interp_f_prime((vp - vds_arr) / tech.ut)
        ispec = tech.spec_current(width, length)
        clm, _ = self._clm_factor(vds_arr, length)
        return ispec * (dif - dir_) * clm / (tech.n_slope * tech.ut)

    def output_conductance(
        self, vgs: ArrayLike, vds: ArrayLike, width: float, length: float
    ) -> np.ndarray:
        """Output conductance ``gds = dId/dVds`` (S)."""
        tech = self.tech
        vp = (np.asarray(vgs, dtype=float) - tech.vt0) / tech.n_slope
        vds_arr = np.asarray(vds, dtype=float)
        i_f, i_r = self._normalized_currents(vgs, vds)
        dir_ = interp_f_prime((vp - vds_arr) / tech.ut)
        ispec = tech.spec_current(width, length)
        clm, dclm = self._clm_factor(vds_arr, length)
        channel_term = ispec * dir_ * clm / tech.ut
        clm_term = ispec * (i_f - i_r) * dclm
        return channel_term + clm_term

    # ------------------------------------------------------------------
    # Capacitances
    # ------------------------------------------------------------------
    def gate_source_capacitance(
        self, vgs: ArrayLike, vds: ArrayLike, width: float, length: float
    ) -> np.ndarray:
        """Gate-source capacitance ``Cgs`` (F).

        Sum of the constant overlap term ``W * cov`` and an intrinsic channel
        term that rises smoothly from ~0 in weak inversion to the saturation
        value ``(2/3) Cox W L`` in strong inversion, gated by the inversion
        coefficient.  Linear in ``W`` by construction.
        """
        tech = self.tech
        ic = self.inversion_coefficient(vgs, vds)
        occupancy = ic / (ic + 2.0)
        intrinsic = (2.0 / 3.0) * tech.cox * width * length * occupancy
        overlap = tech.cov * width
        return intrinsic + overlap

    def drain_source_capacitance(
        self, vgs: ArrayLike, vds: ArrayLike, width: float, length: float
    ) -> np.ndarray:
        """Drain-source (junction) capacitance ``Cds`` (F).

        Modeled as the reverse-biased drain junction capacitance per unit
        width with the standard grading law ``cj / (1 + Vds/pb)^mj``; the
        junction never forward-biases in normal operation, and the expression
        is clamped at ``Vds = -pb/2`` so Newton excursions stay finite.
        """
        tech = self.tech
        vds_arr = np.asarray(vds, dtype=float)
        bias = np.maximum(1.0 + vds_arr / tech.pb, 0.5)
        ignored = np.asarray(vgs, dtype=float)  # Cds is Vgs independent here.
        del ignored
        return tech.cj * width / bias**tech.mj

    # ------------------------------------------------------------------
    # Bundles
    # ------------------------------------------------------------------
    def evaluate_all(
        self, vgs: ArrayLike, vds: ArrayLike, width: float, length: float
    ) -> dict[str, np.ndarray]:
        """Evaluate all five LUT outputs at once.

        Returns a dict keyed by :attr:`OUTPUT_NAMES` with numpy arrays all
        broadcast to the common ``vgs``/``vds`` shape, in the paper's
        Eq. (3) ordering semantics.  (Individually, ``Cds`` depends only on
        ``Vds`` and the ``Cgs`` inversion term only on ``Vgs``; the
        broadcast hides that asymmetry from table-building callers.)
        """
        values = {
            "id": self.drain_current(vgs, vds, width, length),
            "gm": self.transconductance(vgs, vds, width, length),
            "gds": self.output_conductance(vgs, vds, width, length),
            "cds": self.drain_source_capacitance(vgs, vds, width, length),
            "cgs": self.gate_source_capacitance(vgs, vds, width, length),
        }
        shape = np.broadcast_shapes(*(np.shape(v) for v in values.values()))
        return {name: np.broadcast_to(v, shape).copy() for name, v in values.items()}

    def small_signal(
        self, vgs: float, vds: float, width: float, length: float
    ) -> SmallSignal:
        """Scalar operating-point bundle for circuit linearization."""
        values = self.evaluate_all(vgs, vds, width, length)
        return SmallSignal(
            id=float(values["id"]),
            gm=float(values["gm"]),
            gds=float(values["gds"]),
            cgs=float(values["cgs"]),
            cds=float(values["cds"]),
        )

    def saturation_voltage(self, vgs: ArrayLike) -> np.ndarray:
        """Approximate ``Vds,sat`` for a region-of-operation check.

        Uses the EKV estimate ``Vds,sat ~= Ut * (2 sqrt(IC) + 4)`` with the
        inversion coefficient evaluated in saturation, which degrades
        gracefully into weak inversion (~4 Ut) and matches the strong
        inversion overdrive asymptotically.
        """
        tech = self.tech
        vp = (np.asarray(vgs, dtype=float) - tech.vt0) / tech.n_slope
        ic = interp_f(vp / tech.ut)
        return tech.ut * (2.0 * np.sqrt(ic) + 4.0)

    def is_saturated(
        self, vgs: ArrayLike, vds: ArrayLike, margin: float = 0.0
    ) -> np.ndarray:
        """Elementwise saturation check ``Vds >= Vds,sat + margin``."""
        return np.asarray(vds, dtype=float) >= self.saturation_voltage(vgs) + margin
