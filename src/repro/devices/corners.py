"""PVT corners: process skew, supply scaling and temperature in one knob.

The paper's flow verifies every candidate at a single nominal operating
condition (TT process, 1.2 V, 300 K).  A usable sizing must hold up at the
classic worst-case corners too, so this module defines the evaluation
context that the whole stack — topology ``build_circuit``/``measure``,
the batched SPICE solvers, the search objectives and the sizing service —
threads through:

* **process skew** scales the EKV threshold voltage ``vt0`` and the
  transconductance parameter ``kp`` (slow silicon: higher ``vt0``, lower
  mobility; fast silicon: the opposite);
* **supply** scales the topology's nominal ``vdd`` rail;
* **temperature** feeds the EKV thermal voltage ``Ut = kT/q`` (linear in
  ``T``, pinned to the seed's :data:`~repro.devices.params.THERMAL_VOLTAGE`
  at the nominal :data:`~repro.devices.params.TEMPERATURE_K` so the
  nominal corner stays bit-identical to the pre-corner substrate).

The nominal corner is the identity: :meth:`Corner.apply_tech` returns the
*same* :class:`TechParams` object and :meth:`Corner.supply` the unchanged
supply, which is what keeps every nominal-path result bit-identical to the
pre-refactor flow (pinned by the parity tests).

Presets follow the usual worst-case pairings — ``"ss"`` is slow silicon at
reduced supply and hot (85 C), ``"ff"`` fast silicon at raised supply and
cold (-40 C) — and :func:`resolve_corner` additionally accepts explicit
override mappings for custom conditions::

    resolve_corner("ss")
    resolve_corner({"process": "ss", "vdd_scale": 1.0})        # SS, nominal rail
    resolve_corner({"name": "hot", "temperature_k": 398.15})   # pure temperature
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import lru_cache
from collections.abc import Mapping, Sequence
from typing import Union

from .params import TEMPERATURE_K, THERMAL_VOLTAGE, TechParams

__all__ = [
    "Corner",
    "CornerLike",
    "NOMINAL_CORNER",
    "CORNER_PRESETS",
    "thermal_voltage",
    "resolve_corner",
    "resolve_corners",
]

#: What :func:`resolve_corner` accepts: a preset name, an override mapping,
#: an already-resolved :class:`Corner`, or ``None`` (nominal).
CornerLike = Union["Corner", str, Mapping[str, object], None]


def thermal_voltage(temperature_k: float) -> float:
    """Thermal voltage ``kT/q`` (V) at ``temperature_k``.

    Linear in temperature and anchored so that the nominal temperature
    reproduces the seed's pinned :data:`THERMAL_VOLTAGE` constant exactly
    (a process-only corner therefore keeps the nominal ``Ut`` bit-for-bit).
    """
    if temperature_k <= 0:
        raise ValueError(f"temperature_k must be positive, got {temperature_k}")
    if temperature_k == TEMPERATURE_K:
        return THERMAL_VOLTAGE
    return THERMAL_VOLTAGE * (temperature_k / TEMPERATURE_K)


@dataclass(frozen=True)
class Corner:
    """One PVT evaluation context (hashable, so it can key caches).

    Attributes
    ----------
    name:
        Identifier used in request schemas, responses and cache keys
        (``"tt"``, ``"ss"``, ``"ff"``, or any custom label).
    vt0_scale / kp_scale:
        Process-skew multipliers applied to every device's threshold
        voltage and transconductance parameter.
    vdd_scale:
        Multiplier on the topology's nominal supply voltage.
    temperature_k:
        Simulation temperature; sets the EKV thermal voltage through
        :func:`thermal_voltage`.
    """

    name: str
    vt0_scale: float = 1.0
    kp_scale: float = 1.0
    vdd_scale: float = 1.0
    temperature_k: float = TEMPERATURE_K

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("corner name must be a non-empty string")
        # Names key JSON maps and the netlist header's whitespace-separated
        # field format; whitespace or "=" would make the header ambiguous.
        if "=" in self.name or any(char.isspace() for char in self.name):
            raise ValueError(
                f"corner name must not contain whitespace or '=', got {self.name!r}"
            )
        for field_name in ("vt0_scale", "kp_scale", "vdd_scale", "temperature_k"):
            value = getattr(self, field_name)
            if not (value > 0):
                raise ValueError(f"corner {field_name} must be positive, got {value}")

    @property
    def is_nominal(self) -> bool:
        """True when this corner is the identity evaluation context."""
        return (
            self.vt0_scale == 1.0
            and self.kp_scale == 1.0
            and self.vdd_scale == 1.0
            and self.temperature_k == TEMPERATURE_K
        )

    # ------------------------------------------------------------------
    def apply_tech(self, tech: TechParams) -> TechParams:
        """The corner-skewed technology parameters for ``tech``.

        The nominal corner returns ``tech`` itself (identity, bit-identical
        path); skewed corners return a cached derived parameter set, so all
        circuits built at one corner share the same ``TechParams`` objects
        (which is what lets the batched DC solver group them).
        """
        if self.is_nominal:
            return tech
        return _corner_tech(self, tech)

    def supply(self, nominal_vdd: float) -> float:
        """The corner's supply voltage for a nominal rail of ``nominal_vdd``."""
        if self.vdd_scale == 1.0:
            return nominal_vdd
        return nominal_vdd * self.vdd_scale

    # ------------------------------------------------------------------
    def label(self) -> str:
        """One-line summary used in netlist headers.

        Values use ``repr`` (shortest exact form), so the header parses
        back into an equal :class:`Corner` losslessly.
        """
        return (
            f"{self.name} vt0_scale={self.vt0_scale!r} kp_scale={self.kp_scale!r} "
            f"vdd_scale={self.vdd_scale!r} temperature_k={self.temperature_k!r}"
        )

    def to_json(self):
        """JSON form: the bare preset name when possible, else a flat dict."""
        preset = CORNER_PRESETS.get(self.name)
        if preset == self:
            return self.name
        return {
            "name": self.name,
            "vt0_scale": self.vt0_scale,
            "kp_scale": self.kp_scale,
            "vdd_scale": self.vdd_scale,
            "temperature_k": self.temperature_k,
        }


@lru_cache(maxsize=256)
def _corner_tech(corner: Corner, tech: TechParams) -> TechParams:
    """Corner-skewed :class:`TechParams`, cached so object identity is
    shared across every circuit built at the same corner."""
    return tech.with_(
        vt0=tech.vt0 * corner.vt0_scale,
        kp=tech.kp * corner.kp_scale,
        ut=thermal_voltage(corner.temperature_k),
    )


#: The identity context: TT silicon, nominal supply, nominal temperature.
NOMINAL_CORNER = Corner("tt")

#: Named presets with the classic worst-case pairings: slow silicon runs
#: hot at reduced supply, fast silicon runs cold at raised supply.
CORNER_PRESETS: dict[str, Corner] = {
    "tt": NOMINAL_CORNER,
    "ss": Corner("ss", vt0_scale=1.08, kp_scale=0.85, vdd_scale=0.90, temperature_k=358.15),
    "ff": Corner("ff", vt0_scale=0.92, kp_scale=1.15, vdd_scale=1.10, temperature_k=233.15),
}

_CORNER_FIELDS = tuple(f.name for f in fields(Corner))


def resolve_corner(spec: CornerLike) -> Corner:
    """Normalize a corner specification to a :class:`Corner`.

    Accepts ``None`` (nominal), a preset name, an already-built
    :class:`Corner`, or a mapping with optional ``process`` base preset
    plus field overrides (see the module docstring for examples).
    """
    if spec is None:
        return NOMINAL_CORNER
    if isinstance(spec, Corner):
        return spec
    if isinstance(spec, str):
        try:
            return CORNER_PRESETS[spec.lower()]
        except KeyError:
            known = ", ".join(sorted(CORNER_PRESETS))
            raise ValueError(f"unknown corner preset {spec!r} (known: {known})") from None
    if isinstance(spec, Mapping):
        unknown = set(spec) - set(_CORNER_FIELDS) - {"process"}
        if unknown:
            raise ValueError(f"unknown corner fields: {sorted(unknown)}")
        base = resolve_corner(str(spec["process"])) if "process" in spec else NOMINAL_CORNER
        kwargs = {name: getattr(base, name) for name in _CORNER_FIELDS}
        kwargs["name"] = spec.get("name", base.name if "process" in spec else "custom")
        for field_name in ("vt0_scale", "kp_scale", "vdd_scale", "temperature_k"):
            if field_name in spec:
                kwargs[field_name] = float(spec[field_name])  # type: ignore[arg-type]
        return Corner(**kwargs)  # type: ignore[arg-type]
    raise TypeError(f"cannot resolve a corner from {type(spec).__name__}")


def resolve_corners(specs: Sequence[CornerLike] | None) -> tuple[Corner, ...]:
    """Normalize a corner list; names must be unique (they key results)."""
    if specs is None:
        return ()
    corners = tuple(resolve_corner(spec) for spec in specs)
    names = [corner.name for corner in corners]
    if len(set(names)) != len(names):
        raise ValueError(f"corner names must be unique, got {names}")
    return corners
