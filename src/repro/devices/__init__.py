"""Device substrate: EKV-style MOSFET compact model, instances and corners."""

from .corners import (
    CORNER_PRESETS,
    NOMINAL_CORNER,
    Corner,
    CornerLike,
    resolve_corner,
    resolve_corners,
    thermal_voltage,
)
from .ekv import EKVModel, SmallSignal, interp_f, interp_f_prime
from .mosfet import MOSFET, OperatingPoint
from .params import NMOS_65NM, PMOS_65NM, TEMPERATURE_K, THERMAL_VOLTAGE, VDD, TechParams

__all__ = [
    "Corner",
    "CornerLike",
    "CORNER_PRESETS",
    "NOMINAL_CORNER",
    "resolve_corner",
    "resolve_corners",
    "thermal_voltage",
    "EKVModel",
    "SmallSignal",
    "interp_f",
    "interp_f_prime",
    "MOSFET",
    "OperatingPoint",
    "NMOS_65NM",
    "PMOS_65NM",
    "TechParams",
    "VDD",
    "TEMPERATURE_K",
    "THERMAL_VOLTAGE",
]
