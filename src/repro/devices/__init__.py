"""Device substrate: EKV-style MOSFET compact model and instances."""

from .ekv import EKVModel, SmallSignal, interp_f, interp_f_prime
from .mosfet import MOSFET, OperatingPoint
from .params import NMOS_65NM, PMOS_65NM, TEMPERATURE_K, THERMAL_VOLTAGE, VDD, TechParams

__all__ = [
    "EKVModel",
    "SmallSignal",
    "interp_f",
    "interp_f_prime",
    "MOSFET",
    "OperatingPoint",
    "NMOS_65NM",
    "PMOS_65NM",
    "TechParams",
    "VDD",
    "TEMPERATURE_K",
    "THERMAL_VOLTAGE",
]
