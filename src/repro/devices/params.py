"""Technology parameter sets for the EKV-style MOSFET compact model.

The paper characterizes devices in a 65 nm technology with a 1.2 V supply,
a reference width of 700 nm and a fixed channel length of 180 nm.  We do not
have access to the foundry PDK, so this module defines a self-consistent
65 nm-flavoured parameter set for the long-channel EKV model implemented in
:mod:`repro.devices.ekv`.  The parameters are chosen so that

* threshold voltages, mobility factors and capacitances are in the right
  ballpark for a 65 nm bulk process,
* all five LUT outputs (``Id``, ``gm``, ``gds``, ``Cds``, ``Cgs``) scale
  linearly with the device width, which is the property the paper's
  precomputed-LUT methodology relies on, and
* the ``gm/Id`` ratio is width independent, the cornerstone of the gm/Id
  sizing methodology (Silveira et al., Jespers & Murmann).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "TechParams",
    "NMOS_65NM",
    "PMOS_65NM",
    "VDD",
    "TEMPERATURE_K",
    "THERMAL_VOLTAGE",
]

#: Nominal supply voltage of the target technology (V).
VDD = 1.2

#: Nominal simulation temperature (K).
TEMPERATURE_K = 300.15

#: Thermal voltage kT/q at ``TEMPERATURE_K`` (V).
THERMAL_VOLTAGE = 0.025865


@dataclass(frozen=True)
class TechParams:
    """Parameters of the EKV-style long-channel model for one device type.

    Attributes
    ----------
    name:
        Human readable identifier, e.g. ``"nmos_65nm"``.
    polarity:
        ``+1`` for NMOS, ``-1`` for PMOS.  The model core always works with
        source-referenced, polarity-normalized voltages; the polarity is used
        by callers to map circuit voltages onto the normalized frame.
    vt0:
        Zero-bias threshold voltage (V), polarity-normalized (positive for
        both NMOS and PMOS).
    n_slope:
        Subthreshold slope factor ``n`` (dimensionless, typically 1.2-1.5).
    kp:
        Transconductance parameter ``mu * Cox`` (A/V^2).
    ut:
        Thermal voltage (V).
    lambda_l:
        Channel-length-modulation coefficient normalized to length
        (V^-1 * m); the effective CLM factor is ``lambda_l / L``.
    cox:
        Gate-oxide capacitance per unit area (F/m^2).
    cov:
        Gate overlap capacitance per unit width (F/m).
    cj:
        Zero-bias drain junction capacitance per unit width (F/m).
    pb:
        Junction built-in potential (V).
    mj:
        Junction grading coefficient (dimensionless).
    """

    name: str
    polarity: int
    vt0: float
    n_slope: float
    kp: float
    ut: float = THERMAL_VOLTAGE
    lambda_l: float = 0.02e-6
    cox: float = 11.5e-3
    cov: float = 0.24e-9
    cj: float = 0.9e-9
    pb: float = 0.8
    mj: float = 0.4

    def __post_init__(self) -> None:
        if self.polarity not in (-1, 1):
            raise ValueError(f"polarity must be +1 or -1, got {self.polarity}")
        for field_name in ("vt0", "n_slope", "kp", "ut", "cox", "cov", "cj", "pb"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if self.n_slope < 1.0:
            raise ValueError(f"n_slope must be >= 1, got {self.n_slope}")

    @property
    def is_nmos(self) -> bool:
        """True when this parameter set describes an NMOS device."""
        return self.polarity == 1

    def with_(self, **kwargs) -> TechParams:
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)

    def spec_current(self, width, length):
        """Specific (technology) current ``Ispec = 2 n kp (W/L) Ut^2`` in A.

        ``Ispec`` normalizes the drain current into the inversion coefficient
        ``IC = Id / Ispec`` used for region-of-operation checks; ``IC < 1`` is
        weak inversion, ``IC > 10`` strong inversion.  ``width`` may be an
        array (one entry per candidate in a batched evaluation).
        """
        if isinstance(width, np.ndarray):
            if np.any(width <= 0) or length <= 0:
                raise ValueError("width and length must be positive")
        elif width <= 0 or length <= 0:
            # Scalar fast path: this sits inside the DC Newton hot loop.
            raise ValueError("width and length must be positive")
        return 2.0 * self.n_slope * self.kp * (width / length) * self.ut**2


#: 65 nm-flavoured NMOS parameter set (bulk tied to source).  ``lambda_l``
#: is deliberately large (lambda ~ 1/V at L = 180 nm): short-channel 65 nm
#: devices have low intrinsic gain, which is what makes the paper's 5T-OTA
#: gain land in the 18-23 dB range.
NMOS_65NM = TechParams(
    name="nmos_65nm",
    polarity=1,
    vt0=0.42,
    n_slope=1.30,
    kp=320e-6,
    lambda_l=0.18e-6,
)

#: 65 nm-flavoured PMOS parameter set (bulk tied to source).
PMOS_65NM = TechParams(
    name="pmos_65nm",
    polarity=-1,
    vt0=0.40,
    n_slope=1.35,
    kp=80e-6,
    lambda_l=0.16e-6,
)
