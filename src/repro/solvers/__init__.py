"""Unified solver API over a batched SPICE evaluation backend.

Every sizing method -- the transformer copilot and the SPICE-in-the-loop
baselines (SA / PSO / DE) -- implements one protocol::

    solver = repro.solvers.get("pso")(topology)          # or .create(...)
    result = solver.solve(spec, budget=400, rng=rng)     # -> SolveResult

with unified success / SPICE-call / wall-time / history accounting, and
all methods are dispatchable by name through the registry (mirroring the
topology registry), the sizing engine (``SizingRequest.method``) and the
CLI (``python -m repro size --method pso``).

Underneath, population-based solvers submit whole generations to an
:class:`EvalBackend`; the default :class:`BatchedBackend` vectorizes the
per-candidate small-signal AC solves (one stacked complex MNA solve over
population x frequency grid) and amortizes the DC Newton assembly across
candidates, with per-candidate failure isolation -- bit-identical to the
sequential path, just faster (``bench_table9`` pins both claims).

Every solver also accepts ``corners=`` (PVT presets ``"tt"/"ss"/"ff"`` or
:class:`~repro.devices.Corner` objects).  With corners set, objectives
are **worst-corner aggregates** -- each candidate is scored by its worst
corner and a solve succeeds only when the design meets spec at *every*
corner -- and the population x corner block stacks into the same batched
solves (``bench_table8``'s corner mode pins parity and the >=2x gain).
"""

from .backend import BatchedBackend, EvalBackend, ScalarBackend
from .base import (
    DEFAULT_BUDGET,
    PENALTY,
    SearchObjective,
    SearchSolver,
    SearchSpace,
    Solver,
    SolveResult,
)
from .registry import (
    available_solvers,
    create,
    get,
    register,
    solver_factory,
    unregister,
)

# Importing the solver modules registers the stock methods.
from .annealing import SimulatedAnnealingSolver
from .copilot import CopilotSolver, solve_result_from_sizing
from .evolution import DifferentialEvolutionSolver
from .swarm import ParticleSwarmSolver

__all__ = [
    "BatchedBackend",
    "EvalBackend",
    "ScalarBackend",
    "DEFAULT_BUDGET",
    "PENALTY",
    "SearchObjective",
    "SearchSolver",
    "SearchSpace",
    "Solver",
    "SolveResult",
    "available_solvers",
    "create",
    "get",
    "register",
    "solver_factory",
    "unregister",
    "SimulatedAnnealingSolver",
    "CopilotSolver",
    "solve_result_from_sizing",
    "DifferentialEvolutionSolver",
    "ParticleSwarmSolver",
]
