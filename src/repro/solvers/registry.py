"""Pluggable solver registry, mirroring the topology registry.

Each solver module *declares* itself with :func:`register` (usable as a
class decorator); the sizing engine, the CLI and the benchmarks resolve
method names through the registry, so adding a sizing method means
registering one class -- no dispatch table to edit::

    from repro.solvers import SearchSolver, register

    @register
    class RandomSearch(SearchSolver):
        name = "random"

        def solve(self, spec, budget=None, rng=None):
            ...

``get`` returns the registered factory (call it with a topology);
``create`` combines lookup and construction.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TypeVar

from ..topologies import OTATopology
from .base import Solver

__all__ = [
    "register",
    "unregister",
    "get",
    "create",
    "solver_factory",
    "available_solvers",
]

F = TypeVar("F", bound=Callable[..., Solver])

#: name -> factory
#: ``(topology, *, backend=None, model=None, corners=None, **options)``,
#: in registration order (``corners`` selects worst-case PVT evaluation).
_REGISTRY: dict[str, Callable[..., Solver]] = {}


def register(factory: F | None = None, *, name: str | None = None, replace: bool = False):
    """Register a solver factory (class or callable) under its name.

    Usable directly (``register(ParticleSwarmSolver)``), as a decorator
    (``@register``), or with an explicit name for factories that don't
    carry a ``name`` attribute.  Duplicate names raise unless
    ``replace=True`` (useful for tests shadowing a stock solver).
    """
    if factory is None:  # @register(name=...) decorator form
        return lambda f: register(f, name=name, replace=replace)
    key = name or getattr(factory, "name", None)
    if not key or not isinstance(key, str):
        raise ValueError("solver factory needs a 'name' attribute or an explicit name=...")
    if not replace and key in _REGISTRY:
        raise ValueError(f"solver {key!r} is already registered")
    _REGISTRY[key] = factory
    return factory


def unregister(name: str) -> None:
    """Remove a registered solver (primarily for test isolation)."""
    _REGISTRY.pop(name, None)


def solver_factory(name: str) -> Callable[..., Solver]:
    """The registered factory for ``name``; raises ``KeyError`` if absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown solver {name!r} (registered: {known})") from None


#: Alias: ``repro.solvers.get("pso")(topology).solve(spec, ...)``.
get = solver_factory


def create(name: str, topology: OTATopology, **kwargs) -> Solver:
    """Instantiate a registered solver for ``topology``.

    Keyword arguments are passed to the factory (``backend=`` for the
    search solvers, ``model=`` for the copilot, plus solver-specific
    options).
    """
    return solver_factory(name)(topology, **kwargs)


def available_solvers() -> tuple[str, ...]:
    """Registered solver names, in registration order."""
    return tuple(_REGISTRY)
