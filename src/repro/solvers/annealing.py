"""Simulated-annealing solver (Table IX, Gielen et al. style).

Gaussian moves in the normalized log-width space with a geometric cooling
schedule and Metropolis acceptance.  Several independent chains run in
lockstep (the paper's baseline used one), so each step submits one whole
proposal batch to the evaluation backend; the run terminates as soon as
any chain reaches zero specification shortfall, keeping the reported
SPICE-call count the cost *to reach a satisfying design*.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.specs import DesignSpec
from .base import SearchSolver, SolveResult
from .registry import register

__all__ = ["SimulatedAnnealingSolver"]


@register
class SimulatedAnnealingSolver(SearchSolver):
    """Multi-chain simulated annealing over the normalized width box."""

    name = "sa"

    def __init__(
        self,
        topology,
        *,
        backend=None,
        model=None,
        corners=None,
        analyses=None,
        chains: int = 4,
        initial_temperature: float = 1.0,
        cooling: float = 0.97,
        step_scale: float = 0.15,
    ):
        super().__init__(
            topology, backend=backend, model=model, corners=corners, analyses=analyses
        )
        if chains < 1:
            raise ValueError("chains must be >= 1")
        self.chains = chains
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.step_scale = step_scale

    def solve(
        self,
        spec: DesignSpec,
        budget: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> SolveResult:
        budget = self._budget(budget)
        rng = self._rng(rng)
        objective = self._objective(spec)
        start = time.perf_counter()

        chains = min(self.chains, budget) if budget else 0
        iterations = 0
        if chains:
            dim = objective.space.dimension
            current = np.stack([objective.space.random_point(rng) for _ in range(chains)])
            current_values = objective.evaluate_many(current)
            temperature = self.initial_temperature

            while objective.spice_calls < budget and not objective.satisfied:
                iterations += 1
                k = min(chains, budget - objective.spice_calls)
                moves = rng.normal(0.0, self.step_scale, size=(k, dim))
                candidates = np.clip(current[:k] + moves, 0.0, 1.0)
                candidate_values = objective.evaluate_many(candidates)
                delta = candidate_values - current_values[:k]
                # exp() argument clamped at 0: delta <= 0 accepts anyway.
                metropolis = rng.random(k) < np.exp(
                    np.minimum(-delta / max(temperature, 1e-9), 0.0)
                )
                accept = (delta <= 0.0) | metropolis
                current[:k][accept] = candidates[accept]
                current_values[:k][accept] = candidate_values[accept]
                temperature *= self.cooling

        return self._finish(objective, start, iterations)
