"""The unified solver API: one protocol for every sizing method.

The paper's Table IX pits the transformer copilot against SPICE-in-the-
loop optimizers; this module makes them interchangeable.  A *solver*
takes a specification, a budget and an rng and returns a
:class:`SolveResult` with unified success / SPICE-call / wall-time /
history accounting::

    result = repro.solvers.get("pso")(topology).solve(spec, budget=400, rng=rng)

Search-based solvers (SA / PSO / DE) share :class:`SearchObjective`, the
one place that owns best-value and history bookkeeping (previously
copy-pasted across the three baseline modules) and submits whole
populations to an :class:`~repro.solvers.backend.EvalBackend` so
generation evaluation is vectorized.

``history`` semantics are identical for every solver: entry ``k`` is the
best objective value seen after SPICE call ``k+1`` (best-so-far, hence
monotonically non-increasing).

**Corner-aware search.**  Every solver accepts ``corners=`` (PVT corner
presets or :class:`~repro.devices.Corner` objects).  When set, objectives
are **worst-corner aggregates**: each candidate is evaluated at every
corner and scored by its *worst* corner's shortfall, so a solve succeeds
only when the design meets the specification at **all** corners; each
corner evaluation counts as one SPICE call toward the budget.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..core.specs import DesignSpec
from ..devices import Corner, CornerLike, resolve_corners
from ..spice import PerformanceMetrics
from ..topologies import (
    TRAN_ANALYSES,
    CornerSweep,
    MeasureOutcome,
    OTATopology,
    resolve_analyses,
)
from .backend import BatchedBackend, EvalBackend

__all__ = [
    "PENALTY",
    "DEFAULT_BUDGET",
    "SearchSpace",
    "SearchObjective",
    "SolveResult",
    "Solver",
    "SearchSolver",
]

#: Objective value assigned to non-simulatable / invalid designs.
PENALTY = 10.0

#: Default SPICE-evaluation budget of the search-based solvers.
DEFAULT_BUDGET = 500


class SearchSpace:
    """Log-uniform box over per-group widths, normalized to [0, 1]^n."""

    def __init__(self, topology: OTATopology):
        self.topology = topology
        self.names = list(topology.group_names)
        self._log_low = np.array(
            [np.log(topology.group(name).width_bounds[0]) for name in self.names]
        )
        self._log_high = np.array(
            [np.log(topology.group(name).width_bounds[1]) for name in self.names]
        )

    @property
    def dimension(self) -> int:
        return len(self.names)

    def decode(self, point: np.ndarray) -> dict[str, float]:
        """[0,1]^n point -> width dictionary."""
        clipped = np.clip(np.asarray(point, dtype=float), 0.0, 1.0)
        log_widths = self._log_low + clipped * (self._log_high - self._log_low)
        return {name: float(np.exp(w)) for name, w in zip(self.names, log_widths, strict=True)}

    def random_point(self, rng: np.random.Generator) -> np.ndarray:
        return rng.random(self.dimension)


@dataclass
class SolveResult:
    """Outcome of one solver run, comparable across all sizing methods.

    On corner-aware runs ``best_value``/``best_metrics`` refer to the best
    design's *binding worst corner* (objectives are worst-corner
    aggregates), ``corner_metrics`` carries its per-corner measurements
    and ``worst_corner`` names the binding corner.
    """

    solver: str
    success: bool
    spice_calls: int
    wall_time_s: float
    best_value: float
    best_widths: dict[str, float] | None
    best_metrics: PerformanceMetrics | None = None
    history: list[float] = field(default_factory=list)
    iterations: int = 0
    corner_metrics: dict[str, PerformanceMetrics] | None = None
    worst_corner: str | None = None


class SearchObjective:
    """Spec-shortfall objective with unified SPICE-call/best bookkeeping.

    The objective is the total relative shortfall against the
    specification (0 means every target is met) with a penalty for
    designs that fail to simulate or violate device regions.  Candidates
    are submitted to the evaluation backend in bulk; accounting stays
    per SPICE call.

    With ``corners`` set, the objective is the **worst-corner aggregate**:
    each candidate's score is the maximum shortfall over its corners (a
    corner that fails to simulate scores the full penalty), so the
    objective reaches 0 only when every corner meets the specification.
    Every corner evaluation counts as one SPICE call.
    """

    def __init__(
        self,
        topology: OTATopology,
        spec: DesignSpec,
        backend: EvalBackend | None = None,
        check_regions: bool = False,
        corners: Sequence[CornerLike] | None = None,
        analyses: Sequence[str] | None = None,
    ):
        self.topology = topology
        self.spec = spec
        self.backend = backend if backend is not None else BatchedBackend()
        self.check_regions = check_regions
        #: Resolved PVT corner axis; empty tuple = nominal-only (the
        #: pre-corner single-evaluation path, bit-identical).
        self.corners: tuple[Corner, ...] = resolve_corners(corners)
        #: Measurement pipeline: an explicit ``analyses`` request or, at
        #: minimum, whatever the spec needs -- transient targets pull the
        #: step-response analysis in so they can be judged at all.
        #: ``None`` (the AC-only default) keeps the pre-transient backend
        #: calls -- and custom backends with the narrower signature --
        #: bit-identical.
        resolved_analyses = resolve_analyses(analyses)
        if spec.requires_tran:
            resolved_analyses = TRAN_ANALYSES
        self.analyses = resolved_analyses if "tran" in resolved_analyses else None
        self.space = SearchSpace(topology)
        self.spice_calls = 0
        self.best_value = float("inf")
        self.best_widths: dict[str, float] | None = None
        self.best_metrics: PerformanceMetrics | None = None
        self.best_corner_metrics: dict[str, PerformanceMetrics] | None = None
        self.best_worst_corner: str | None = None
        self.history: list[float] = []
        #: Running minimum over *observed* objective values, penalties
        #: included — what ``history`` records.  Unlike ``best_value`` it
        #: is finite from the very first SPICE call (a penalized candidate
        #: scored PENALTY; it did not score infinity).
        self._best_seen = float("inf")

    def evaluate_many(self, points: Sequence[np.ndarray]) -> np.ndarray:
        """Evaluate a population of normalized points; lower is better."""
        widths_list = [self.space.decode(point) for point in points]
        kwargs = {} if self.analyses is None else {"analyses": self.analyses}
        if self.corners:
            sweeps = self.backend.measure_many(
                self.topology, widths_list, corners=self.corners, **kwargs
            )
            return np.array(
                [self._record_sweep(w, s) for w, s in zip(widths_list, sweeps, strict=True)],
                dtype=float,
            )
        outcomes = self.backend.measure_many(self.topology, widths_list, **kwargs)
        return np.array(
            [self._record(w, o) for w, o in zip(widths_list, outcomes, strict=True)], dtype=float
        )

    def evaluate_one(self, point: np.ndarray) -> float:
        return float(self.evaluate_many(np.asarray(point, dtype=float)[None, :])[0])

    def _corner_value(self, outcome: MeasureOutcome) -> float:
        """One corner's score with the flat path's penalty semantics."""
        if not outcome.ok:
            return PENALTY
        if self.check_regions and not self.topology.regions_ok(outcome.result.dc):
            return PENALTY / 2.0
        return float(sum(self.spec.miss_fractions(outcome.result.metrics).values()))

    def _record_sweep(self, widths: dict[str, float], sweep: CornerSweep) -> float:
        """Worst-corner aggregate of one candidate's corner sweep."""
        self.spice_calls += len(sweep.corners)
        values = [self._corner_value(outcome) for outcome in sweep.outcomes]
        value = max(values)
        # ``best`` bookkeeping mirrors the flat path: only candidates whose
        # every corner simulated (and, when checked, stayed in-region) can
        # become the incumbent -- a penalized corner disqualifies.
        eligible = sweep.ok and (
            not self.check_regions
            or all(
                self.topology.regions_ok(outcome.result.dc)
                for outcome in sweep.outcomes
            )
        )
        if eligible and value < self.best_value:
            self.best_value = value
            self.best_widths = widths
            # The binding corner by CornerSweep's two-level ranking: the
            # worst miss, or the least margin when every corner passes.
            worst_name, worst_metrics = sweep.worst_corner(self.spec)
            self.best_metrics = worst_metrics
            self.best_worst_corner = worst_name
            self.best_corner_metrics = sweep.metrics_by_corner()
        # One history entry per SPICE call, preserving the unified
        # semantics (entry k = best observed after call k+1).  The
        # candidate's worst-corner aggregate is only known once its *last*
        # corner has simulated, so the in-sweep prefix records the prior
        # best (floored at PENALTY -- an observed corner scores at worst
        # PENALTY, keeping every entry finite) and the aggregate lands on
        # the sweep's final call, never earlier.
        prefix = min(self._best_seen, PENALTY)
        self._best_seen = min(self._best_seen, value)
        self.history.extend([prefix] * (len(sweep.corners) - 1))
        self.history.append(self._best_seen)
        return value

    def _record(self, widths: dict[str, float], outcome: MeasureOutcome) -> float:
        self.spice_calls += 1
        if not outcome.ok:
            value = PENALTY
        elif self.check_regions and not self.topology.regions_ok(outcome.result.dc):
            value = PENALTY / 2.0
        else:
            metrics = outcome.result.metrics
            value = float(sum(self.spec.miss_fractions(metrics).values()))
            if value < self.best_value:
                self.best_value = value
                self.best_widths = widths
                self.best_metrics = metrics
        # ``best_value`` stays inf until the first simulatable candidate;
        # history records the best *observed* value instead (an
        # all-penalized prefix records PENALTY, not Infinity), keeping
        # every entry finite, JSON-serializable and monotone.
        self._best_seen = min(self._best_seen, value)
        self.history.append(self._best_seen)
        return value

    @property
    def satisfied(self) -> bool:
        return self.best_value <= 0.0


class Solver(ABC):
    """One sizing method over one topology.

    Every registered solver is constructed as
    ``factory(topology, backend=..., model=..., corners=..., analyses=...)``:
    search-based solvers use the evaluation backend (``None`` means the
    batched one), the copilot uses the trained model; each ignores what it
    does not need, so callers can instantiate any registry entry
    uniformly.  ``corners`` selects the PVT corner axis -- when set, the
    solver chases worst-corner-aggregate objectives and succeeds only when
    the design meets spec at every corner.  ``analyses`` selects the
    measurement pipeline (a spec with transient targets pulls the
    transient leg in regardless); callers pass it only on non-default
    pipelines, so solvers registered before the transient extension keep
    working unchanged.
    """

    #: Registry name, e.g. ``"sa"``; also stamped on results.
    name: str = "solver"

    def __init__(
        self,
        topology: OTATopology,
        *,
        backend: EvalBackend | None = None,
        model=None,
        corners: Sequence[CornerLike] | None = None,
        analyses: Sequence[str] | None = None,
    ):
        self.topology = topology
        self.backend = backend if backend is not None else BatchedBackend()
        self.model = model
        #: Resolved corner axis; empty = nominal-only evaluation.
        self.corners: tuple[Corner, ...] = resolve_corners(corners)
        #: Requested measurement pipeline (``None`` = spec-driven default).
        self.analyses = analyses

    @abstractmethod
    def solve(
        self,
        spec: DesignSpec,
        budget: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> SolveResult:
        """Search for a design meeting ``spec`` within ``budget`` SPICE calls.

        ``budget`` bounds the number of SPICE evaluations (for the copilot:
        verification iterations, each costing at most one simulation);
        ``None`` selects the solver's default.  ``rng`` drives any
        stochastic choices; ``None`` means a fixed default seed.
        """


class SearchSolver(Solver):
    """Shared plumbing of the stochastic SPICE-in-the-loop solvers.

    The objective built by :meth:`_objective` inherits the solver's corner
    axis, so with ``corners=`` set every generation is scored by
    worst-corner aggregates (see :class:`SearchObjective`).
    """

    check_regions: bool = False

    def _objective(self, spec: DesignSpec) -> SearchObjective:
        return SearchObjective(
            self.topology,
            spec,
            backend=self.backend,
            check_regions=self.check_regions,
            corners=self.corners,
            analyses=self.analyses,
        )

    @staticmethod
    def _rng(rng: np.random.Generator | None) -> np.random.Generator:
        return rng if rng is not None else np.random.default_rng(0)

    @staticmethod
    def _budget(budget: int | None) -> int:
        if budget is None:
            return DEFAULT_BUDGET
        if budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        return budget

    def _finish(
        self, objective: SearchObjective, start: float, iterations: int
    ) -> SolveResult:
        return SolveResult(
            solver=self.name,
            success=objective.satisfied,
            spice_calls=objective.spice_calls,
            wall_time_s=time.perf_counter() - start,
            best_value=objective.best_value,
            best_widths=objective.best_widths,
            best_metrics=objective.best_metrics,
            history=list(objective.history),
            iterations=iterations,
            corner_metrics=objective.best_corner_metrics,
            worst_corner=objective.best_worst_corner,
        )
