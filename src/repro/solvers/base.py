"""The unified solver API: one protocol for every sizing method.

The paper's Table IX pits the transformer copilot against SPICE-in-the-
loop optimizers; this module makes them interchangeable.  A *solver*
takes a specification, a budget and an rng and returns a
:class:`SolveResult` with unified success / SPICE-call / wall-time /
history accounting::

    result = repro.solvers.get("pso")(topology).solve(spec, budget=400, rng=rng)

Search-based solvers (SA / PSO / DE) share :class:`SearchObjective`, the
one place that owns best-value and history bookkeeping (previously
copy-pasted across the three baseline modules) and submits whole
populations to an :class:`~repro.solvers.backend.EvalBackend` so
generation evaluation is vectorized.

``history`` semantics are identical for every solver: entry ``k`` is the
best objective value seen after SPICE call ``k+1`` (best-so-far, hence
monotonically non-increasing).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.specs import DesignSpec
from ..spice import PerformanceMetrics
from ..topologies import MeasureOutcome, OTATopology
from .backend import BatchedBackend, EvalBackend

__all__ = [
    "PENALTY",
    "DEFAULT_BUDGET",
    "SearchSpace",
    "SearchObjective",
    "SolveResult",
    "Solver",
    "SearchSolver",
]

#: Objective value assigned to non-simulatable / invalid designs.
PENALTY = 10.0

#: Default SPICE-evaluation budget of the search-based solvers.
DEFAULT_BUDGET = 500


class SearchSpace:
    """Log-uniform box over per-group widths, normalized to [0, 1]^n."""

    def __init__(self, topology: OTATopology):
        self.topology = topology
        self.names = list(topology.group_names)
        self._log_low = np.array(
            [np.log(topology.group(name).width_bounds[0]) for name in self.names]
        )
        self._log_high = np.array(
            [np.log(topology.group(name).width_bounds[1]) for name in self.names]
        )

    @property
    def dimension(self) -> int:
        return len(self.names)

    def decode(self, point: np.ndarray) -> dict[str, float]:
        """[0,1]^n point -> width dictionary."""
        clipped = np.clip(np.asarray(point, dtype=float), 0.0, 1.0)
        log_widths = self._log_low + clipped * (self._log_high - self._log_low)
        return {name: float(np.exp(w)) for name, w in zip(self.names, log_widths)}

    def random_point(self, rng: np.random.Generator) -> np.ndarray:
        return rng.random(self.dimension)


@dataclass
class SolveResult:
    """Outcome of one solver run, comparable across all sizing methods."""

    solver: str
    success: bool
    spice_calls: int
    wall_time_s: float
    best_value: float
    best_widths: Optional[dict[str, float]]
    best_metrics: Optional[PerformanceMetrics] = None
    history: list[float] = field(default_factory=list)
    iterations: int = 0


class SearchObjective:
    """Spec-shortfall objective with unified SPICE-call/best bookkeeping.

    The objective is the total relative shortfall against the
    specification (0 means every target is met) with a penalty for
    designs that fail to simulate or violate device regions.  Candidates
    are submitted to the evaluation backend in bulk; accounting stays
    per SPICE call.
    """

    def __init__(
        self,
        topology: OTATopology,
        spec: DesignSpec,
        backend: Optional[EvalBackend] = None,
        check_regions: bool = False,
    ):
        self.topology = topology
        self.spec = spec
        self.backend = backend if backend is not None else BatchedBackend()
        self.check_regions = check_regions
        self.space = SearchSpace(topology)
        self.spice_calls = 0
        self.best_value = float("inf")
        self.best_widths: Optional[dict[str, float]] = None
        self.best_metrics: Optional[PerformanceMetrics] = None
        self.history: list[float] = []
        #: Running minimum over *observed* objective values, penalties
        #: included — what ``history`` records.  Unlike ``best_value`` it
        #: is finite from the very first SPICE call (a penalized candidate
        #: scored PENALTY; it did not score infinity).
        self._best_seen = float("inf")

    def evaluate_many(self, points: Sequence[np.ndarray]) -> np.ndarray:
        """Evaluate a population of normalized points; lower is better."""
        widths_list = [self.space.decode(point) for point in points]
        outcomes = self.backend.measure_many(self.topology, widths_list)
        return np.array(
            [self._record(w, o) for w, o in zip(widths_list, outcomes)], dtype=float
        )

    def evaluate_one(self, point: np.ndarray) -> float:
        return float(self.evaluate_many(np.asarray(point, dtype=float)[None, :])[0])

    def _record(self, widths: dict[str, float], outcome: MeasureOutcome) -> float:
        self.spice_calls += 1
        if not outcome.ok:
            value = PENALTY
        elif self.check_regions and not self.topology.regions_ok(outcome.result.dc):
            value = PENALTY / 2.0
        else:
            metrics = outcome.result.metrics
            value = float(sum(self.spec.miss_fractions(metrics).values()))
            if value < self.best_value:
                self.best_value = value
                self.best_widths = widths
                self.best_metrics = metrics
        # ``best_value`` stays inf until the first simulatable candidate;
        # history records the best *observed* value instead (an
        # all-penalized prefix records PENALTY, not Infinity), keeping
        # every entry finite, JSON-serializable and monotone.
        self._best_seen = min(self._best_seen, value)
        self.history.append(self._best_seen)
        return value

    @property
    def satisfied(self) -> bool:
        return self.best_value <= 0.0


class Solver(ABC):
    """One sizing method over one topology.

    Every registered solver is constructed as
    ``factory(topology, backend=..., model=...)``: search-based solvers
    use the evaluation backend (``None`` means the batched one), the
    copilot uses the trained model; each ignores what it does not need,
    so callers can instantiate any registry entry uniformly.
    """

    #: Registry name, e.g. ``"sa"``; also stamped on results.
    name: str = "solver"

    def __init__(
        self,
        topology: OTATopology,
        *,
        backend: Optional[EvalBackend] = None,
        model=None,
    ):
        self.topology = topology
        self.backend = backend if backend is not None else BatchedBackend()
        self.model = model

    @abstractmethod
    def solve(
        self,
        spec: DesignSpec,
        budget: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        """Search for a design meeting ``spec`` within ``budget`` SPICE calls.

        ``budget`` bounds the number of SPICE evaluations (for the copilot:
        verification iterations, each costing at most one simulation);
        ``None`` selects the solver's default.  ``rng`` drives any
        stochastic choices; ``None`` means a fixed default seed.
        """


class SearchSolver(Solver):
    """Shared plumbing of the stochastic SPICE-in-the-loop solvers."""

    check_regions: bool = False

    def _objective(self, spec: DesignSpec) -> SearchObjective:
        return SearchObjective(
            self.topology, spec, backend=self.backend, check_regions=self.check_regions
        )

    @staticmethod
    def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
        return rng if rng is not None else np.random.default_rng(0)

    @staticmethod
    def _budget(budget: Optional[int]) -> int:
        if budget is None:
            return DEFAULT_BUDGET
        if budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        return budget

    def _finish(
        self, objective: SearchObjective, start: float, iterations: int
    ) -> SolveResult:
        return SolveResult(
            solver=self.name,
            success=objective.satisfied,
            spice_calls=objective.spice_calls,
            wall_time_s=time.perf_counter() - start,
            best_value=objective.best_value,
            best_widths=objective.best_widths,
            best_metrics=objective.best_metrics,
            history=list(objective.history),
            iterations=iterations,
        )
