"""The transformer copilot as a registered solver.

Wraps the Fig. 3 flow (transformer inference + LUT width estimation +
one verification simulation per copilot iteration, margin allocation on
shortfall) behind the unified :class:`~repro.solvers.Solver` protocol,
so Table IX comparisons and the sizing service dispatch it exactly like
the SPICE-in-the-loop baselines.  ``budget`` counts copilot iterations;
each costs at most one verification simulation, so it is also the SPICE
budget the comparison hinges on.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.specs import DesignSpec
from .base import Solver, SolveResult
from .registry import register

__all__ = ["CopilotSolver", "solve_result_from_sizing"]


def solve_result_from_sizing(name: str, spec: DesignSpec, result) -> SolveResult:
    """Convert a :class:`~repro.core.SizingResult` into a :class:`SolveResult`.

    ``history`` keeps the unified semantics -- best-so-far spec shortfall
    after each SPICE call -- reconstructed from the iteration trace
    (iterations whose design failed to simulate consumed no SPICE call
    and therefore contribute no entry).
    """
    history: list[float] = []
    best = float("inf")
    for trace in result.trace:
        if trace.metrics is None:
            continue
        shortfall = float(sum(spec.miss_fractions(trace.metrics).values()))
        best = min(best, shortfall)
        history.append(best)
    best_value = (
        float(sum(spec.miss_fractions(result.metrics).values()))
        if result.metrics is not None
        else float("inf")
    )
    return SolveResult(
        solver=name,
        success=result.success,
        spice_calls=result.spice_simulations,
        wall_time_s=result.wall_time_s,
        best_value=best_value,
        best_widths=result.widths,
        best_metrics=result.metrics,
        history=history,
        iterations=result.iterations,
        corner_metrics=result.corner_metrics,
        worst_corner=result.worst_corner,
    )


@register
class CopilotSolver(Solver):
    """Transformer+LUT sizing flow behind the unified solver protocol."""

    name = "copilot"

    #: Copilot iterations when no budget is given (the paper's flow cap).
    default_iterations = 6

    def __init__(
        self,
        topology,
        *,
        backend=None,
        model=None,
        corners=None,
        analyses=None,
        engine=None,
        rel_tol: float = 0.0,
    ):
        super().__init__(
            topology, backend=backend, model=model, corners=corners, analyses=analyses
        )
        if engine is None:
            if model is None:
                raise ValueError("CopilotSolver needs a trained model= or an engine=")
            from ..service.engine import SizingEngine

            # The solver's backend becomes the engine's Stage IV strategy,
            # so verification accounting flows through the same place as
            # the search-based solvers'.
            engine = SizingEngine(model, cache_size=0, backend=self.backend)
        engine.adopt_topology(topology)
        self.engine = engine
        self.rel_tol = rel_tol

    def solve(
        self,
        spec: DesignSpec,
        budget: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> SolveResult:
        del rng  # The flow is deterministic: greedy decoding, no sampling.
        from ..service.requests import SizingRequest

        start = time.perf_counter()
        extra = {} if self.analyses is None else {"analyses": tuple(self.analyses)}
        request = SizingRequest(
            topology=self.topology.name,
            spec=spec,
            max_iterations=self.default_iterations if budget is None else budget,
            rel_tol=self.rel_tol,
            corners=self.corners,
            **extra,
        )
        result = self.engine.size_result(request)
        solved = solve_result_from_sizing(self.name, spec, result)
        solved.wall_time_s = time.perf_counter() - start
        return solved
