"""Particle-swarm solver (Table IX, Vural & Yildirim).

Synchronous global-best PSO with inertia damping over the normalized
log-width box: every generation updates all velocities against the
previous generation's bests, then submits the whole repositioned swarm
to the evaluation backend as one population.  Terminates as soon as a
particle satisfies the specification.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.specs import DesignSpec
from .base import SearchSolver, SolveResult
from .registry import register

__all__ = ["ParticleSwarmSolver"]


@register
class ParticleSwarmSolver(SearchSolver):
    """Global-best PSO over the normalized width box."""

    name = "pso"

    def __init__(
        self,
        topology,
        *,
        backend=None,
        model=None,
        corners=None,
        analyses=None,
        swarm_size: int = 12,
        inertia: float = 0.72,
        cognitive: float = 1.49,
        social: float = 1.49,
    ):
        super().__init__(
            topology, backend=backend, model=model, corners=corners, analyses=analyses
        )
        if swarm_size < 1:
            raise ValueError("swarm_size must be >= 1")
        self.swarm_size = swarm_size
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social

    def solve(
        self,
        spec: DesignSpec,
        budget: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> SolveResult:
        budget = self._budget(budget)
        rng = self._rng(rng)
        objective = self._objective(spec)
        start = time.perf_counter()

        swarm = min(self.swarm_size, budget) if budget else 0
        iterations = 0
        if swarm:
            dim = objective.space.dimension
            positions = rng.random((swarm, dim))
            velocities = rng.normal(0.0, 0.1, size=(swarm, dim))
            personal_best = positions.copy()
            personal_values = objective.evaluate_many(positions)

            global_idx = int(np.argmin(personal_values))
            global_best = personal_best[global_idx].copy()
            global_value = float(personal_values[global_idx])

            while objective.spice_calls < budget and not objective.satisfied:
                iterations += 1
                r1 = rng.random((swarm, dim))
                r2 = rng.random((swarm, dim))
                velocities = (
                    self.inertia * velocities
                    + self.cognitive * r1 * (personal_best - positions)
                    + self.social * r2 * (global_best - positions)
                )
                positions = np.clip(positions + velocities, 0.0, 1.0)
                k = min(swarm, budget - objective.spice_calls)
                values = objective.evaluate_many(positions[:k])
                improved = values < personal_values[:k]
                personal_values[:k][improved] = values[improved]
                personal_best[:k][improved] = positions[:k][improved]
                best_idx = int(np.argmin(personal_values))
                if float(personal_values[best_idx]) < global_value:
                    global_value = float(personal_values[best_idx])
                    global_best = personal_best[best_idx].copy()

        return self._finish(objective, start, iterations)
