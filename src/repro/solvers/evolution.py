"""Differential-evolution solver (Table IX, Liu et al. style).

Classic DE/rand/1/bin over the normalized log-width box, batch-
synchronous: each generation builds every trial vector, submits the
whole trial population to the evaluation backend at once, then applies
greedy selection.  Terminates as soon as any member satisfies the
specification.  Degenerates to random search when the population is too
small for rand/1 mutation (fewer than four members).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.specs import DesignSpec
from .base import SearchSolver, SolveResult
from .registry import register

__all__ = ["DifferentialEvolutionSolver"]


@register
class DifferentialEvolutionSolver(SearchSolver):
    """DE/rand/1/bin over the normalized width box."""

    name = "de"

    def __init__(
        self,
        topology,
        *,
        backend=None,
        model=None,
        corners=None,
        analyses=None,
        population_size: int = 12,
        mutation: float = 0.6,
        crossover: float = 0.8,
    ):
        super().__init__(
            topology, backend=backend, model=model, corners=corners, analyses=analyses
        )
        if population_size < 1:
            raise ValueError("population_size must be >= 1")
        self.population_size = population_size
        self.mutation = mutation
        self.crossover = crossover

    def solve(
        self,
        spec: DesignSpec,
        budget: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> SolveResult:
        budget = self._budget(budget)
        rng = self._rng(rng)
        objective = self._objective(spec)
        start = time.perf_counter()

        size = min(self.population_size, budget) if budget else 0
        iterations = 0
        if size:
            dim = objective.space.dimension
            population = rng.random((size, dim))
            values = objective.evaluate_many(population)

            while objective.spice_calls < budget and not objective.satisfied:
                iterations += 1
                k = min(size, budget - objective.spice_calls)
                trials = np.empty((k, dim))
                for i in range(k):
                    if size < 4:
                        trials[i] = rng.random(dim)
                        continue
                    others = [j for j in range(size) if j != i]
                    a, b, c = rng.choice(others, size=3, replace=False)
                    mutant = population[a] + self.mutation * (population[b] - population[c])
                    cross = rng.random(dim) < self.crossover
                    cross[rng.integers(dim)] = True
                    trials[i] = np.clip(np.where(cross, mutant, population[i]), 0.0, 1.0)
                trial_values = objective.evaluate_many(trials)
                selected = trial_values <= values[:k]
                population[:k][selected] = trials[selected]
                values[:k][selected] = trial_values[selected]

        return self._finish(objective, start, iterations)
