"""Evaluation backends: how solvers talk to the SPICE substrate.

Every sizing method -- stochastic optimizer or transformer copilot --
ultimately asks the same question: *measure this candidate design*.  The
backend abstraction decouples solvers from how that measurement is
executed:

* :class:`ScalarBackend` calls ``topology.measure`` once per candidate --
  the reference semantics (and the pre-redesign behavior of the Table IX
  baselines);
* :class:`BatchedBackend` routes whole populations through
  ``topology.measure_many``, which vectorizes the per-candidate AC solves
  (stacked complex MNA over population x frequency grid) and amortizes
  the DC Newton assembly across candidates.

Both produce the same :class:`~repro.topologies.MeasureOutcome` list --
bit-identical metrics, per-candidate failure isolation -- so solvers can
switch backends without changing results (``bench_table9`` pins the
parity and reports the throughput gap).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from ..spice import ConvergenceError
from ..topologies import MeasureOutcome, OTATopology

__all__ = ["EvalBackend", "ScalarBackend", "BatchedBackend"]


class EvalBackend(ABC):
    """Strategy for evaluating candidate width vectors of one topology."""

    @abstractmethod
    def measure_many(
        self, topology: OTATopology, widths_list: Sequence[Mapping[str, float]]
    ) -> list[MeasureOutcome]:
        """Measure every candidate; one aligned outcome per width vector."""

    def measure(
        self, topology: OTATopology, widths: Mapping[str, float]
    ) -> MeasureOutcome:
        """Single-candidate convenience wrapper over :meth:`measure_many`."""
        return self.measure_many(topology, [widths])[0]


class ScalarBackend(EvalBackend):
    """Sequential reference backend: one full SPICE run per candidate."""

    def measure_many(
        self, topology: OTATopology, widths_list: Sequence[Mapping[str, float]]
    ) -> list[MeasureOutcome]:
        outcomes: list[MeasureOutcome] = []
        for widths in widths_list:
            outcome = MeasureOutcome(widths=dict(widths))
            try:
                outcome.result = topology.measure(widths)
            except (ConvergenceError, KeyError, ValueError) as error:
                outcome.error = str(error)
            outcomes.append(outcome)
        return outcomes


class BatchedBackend(EvalBackend):
    """Vectorized bulk backend over ``topology.measure_many``."""

    def measure_many(
        self, topology: OTATopology, widths_list: Sequence[Mapping[str, float]]
    ) -> list[MeasureOutcome]:
        return topology.measure_many(list(widths_list))
