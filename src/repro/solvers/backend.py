"""Evaluation backends: how solvers talk to the SPICE substrate.

Every sizing method -- stochastic optimizer or transformer copilot --
ultimately asks the same question: *measure this candidate design*.  The
backend abstraction decouples solvers from how that measurement is
executed:

* :class:`ScalarBackend` calls ``topology.measure`` once per candidate
  (and, on the corner axis, once per candidate-corner pair) -- the
  reference semantics (and the pre-redesign behavior of the Table IX
  baselines);
* :class:`BatchedBackend` routes whole populations through
  ``topology.measure_many``, which vectorizes the per-candidate AC solves
  (stacked complex MNA over population x frequency grid) and amortizes
  the DC Newton assembly across candidates; with ``corners=`` the corner
  axis stacks into the same batched solves, so a population x corner
  block costs one DC Newton batch and one stacked AC factorization per
  circuit structure.

Both produce the same result shapes -- ``list[MeasureOutcome]`` for flat
calls, ``list[CornerSweep]`` when a ``corners=`` axis is requested --
with bit-identical metrics and per-(candidate, corner) failure
isolation, so solvers can switch backends without changing results
(``bench_table9`` pins the flat parity and throughput gap;
``bench_table8``'s corner mode pins the corner-axis counterpart).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

from ..devices import Corner, CornerLike, resolve_corners
from ..spice import ConvergenceError
from ..topologies import CornerSweep, MeasureOutcome, OTATopology

__all__ = ["EvalBackend", "ScalarBackend", "BatchedBackend"]


class EvalBackend(ABC):
    """Strategy for evaluating candidate width vectors of one topology."""

    @abstractmethod
    def measure_many(
        self,
        topology: OTATopology,
        widths_list: Sequence[Mapping[str, float]],
        corners: Sequence[CornerLike] | None = None,
        analyses: Sequence[str] | None = None,
    ) -> list:
        """Measure every candidate; one aligned outcome per width vector.

        ``corners=None`` evaluates at the nominal corner and returns
        ``list[MeasureOutcome]`` (the pre-corner contract, bit-identical).
        A corner sequence evaluates every candidate at every corner and
        returns ``list[CornerSweep]`` with per-(candidate, corner)
        isolation.

        ``analyses`` selects the measurement pipeline (see
        :func:`repro.topologies.resolve_analyses`); ``None`` is the
        AC-only default, bit-identical to the pre-transient contract.
        Callers only pass the keyword when a non-default pipeline is
        requested, so backends implementing the narrower pre-transient
        signature keep working on the default path.
        """

    def measure(
        self,
        topology: OTATopology,
        widths: Mapping[str, float],
        corner: CornerLike = None,
        analyses: Sequence[str] | None = None,
    ) -> MeasureOutcome:
        """Single-candidate convenience wrapper over :meth:`measure_many`."""
        kwargs = {} if analyses is None else {"analyses": analyses}
        if corner is None:
            return self.measure_many(topology, [widths], **kwargs)[0]
        sweep = self.measure_many(topology, [widths], corners=(corner,), **kwargs)[0]
        return sweep.outcomes[0]


class ScalarBackend(EvalBackend):
    """Sequential reference backend: one full SPICE run per candidate
    (per candidate-corner pair on the corner axis)."""

    def measure_many(
        self,
        topology: OTATopology,
        widths_list: Sequence[Mapping[str, float]],
        corners: Sequence[CornerLike] | None = None,
        analyses: Sequence[str] | None = None,
    ) -> list:
        if corners is not None:
            resolved = resolve_corners(corners)
            if not resolved:
                # Same contract as the batched path (which inherits the
                # check from topology.measure_many): an empty corner axis
                # would yield vacuous all-pass sweeps.
                raise ValueError("corners must be non-empty (use corners=None for nominal)")
            return [
                self._sweep_one(topology, widths, resolved, analyses)
                for widths in widths_list
            ]
        outcomes: list[MeasureOutcome] = []
        for widths in widths_list:
            outcome = MeasureOutcome(widths=dict(widths))
            try:
                outcome.result = topology.measure(widths, analyses=analyses)
            except (ConvergenceError, KeyError, ValueError) as error:
                outcome.error = str(error)
            outcomes.append(outcome)
        return outcomes

    @staticmethod
    def _sweep_one(
        topology: OTATopology,
        widths: Mapping[str, float],
        corners: tuple[Corner, ...],
        analyses: Sequence[str] | None = None,
    ) -> CornerSweep:
        outcomes = []
        for corner in corners:
            outcome = MeasureOutcome(widths=dict(widths))
            try:
                outcome.result = topology.measure(widths, corner=corner, analyses=analyses)
            except (ConvergenceError, KeyError, ValueError) as error:
                outcome.error = str(error)
            outcomes.append(outcome)
        return CornerSweep(widths=dict(widths), corners=corners, outcomes=tuple(outcomes))


class BatchedBackend(EvalBackend):
    """Vectorized bulk backend over ``topology.measure_many``."""

    def measure_many(
        self,
        topology: OTATopology,
        widths_list: Sequence[Mapping[str, float]],
        corners: Sequence[CornerLike] | None = None,
        analyses: Sequence[str] | None = None,
    ) -> list:
        kwargs = {} if analyses is None else {"analyses": analyses}
        if corners is not None:
            return topology.measure_many(list(widths_list), corners=corners, **kwargs)
        return topology.measure_many(list(widths_list), **kwargs)
