"""Sequence serialization: designs <-> transformer text (Stage I glue).

Builds the encoder/decoder text pairs of Sec. IV-A:

* the **encoder** text carries the topology's DP-SFG paths (symbolic device
  parameters -- identical for every design of a topology) plus the
  performance specification values of the design;
* the **decoder** text carries the same information with concrete device
  parameter values (Fig. 4's lower half).

Two decoder formats are supported (see DESIGN.md):

* ``FULL_PATHS`` -- the paper's faithful format: every DP-SFG path rendered
  with substituted engineering-notation values, plus a trailing drain-
  current block (Algorithm 1 needs ``Id``, which does not appear in edge
  weights);
* ``PARAM_ASSIGNMENTS`` -- a compact equivalent listing one
  ``<param><device>=<value>`` assignment per unique device parameter; same
  information, ~5x shorter targets, the default under CPU budgets.

The parser inverts either format back into per-device parameter values.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from collections.abc import Mapping

from ..dpsfg import render_sequences
from ..nlp.numformat import (
    VALUE_PATTERN,
    format_capacitance,
    format_conductance,
    format_current,
    format_engineering,
    parse_engineering,
)
from ..topologies import OTATopology

__all__ = ["SequenceFormat", "SequenceConfig", "SequenceBuilder", "ParsedParams"]

#: Device parameters in decoder order, with their formatting/units.
_PARAM_ORDER = ("gm", "gds", "Cds", "Cgs", "Id")
_PARAM_UNITS = {"gm": "S", "gds": "S", "Cds": "F", "Cgs": "F", "Id": "A"}
_FORMATTERS = {
    "gm": format_conductance,
    "gds": format_conductance,
    "Cds": format_capacitance,
    "Cgs": format_capacitance,
    "Id": format_current,
}

#: One ``gmM1=2.50mS`` style assignment.
_ASSIGNMENT = re.compile(
    r"(?P<param>gm|gds|Cds|Cgs|Id)(?P<device>[A-Za-z]+\d*)="
    r"(?P<value>-?\d+(?:\.\d+)?[afpnumkMG]?(?:S|F|A))"
)
#: Device-parameter occurrences inside symbolic path text.
_SYMBOLIC_PARAM = re.compile(r"(?P<param>gm|gds|Cds|Cgs)(?P<device>[A-Za-z]+\d*)")


class SequenceFormat(Enum):
    """Decoder target format."""

    FULL_PATHS = "full_paths"
    PARAM_ASSIGNMENTS = "param_assignments"


@dataclass(frozen=True)
class SequenceConfig:
    """Knobs of the circuit-to-sequence mapping.

    ``encoder_max_paths`` truncates the forward-path list in the encoder
    text (a CPU-budget knob; ``None`` keeps every path, the paper's
    configuration).  ``specs_per_path`` replicates the specification block
    after every path line as in Fig. 4 instead of once at the head.
    """

    decoder_format: SequenceFormat = SequenceFormat.PARAM_ASSIGNMENTS
    encoder_max_paths: int | None = None
    specs_per_path: bool = False
    include_paths_in_encoder: bool = True


@dataclass
class ParsedParams:
    """Decoder output parsed back into per-device parameter values (SI)."""

    values: dict[str, dict[str, float]] = field(default_factory=dict)
    complete: bool = True
    missing: list[str] = field(default_factory=list)

    def device(self, name: str) -> dict[str, float]:
        return self.values[name]


class SequenceBuilder:
    """Builds and parses encoder/decoder texts for one topology."""

    def __init__(self, topology: OTATopology, config: SequenceConfig | None = None):
        self.topology = topology
        self.config = config or SequenceConfig()
        self._symbolic_lines = render_sequences(
            topology.symbolic_dpsfg(),
            env=None,
            inventory=topology.path_inventory(),
            max_paths=self.config.encoder_max_paths,
        )

    # ------------------------------------------------------------------
    # Specs
    # ------------------------------------------------------------------
    @staticmethod
    def format_specs(gain_db: float, f3db_hz: float, ugf_hz: float) -> str:
        """Render the specification block, e.g.
        ``gain=20.1dB bw=13.3MHz ugf=119MHz``."""
        return (
            f"gain={format_engineering(gain_db, 'dB')} "
            f"bw={format_engineering(f3db_hz, 'Hz')} "
            f"ugf={format_engineering(ugf_hz, 'Hz')}"
        )

    # ------------------------------------------------------------------
    # Encoder
    # ------------------------------------------------------------------
    def encoder_text(self, gain_db: float, f3db_hz: float, ugf_hz: float) -> str:
        """Symbolic paths + specs for one query (upper half of Fig. 4)."""
        specs = self.format_specs(gain_db, f3db_hz, ugf_hz)
        head = f"<{self.topology.name}> {specs}"
        if not self.config.include_paths_in_encoder:
            return head
        if self.config.specs_per_path:
            body = " ; ".join(f"{line} {specs}" for line in self._symbolic_lines)
        else:
            body = " ; ".join(self._symbolic_lines)
        return f"{head} | {body}"

    # ------------------------------------------------------------------
    # Decoder
    # ------------------------------------------------------------------
    def decoder_text(self, device_params: Mapping[str, Mapping[str, float]]) -> str:
        """Target text for one design.

        ``device_params`` maps each *representative* device (group name) to
        its ``{"gm","gds","cds","cgs","id"}`` values in SI units.
        """
        if self.config.decoder_format is SequenceFormat.PARAM_ASSIGNMENTS:
            return self._assignments_text(device_params)
        return self._full_paths_text(device_params)

    def _assignments_text(self, device_params: Mapping[str, Mapping[str, float]]) -> str:
        chunks: list[str] = []
        for group in self.topology.groups:
            params = device_params[group.name]
            parts = [
                f"{name}{group.name}={_FORMATTERS[name](params[name.lower()])}"
                for name in _PARAM_ORDER
            ]
            chunks.append(" ".join(parts))
        return " ; ".join(chunks)

    def _template_params(self) -> list[tuple[str, str]]:
        """Device-parameter occurrences in the symbolic path text, in order."""
        template = " ; ".join(self._symbolic_lines)
        return [
            (m.group("param"), m.group("device"))
            for m in _SYMBOLIC_PARAM.finditer(template)
        ]

    def _full_paths_text(self, device_params: Mapping[str, Mapping[str, float]]) -> str:
        env: dict[str, float] = {}
        device_to_group = self.topology.device_to_group()
        for device, group_name in device_to_group.items():
            params = device_params[group_name]
            env[f"gm{device}"] = params["gm"]
            env[f"gds{device}"] = params["gds"]
            env[f"Cds{device}"] = params["cds"]
            env[f"Cgs{device}"] = params["cgs"]
        lines = render_sequences(
            self.topology.symbolic_dpsfg(),
            env=env,
            inventory=self.topology.path_inventory(),
            max_paths=self.config.encoder_max_paths,
        )
        # Trailing completeness block: drain currents for every group, plus
        # any parameter that never shows up in the path text (e.g. the gm
        # and Cgs of a tail device whose gate sits at a DC bias node and
        # therefore contributes no small-signal edge).
        present: set[tuple[str, str]] = set()
        for param, device in self._template_params():
            group = device_to_group.get(device)
            if group is not None:
                present.add((param, group))
        tail_parts: list[str] = []
        for group in self.topology.groups:
            params = device_params[group.name]
            for name in _PARAM_ORDER:
                if name == "Id" or (name, group.name) not in present:
                    tail_parts.append(
                        f"{name}{group.name}={_FORMATTERS[name](params[name.lower()])}"
                    )
        return " ; ".join(lines) + " | " + " ".join(tail_parts)

    # ------------------------------------------------------------------
    # Parsing decoder output
    # ------------------------------------------------------------------
    def parse_decoder_text(self, text: str) -> ParsedParams:
        """Invert :meth:`decoder_text` (either format) into SI values."""
        if self.config.decoder_format is SequenceFormat.PARAM_ASSIGNMENTS:
            parsed = self._parse_assignments(text)
        else:
            parsed = self._parse_full_paths(text)
        required = [
            (group.name, name) for group in self.topology.groups for name in _PARAM_ORDER
        ]
        missing = [
            f"{name}{group}" for group, name in required
            if name.lower() not in parsed.values.get(group, {})
        ]
        parsed.missing = missing
        parsed.complete = not missing
        return parsed

    def _parse_assignments(self, text: str) -> ParsedParams:
        device_to_group = self.topology.device_to_group()
        result = ParsedParams()
        for match in _ASSIGNMENT.finditer(text):
            device = match.group("device")
            group = device_to_group.get(device)
            if group is None:
                continue
            value, unit = parse_engineering(match.group("value"))
            param = match.group("param")
            if unit != _PARAM_UNITS[param] or value <= 0:
                continue
            result.values.setdefault(group, {})[param.lower()] = value
        return result

    def _parse_full_paths(self, text: str) -> ParsedParams:
        device_to_group = self.topology.device_to_group()
        result = ParsedParams()
        # The completeness block after '|' parses like assignments.
        body, _, tail_block = text.partition("|")
        for match in _ASSIGNMENT.finditer(tail_block):
            device = match.group("device")
            group = device_to_group.get(device)
            if group is None:
                continue
            value, unit = parse_engineering(match.group("value"))
            param = match.group("param")
            if unit == _PARAM_UNITS[param] and value > 0:
                result.values.setdefault(group, {})[param.lower()] = value

        # Align symbolic parameter occurrences with predicted values in
        # order of appearance; the first occurrence of each parameter wins.
        # Values are taken in magnitude -- a ``-gm`` edge weight renders as
        # a negative value, but the sign is structural, not part of the
        # parameter.
        template_params = self._template_params()
        predicted_values = [m.group(0) for m in VALUE_PATTERN.finditer(body)]
        for (param, device), value_text in zip(template_params, predicted_values, strict=False):
            group = device_to_group.get(device)
            if group is None:
                continue
            try:
                value, unit = parse_engineering(value_text)
            except ValueError:
                continue
            if unit != _PARAM_UNITS[param] or value == 0:
                continue
            result.values.setdefault(group, {}).setdefault(param.lower(), abs(value))
        return result
