"""Width-vector sampling for dataset generation (Sec. IV-A).

The paper generates designs "by nested sweeps of widths ranging from 0.7um
to 50um" under matching constraints.  Both samplers below emit per-group
width dictionaries (matching is enforced by construction because widths are
per *group*):

* :func:`grid_sampler` -- the literal nested sweep (cartesian product of
  per-group log-spaced grids);
* :func:`random_sampler` -- log-uniform random sampling of the same box,
  which covers the space more evenly per simulation when the grid would be
  too large; this is the default for CPU-budget dataset sizes.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

import numpy as np

from ..topologies import OTATopology

__all__ = ["grid_sampler", "random_sampler"]


def grid_sampler(topology: OTATopology, points_per_group: int) -> Iterator[dict[str, float]]:
    """Nested sweep: log-spaced grid per group, cartesian product."""
    if points_per_group < 1:
        raise ValueError("points_per_group must be >= 1")
    axes: list[np.ndarray] = []
    for group in topology.groups:
        low, high = group.width_bounds
        axes.append(np.geomspace(low, high, points_per_group))
    names = topology.group_names
    for combo in itertools.product(*axes):
        yield {name: float(width) for name, width in zip(names, combo, strict=True)}


def random_sampler(
    topology: OTATopology,
    rng: np.random.Generator,
    count: int | None = None,
) -> Iterator[dict[str, float]]:
    """Log-uniform sampling of each group's width bounds.

    Yields ``count`` samples, or indefinitely when ``count`` is ``None``
    (the dataset generator stops when it has enough accepted designs).
    """
    names = topology.group_names
    bounds = [topology.group(name).width_bounds for name in names]
    produced = 0
    while count is None or produced < count:
        sample = {
            name: float(np.exp(rng.uniform(np.log(low), np.log(high))))
            for name, (low, high) in zip(names, bounds, strict=True)
        }
        produced += 1
        yield sample
