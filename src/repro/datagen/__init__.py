"""Dataset generation: sampling, filtering, serialization, tokenization."""

from .dataset import (
    DesignRecord,
    GenerationStats,
    OTADataset,
    TokenizedCorpus,
    build_corpus,
    generate_dataset,
)
from .filters import DesignFilter, FilterDecision, SpecRange
from .sampler import grid_sampler, random_sampler
from .serialize import ParsedParams, SequenceBuilder, SequenceConfig, SequenceFormat

__all__ = [
    "DesignRecord",
    "GenerationStats",
    "OTADataset",
    "TokenizedCorpus",
    "build_corpus",
    "generate_dataset",
    "DesignFilter",
    "FilterDecision",
    "SpecRange",
    "grid_sampler",
    "random_sampler",
    "ParsedParams",
    "SequenceBuilder",
    "SequenceConfig",
    "SequenceFormat",
]
