"""Design acceptance filters for dataset generation (Sec. IV-A).

The paper filters the swept designs through four checks before admitting
them to the training set:

1. matching constraints -- enforced by construction (per-group widths);
2. an ICMR sweep: the nominal input common mode must sit inside the range
   where every device stays saturated;
3. region-of-operation: current mirrors in strong inversion, differential
   pairs in weak inversion (checked via the EKV inversion coefficient);
4. a specification-range window (the paper's Table I ranges; ours are
   calibrated to this simulator and reported by the Table I bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np

from ..spice import ConvergenceError, PerformanceMetrics, icmr_sweep
from ..topologies import MeasurementResult, OTATopology

__all__ = ["SpecRange", "DesignFilter", "FilterDecision"]


@dataclass(frozen=True)
class SpecRange:
    """Acceptance window for the three metrics (Table I columns)."""

    gain_db: tuple[float, float]
    f3db_hz: tuple[float, float]
    ugf_hz: tuple[float, float]

    def contains(self, metrics: PerformanceMetrics) -> bool:
        if not metrics.is_valid():
            return False
        checks = (
            (self.gain_db, metrics.gain_db),
            (self.f3db_hz, metrics.f3db_hz),
            (self.ugf_hz, metrics.ugf_hz),
        )
        return all(low <= value <= high for (low, high), value in checks)


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of filtering one candidate design."""

    accepted: bool
    reason: str


class DesignFilter:
    """Applies the Sec. IV-A acceptance checks to measured designs."""

    def __init__(
        self,
        topology: OTATopology,
        spec_range: SpecRange | None = None,
        check_regions: bool = True,
        check_icmr: bool = True,
        icmr_points: int = 5,
        icmr_margin: float = 0.1,
    ):
        self.topology = topology
        self.spec_range = spec_range
        self.check_regions = check_regions
        self.check_icmr = check_icmr
        self.icmr_points = icmr_points
        self.icmr_margin = icmr_margin

    def __call__(self, widths: Mapping[str, float], result: MeasurementResult) -> FilterDecision:
        """Decide whether an already-measured design enters the dataset."""
        if not result.metrics.is_valid():
            return FilterDecision(False, "unresolved metrics")
        if self.check_regions and not self.topology.regions_ok(result.dc):
            return FilterDecision(False, "region-of-operation violation")
        if self.spec_range is not None and not self.spec_range.contains(result.metrics):
            return FilterDecision(False, "outside specification range")
        if self.check_icmr and not self._icmr_ok(result):
            return FilterDecision(False, "Vcm outside ICMR")
        return FilterDecision(True, "accepted")

    def _icmr_ok(self, result: MeasurementResult) -> bool:
        """Sweep Vcm around nominal and require saturation throughout.

        A design whose devices fall out of saturation within ``icmr_margin``
        volts of the nominal common mode has no usable input range.
        """
        vcm = self.topology.vcm
        values = np.linspace(vcm - self.icmr_margin, vcm + self.icmr_margin, self.icmr_points)
        try:
            sweep = icmr_sweep(
                result.circuit,
                vcm_sources=list(self.topology.input_sources),
                vcm_values=values,
            )
        except ConvergenceError:
            return False
        return bool(sweep.all_saturated.all())
