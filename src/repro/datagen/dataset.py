"""Labeled dataset generation and tokenized corpus assembly (Sec. IV-A/B).

``generate_dataset`` runs the paper's pipeline for one topology: sample
widths under matching constraints, simulate (DC + AC), apply the acceptance
filters, and record the three performance metrics plus the per-device
parameters of every accepted design.

``build_corpus`` then turns several topology datasets into one tokenized
sequence corpus (the paper trains a *single* transformer across all three
OTA topologies) with a shared restricted-BPE tokenizer and vocabulary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

import numpy as np

from ..nlp import RestrictedBPE, Vocabulary
from ..spice import ConvergenceError
from ..topologies import OTATopology, topology_by_name
from ..transformer import SequencePair
from .filters import DesignFilter, FilterDecision
from .sampler import random_sampler
from .serialize import SequenceBuilder, SequenceConfig

__all__ = [
    "DesignRecord",
    "OTADataset",
    "GenerationStats",
    "generate_dataset",
    "TokenizedCorpus",
    "build_corpus",
]


@dataclass(frozen=True)
class DesignRecord:
    """One accepted design: widths, metrics and device parameters."""

    widths: dict[str, float]
    gain_db: float
    f3db_hz: float
    ugf_hz: float
    device_params: dict[str, dict[str, float]]

    def to_json(self) -> dict:
        return {
            "widths": self.widths,
            "gain_db": self.gain_db,
            "f3db_hz": self.f3db_hz,
            "ugf_hz": self.ugf_hz,
            "device_params": self.device_params,
        }

    @classmethod
    def from_json(cls, data: dict) -> DesignRecord:
        return cls(
            widths={k: float(v) for k, v in data["widths"].items()},
            gain_db=float(data["gain_db"]),
            f3db_hz=float(data["f3db_hz"]),
            ugf_hz=float(data["ugf_hz"]),
            device_params={
                dev: {k: float(v) for k, v in params.items()}
                for dev, params in data["device_params"].items()
            },
        )


@dataclass
class GenerationStats:
    """Bookkeeping of the generation run (acceptance funnel)."""

    attempted: int = 0
    convergence_failures: int = 0
    rejections: dict[str, int] = field(default_factory=dict)
    accepted: int = 0

    def reject(self, reason: str) -> None:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / max(self.attempted, 1)


@dataclass
class OTADataset:
    """All accepted designs of one topology plus generation stats."""

    topology_name: str
    records: list[DesignRecord]
    stats: GenerationStats = field(default_factory=GenerationStats)

    def __len__(self) -> int:
        return len(self.records)

    def metric_ranges(self) -> dict[str, tuple[float, float]]:
        """Observed min/max of each metric (our Table I rows)."""
        gains = [r.gain_db for r in self.records]
        bws = [r.f3db_hz for r in self.records]
        ugfs = [r.ugf_hz for r in self.records]
        return {
            "gain_db": (min(gains), max(gains)),
            "f3db_hz": (min(bws), max(bws)),
            "ugf_hz": (min(ugfs), max(ugfs)),
        }

    def split(self, train_fraction: float, rng: np.random.Generator) -> tuple[list[DesignRecord], list[DesignRecord]]:
        """Shuffled train/validation split (the paper uses 80:20)."""
        order = np.arange(len(self.records))
        rng.shuffle(order)
        cut = int(round(train_fraction * len(order)))
        train = [self.records[i] for i in order[:cut]]
        val = [self.records[i] for i in order[cut:]]
        return train, val

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        payload = {
            "topology": self.topology_name,
            "records": [r.to_json() for r in self.records],
        }
        # allow_nan=False: records pass the finite-metrics design filter,
        # so a non-finite value here is a bug worth failing on loudly.
        Path(path).write_text(json.dumps(payload, allow_nan=False))

    @classmethod
    def load(cls, path: str | Path) -> OTADataset:
        data = json.loads(Path(path).read_text())
        return cls(
            topology_name=data["topology"],
            records=[DesignRecord.from_json(r) for r in data["records"]],
        )


def generate_dataset(
    topology: OTATopology,
    n_designs: int,
    rng: np.random.Generator,
    design_filter: DesignFilter | None = None,
    max_attempts: int | None = None,
) -> OTADataset:
    """Generate ``n_designs`` accepted designs for one topology.

    Follows Sec. IV-A: sample widths (matching enforced), simulate,
    filter (regions / ICMR / spec window), record metrics and the device
    parameters of the representative device of each matched group.
    """
    if design_filter is None:
        design_filter = DesignFilter(topology)
    limit = max_attempts if max_attempts is not None else 50 * n_designs
    stats = GenerationStats()
    records: list[DesignRecord] = []
    sampler = random_sampler(topology, rng)
    for widths in sampler:
        if len(records) >= n_designs or stats.attempted >= limit:
            break
        stats.attempted += 1
        try:
            result = topology.measure(widths)
        except ConvergenceError:
            stats.convergence_failures += 1
            continue
        decision: FilterDecision = design_filter(widths, result)
        if not decision.accepted:
            stats.reject(decision.reason)
            continue
        stats.accepted += 1
        device_params = {
            group.name: dict(result.device_params[group.name])
            for group in topology.groups
        }
        records.append(
            DesignRecord(
                widths=dict(widths),
                gain_db=result.metrics.gain_db,
                f3db_hz=result.metrics.f3db_hz,
                ugf_hz=result.metrics.ugf_hz,
                device_params=device_params,
            )
        )
    return OTADataset(topology_name=topology.name, records=records, stats=stats)


@dataclass
class TokenizedCorpus:
    """Shared tokenizer/vocabulary plus per-topology sequence pairs."""

    bpe: RestrictedBPE
    vocab: Vocabulary
    builders: dict[str, SequenceBuilder]
    pairs_by_topology: dict[str, list[SequencePair]]

    def all_pairs(self) -> list[SequencePair]:
        collected: list[SequencePair] = []
        for name in sorted(self.pairs_by_topology):
            collected.extend(self.pairs_by_topology[name])
        return collected

    def encode_text(self, text: str) -> tuple[int, ...]:
        return tuple(self.vocab.encode(self.bpe.encode(text)))

    def decode_ids(self, ids: Sequence[int]) -> str:
        return self.vocab.decode_to_text(ids)


def build_corpus(
    datasets: Sequence[OTADataset],
    sequence_config: SequenceConfig | None = None,
    num_merges: int = 200,
    topologies: dict[str, OTATopology] | None = None,
) -> TokenizedCorpus:
    """Tokenize several topology datasets into one training corpus.

    A single BPE tokenizer and vocabulary are trained across all
    topologies, mirroring the paper's single multi-topology model.
    """
    config = sequence_config or SequenceConfig()
    builders: dict[str, SequenceBuilder] = {}
    raw_texts: dict[str, list[tuple[str, str]]] = {}
    for dataset in datasets:
        if topologies and dataset.topology_name in topologies:
            topology = topologies[dataset.topology_name]
        else:
            topology = topology_by_name(dataset.topology_name)
        builder = SequenceBuilder(topology, config)
        builders[dataset.topology_name] = builder
        texts: list[tuple[str, str]] = []
        for record in dataset.records:
            encoder = builder.encoder_text(record.gain_db, record.f3db_hz, record.ugf_hz)
            decoder = builder.decoder_text(record.device_params)
            texts.append((encoder, decoder))
        raw_texts[dataset.topology_name] = texts

    corpus_lines: list[str] = []
    for texts in raw_texts.values():
        for encoder, decoder in texts:
            corpus_lines.append(encoder)
            corpus_lines.append(decoder)

    bpe = RestrictedBPE(num_merges=num_merges)
    bpe.train(corpus_lines)
    vocab = bpe.build_vocabulary(corpus_lines)

    pairs_by_topology: dict[str, list[SequencePair]] = {}
    for name, texts in raw_texts.items():
        pairs = [
            SequencePair(
                source=tuple(vocab.encode(bpe.encode(encoder))),
                target=tuple(vocab.encode(bpe.encode(decoder))),
            )
            for encoder, decoder in texts
        ]
        pairs_by_topology[name] = pairs

    return TokenizedCorpus(bpe=bpe, vocab=vocab, builders=builders, pairs_by_topology=pairs_by_topology)
