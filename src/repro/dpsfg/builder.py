"""Construction of driving-point signal flow graphs from netlists.

Implements Sec. III-B of the paper (Steps 0-3), formalizing the approach of
Ochoa and Schmid & Huber:

* **Step 0** -- bookkeeping: classify nodes into ground, *driven* (connected
  to a voltage source; their small-signal voltage is known) and *internal*.
* **Step 1** -- each internal node ``k`` gets an auxiliary source pair: a
  current vertex ``I<k>`` and a voltage vertex ``V<k>`` connected by the
  driving-point impedance ``z_k = 1 / (sum of passive admittances at k)``.
* **Step 2** -- every passive branch (resistor, capacitor, device ``gds``,
  ``Cgs``, ``Cds``) between nodes ``a`` and ``b`` adds coupling edges
  ``V<a> -> I<b>`` and ``V<b> -> I<a>`` weighted by the branch admittance.
* **Step 3** -- every transistor transconductance adds ``+-gm`` edges from
  the gate and source voltage vertices into the drain and source current
  vertices.

Excitations (AC-driven voltage sources, AC current sources) become source
vertices; the designated output node gets a ``Vout`` vertex.  Edge weights
are the symbolic expressions of :mod:`repro.dpsfg.expr`, so the same graph
serves both sequence serialization (symbolic or value-substituted) and
numeric evaluation through Mason's formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

import networkx as nx

from ..devices import SmallSignal
from ..spice.netlist import GROUND, Circuit
from .expr import LinComb, Reciprocal, Weight, capacitance, conductance, one, transconductance

__all__ = ["DPSFG", "build_dpsfg", "device_param_names"]


def device_param_names(device_name: str) -> dict[str, str]:
    """Parameter names for one device, in the paper's naming style.

    >>> device_param_names("M1")["gm"]
    'gmM1'
    """
    return {
        "gm": f"gm{device_name}",
        "gds": f"gds{device_name}",
        "cds": f"Cds{device_name}",
        "cgs": f"Cgs{device_name}",
    }


@dataclass
class DPSFG:
    """A driving-point signal flow graph plus evaluation context.

    Attributes
    ----------
    graph:
        Directed graph whose edges carry ``weight`` attributes of type
        :class:`~repro.dpsfg.expr.Weight`.
    excitations:
        Source vertex name -> small-signal amplitude.
    output:
        Name of the output vertex (``"Vout"``).
    values:
        Known numeric values for symbolic parameters (passives always;
        device parameters only when the graph was built from an operating
        point).
    internal_nodes:
        Circuit node names that received auxiliary ``I``/``V`` vertex pairs.
    """

    graph: nx.DiGraph
    excitations: dict[str, complex]
    output: str
    values: dict[str, float] = field(default_factory=dict)
    internal_nodes: list[str] = field(default_factory=list)

    def weight(self, tail: str, head: str) -> Weight:
        return self.graph.edges[tail, head]["weight"]

    def parameter_names(self) -> set[str]:
        """All symbolic parameter names appearing on any edge."""
        names: set[str] = set()
        for _, _, data in self.graph.edges(data=True):
            names.update(data["weight"].parameter_names())
        return names

    def merged_env(self, env: Mapping[str, float] | None = None) -> dict[str, float]:
        merged = dict(self.values)
        if env:
            merged.update(env)
        return merged


class _GraphAccumulator:
    """Accumulates parallel edges by summing their linear combinations."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()

    def add(self, tail: str, head: str, weight: Weight) -> None:
        if isinstance(weight, Reciprocal):
            if self.graph.has_edge(tail, head):
                raise ValueError(f"duplicate impedance edge {tail}->{head}")
            self.graph.add_edge(tail, head, weight=weight)
            return
        if self.graph.has_edge(tail, head):
            existing = self.graph.edges[tail, head]["weight"]
            if isinstance(existing, Reciprocal):
                raise ValueError(f"cannot merge admittance into impedance edge {tail}->{head}")
            combined = (existing + weight).collect()
            if combined.is_empty():
                self.graph.remove_edge(tail, head)
            else:
                self.graph.edges[tail, head]["weight"] = combined
        else:
            collected = weight.collect()
            if not collected.is_empty():
                self.graph.add_edge(tail, head, weight=collected)


def build_dpsfg(
    circuit: Circuit,
    output_node: str,
    small_signals: Mapping[str, SmallSignal] | None = None,
) -> DPSFG:
    """Build the DP-SFG of ``circuit`` (Steps 0-3 of Sec. III-B).

    Parameters
    ----------
    circuit:
        The netlist.  Voltage sources must have one grounded terminal; a
        source with ``ac == 0`` acts as a small-signal ground, one with
        ``ac != 0`` becomes an excitation vertex.
    output_node:
        Circuit node observed as the output; must be an internal node.
    small_signals:
        Optional mapping from device name to its operating-point
        :class:`~repro.devices.SmallSignal`.  When given, the numeric device
        parameter values are recorded in :attr:`DPSFG.values` so sequences
        can be rendered with substituted values (Fig. 4, lower half) and the
        graph can be evaluated without an extra environment.  When omitted
        the graph is purely symbolic in the device parameters.
    """
    # ------------------------------------------------------------------
    # Step 0: node classification.
    values: dict[str, float] = {}
    driven_amplitude: dict[str, complex] = {}
    for source in circuit.vsources:
        if source.pos != GROUND and source.neg != GROUND:
            raise ValueError(
                f"DP-SFG requires grounded voltage sources; {source.name} is floating"
            )
        node = source.pos if source.pos != GROUND else source.neg
        sign = 1.0 if source.pos != GROUND else -1.0
        driven_amplitude[node] = complex(sign * source.ac)

    internal = [n for n in circuit.nodes() if n not in driven_amplitude]
    if output_node not in internal:
        raise ValueError(f"output node {output_node!r} must be an internal node")

    def v_vertex(node: str) -> str | None:
        """Voltage vertex for a node: None for small-signal grounds."""
        if node == GROUND:
            return None
        if node in driven_amplitude:
            return f"V{node}" if driven_amplitude[node] != 0 else None
        return f"V{node}"

    # ------------------------------------------------------------------
    # Collect passive branches: (node_a, node_b, admittance LinComb).
    branches: list[tuple[str, str, LinComb]] = []
    for res in circuit.resistors:
        values[res.name] = res.conductance
        branches.append((res.node1, res.node2, conductance(res.name)))
    for cap in circuit.capacitors:
        values[cap.name] = cap.capacitance
        branches.append((cap.node1, cap.node2, capacitance(cap.name)))
    for device in circuit.mosfets:
        names = device_param_names(device.name)
        branches.append((device.drain, device.source, conductance(names["gds"])))
        branches.append((device.drain, device.source, capacitance(names["cds"])))
        branches.append((device.gate, device.source, capacitance(names["cgs"])))
        if small_signals is not None:
            small = small_signals[device.name]
            values[names["gm"]] = small.gm
            values[names["gds"]] = small.gds
            values[names["cds"]] = small.cds
            values[names["cgs"]] = small.cgs

    acc = _GraphAccumulator()

    # ------------------------------------------------------------------
    # Step 1: auxiliary source pairs with driving-point impedances.
    for node in internal:
        z_terms = LinComb(())
        for node_a, node_b, admittance in branches:
            if node in (node_a, node_b) and node_a != node_b:
                z_terms = z_terms + admittance
        if z_terms.is_empty():
            raise ValueError(f"internal node {node!r} has no admittance to anywhere")
        acc.add(f"I{node}", f"V{node}", Reciprocal(z_terms.collect()))

    # ------------------------------------------------------------------
    # Step 2: coupling edges from passive branches.
    for node_a, node_b, admittance in branches:
        if node_a == node_b:
            continue
        for src, dst in ((node_a, node_b), (node_b, node_a)):
            if dst in driven_amplitude or dst == GROUND:
                continue  # current into a voltage-pinned node is absorbed
            tail = v_vertex(src)
            if tail is not None:
                acc.add(tail, f"I{dst}", admittance)

    # ------------------------------------------------------------------
    # Step 3: transconductance edges.
    for device in circuit.mosfets:
        gm_name = device_param_names(device.name)["gm"]
        # Current into the drain node: -gm*Vg + gm*Vs.
        # Current into the source node: +gm*Vg - gm*Vs.
        for target, gate_sign in ((device.drain, -1.0), (device.source, 1.0)):
            if target in driven_amplitude or target == GROUND:
                continue
            gate_tail = v_vertex(device.gate)
            if gate_tail is not None:
                acc.add(gate_tail, f"I{target}", transconductance(gm_name, gate_sign))
            source_tail = v_vertex(device.source)
            if source_tail is not None:
                acc.add(source_tail, f"I{target}", transconductance(gm_name, -gate_sign))

    # ------------------------------------------------------------------
    # Excitations.
    excitations: dict[str, complex] = {}
    for node, amplitude in driven_amplitude.items():
        if amplitude != 0:
            excitations[f"V{node}"] = amplitude
    for source in circuit.isources:
        if source.ac == 0:
            continue
        vertex = source.name
        excitations[vertex] = complex(source.ac)
        # Convention: the AC amplitude is the current pushed INTO ``neg``.
        if source.neg != GROUND and source.neg not in driven_amplitude:
            acc.add(vertex, f"I{source.neg}", one())
        if source.pos != GROUND and source.pos not in driven_amplitude:
            acc.add(vertex, f"I{source.pos}", -one())

    # Output vertex.  The paper's Fig. 2(b) adds a distinct ``Vout`` vertex
    # fed by the output node's auxiliary voltage through a unit edge.  When
    # the output node is itself named ``out`` its auxiliary vertex already
    # *is* ``Vout``; adding the unit edge would create a spurious self-loop,
    # so the auxiliary vertex doubles as the sink in that case.
    output_vertex = f"V{output_node}"
    if output_vertex != "Vout":
        acc.add(output_vertex, "Vout", one())
        output_vertex = "Vout"

    return DPSFG(
        graph=acc.graph,
        excitations=excitations,
        output=output_vertex,
        values=values,
        internal_nodes=internal,
    )
