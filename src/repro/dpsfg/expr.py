"""Symbolic edge-weight expressions for DP-SFG graphs.

DP-SFG edge weights are small symbolic admittance expressions in the complex
frequency ``s`` (Sec. II-B, Fig. 2):

* driving-point impedances ``z = 1/(sC1 + g1 + ...)``,
* coupling admittances ``sC1 + g1 + ...``, and
* transconductance gains ``+-gm``.

Three atom kinds cover everything: conductances (evaluate to ``g``),
capacitances (evaluate to ``s*C`` and render with a leading ``s``), and
constants.  Expressions are linear combinations of atoms, optionally wrapped
in a reciprocal.  Each expression can

* ``evaluate(s, env)`` numerically for Mason's formula, and
* ``render(env)`` into the paper's string format -- symbolic when ``env``
  lacks the parameter (``gdsM0``), substituted when it has it (``101uS``),
  reproducing Fig. 4's decoder-sequence style.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..nlp.numformat import format_capacitance, format_conductance

__all__ = ["Atom", "LinComb", "Reciprocal", "Weight", "one", "conductance", "capacitance", "transconductance"]

Env = Mapping[str, float]


@dataclass(frozen=True)
class Atom:
    """One named parameter: a conductance, capacitance or constant.

    ``kind`` is one of ``"g"`` (conductance / transconductance, unit S),
    ``"c"`` (capacitance, enters edge weights as ``s*C``) or ``"const"``
    (dimensionless constant with ``value`` fixed at construction).
    """

    name: str
    kind: str
    value: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("g", "c", "const"):
            raise ValueError(f"unknown atom kind {self.kind!r}")

    def evaluate(self, s: complex, env: Env | None) -> complex:
        if self.kind == "const":
            return complex(self.value)
        if env is None or self.name not in env:
            raise KeyError(f"no value for parameter {self.name!r}")
        if self.kind == "c":
            return s * env[self.name]
        return complex(env[self.name])

    def render(self, env: Env | None = None) -> str:
        if self.kind == "const":
            value = self.value
            return str(int(value)) if float(value).is_integer() else f"{value:g}"
        if env is not None and self.name in env:
            if self.kind == "c":
                return "s" + format_capacitance(env[self.name])
            return format_conductance(env[self.name])
        return ("s" + self.name) if self.kind == "c" else self.name


@dataclass(frozen=True)
class LinComb:
    """Signed sum of atoms, e.g. ``sC + sCgsM1 - gmM1``."""

    terms: tuple[tuple[float, Atom], ...]

    @staticmethod
    def of(*terms: tuple[float, Atom]) -> LinComb:
        return LinComb(tuple(terms))

    def __add__(self, other: LinComb) -> LinComb:
        return LinComb(self.terms + other.terms).collect()

    def __neg__(self) -> LinComb:
        return LinComb(tuple((-coef, atom) for coef, atom in self.terms))

    def collect(self) -> LinComb:
        """Merge duplicate atoms, dropping zero-coefficient terms."""
        merged: dict[Atom, float] = {}
        order: list[Atom] = []
        for coef, atom in self.terms:
            if atom not in merged:
                merged[atom] = 0.0
                order.append(atom)
            merged[atom] += coef
        kept = tuple((merged[a], a) for a in order if merged[a] != 0.0)
        return LinComb(kept)

    def is_empty(self) -> bool:
        return not self.collect().terms

    def evaluate(self, s: complex, env: Env | None) -> complex:
        return sum(
            (coef * atom.evaluate(s, env) for coef, atom in self.terms),
            start=complex(0.0),
        )

    def parameter_names(self) -> set[str]:
        return {atom.name for _, atom in self.terms if atom.kind != "const"}

    def render(self, env: Env | None = None) -> str:
        if not self.terms:
            return "0"
        pieces: list[str] = []
        for index, (coef, atom) in enumerate(self.terms):
            body = atom.render(env)
            if coef == 1.0:
                token = body
            elif coef == -1.0:
                token = "-" + body
            else:
                token = f"{coef:g}*{body}"
            if index == 0:
                pieces.append(token)
            elif token.startswith("-"):
                pieces.append(token)
            else:
                pieces.append("+" + token)
        return "".join(pieces)


@dataclass(frozen=True)
class Reciprocal:
    """Reciprocal of a linear combination: the DPI weights ``1/(...)``."""

    inner: LinComb

    def evaluate(self, s: complex, env: Env | None) -> complex:
        denominator = self.inner.evaluate(s, env)
        if denominator == 0:
            raise ZeroDivisionError(f"DPI denominator vanished: {self.inner.render(env)}")
        return 1.0 / denominator

    def parameter_names(self) -> set[str]:
        return self.inner.parameter_names()

    def render(self, env: Env | None = None) -> str:
        return f"1/({self.inner.render(env)})"


#: An edge weight is either a linear combination or its reciprocal.
Weight = LinComb | Reciprocal


def one() -> LinComb:
    """The unit edge weight, rendered as ``1``."""
    return LinComb.of((1.0, Atom("1", "const", 1.0)))


def conductance(name: str) -> LinComb:
    """A single conductance atom, e.g. ``gdsM1`` or ``G``."""
    return LinComb.of((1.0, Atom(name, "g")))


def capacitance(name: str) -> LinComb:
    """A single capacitive admittance atom, rendered ``s<name>``."""
    return LinComb.of((1.0, Atom(name, "c")))


def transconductance(name: str, sign: float = 1.0) -> LinComb:
    """A signed transconductance atom, e.g. ``-gmM1``."""
    return LinComb.of((sign, Atom(name, "g")))
