"""Mason's gain formula on DP-SFG graphs.

Evaluates the transfer function of a signal flow graph numerically:

    H = sum_k  P_k * Delta_k / Delta

where ``P_k`` are the forward-path gains, ``Delta`` is the graph
determinant built from all loops and their non-touching combinations, and
``Delta_k`` is the determinant of the subgraph not touching path ``k``.

The loop structure (which loops exist, which subsets are pairwise
non-touching) is computed once per graph; only the numeric gains are
re-evaluated per frequency.  This doubles as an independent check of the
MNA AC analysis: on a linear(ized) circuit both must produce the same
transfer function.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .builder import DPSFG
from .paths import enumerate_paths

__all__ = ["MasonEvaluator", "transfer_function"]

Env = Mapping[str, float]


def _edge_gain(sfg: DPSFG, tail: str, head: str, s: complex, env: Env) -> complex:
    return sfg.weight(tail, head).evaluate(s, env)


def _path_gain(sfg: DPSFG, path: Sequence[str], s: complex, env: Env) -> complex:
    gain = complex(1.0)
    for tail, head in zip(path, path[1:], strict=False):
        gain *= _edge_gain(sfg, tail, head, s, env)
    return gain


def _loop_gain(sfg: DPSFG, loop: Sequence[str], s: complex, env: Env) -> complex:
    gain = complex(1.0)
    closed = list(loop) + [loop[0]]
    for tail, head in zip(closed, closed[1:], strict=False):
        gain *= _edge_gain(sfg, tail, head, s, env)
    return gain


def _independent_subsets(loop_nodes: list[frozenset[str]]) -> list[tuple[int, ...]]:
    """All non-empty subsets of pairwise non-touching loops (by index)."""
    n = len(loop_nodes)
    compatible = [
        [j for j in range(i + 1, n) if not (loop_nodes[i] & loop_nodes[j])]
        for i in range(n)
    ]
    subsets: list[tuple[int, ...]] = []

    def extend(current: tuple[int, ...], candidates: Iterable[int]) -> None:
        for idx in candidates:
            chosen = current + (idx,)
            subsets.append(chosen)
            narrowed = [j for j in compatible[idx] if all(not (loop_nodes[j] & loop_nodes[k]) for k in current)]
            extend(chosen, narrowed)

    extend((), range(n))
    return subsets


class MasonEvaluator:
    """Precomputes path/loop structure of a DP-SFG for repeated evaluation."""

    def __init__(self, sfg: DPSFG):
        self.sfg = sfg
        inventory = enumerate_paths(sfg)
        self.loops = inventory.loop_list
        self._loop_nodes = [frozenset(loop) for loop in self.loops]
        self._subsets = _independent_subsets(self._loop_nodes)
        self.paths_by_source = inventory.paths_by_source

    # ------------------------------------------------------------------
    def determinant(self, s: complex, env: Env, excluded: frozenset[str] = frozenset()) -> complex:
        """Graph determinant, optionally restricted to loops not touching
        ``excluded`` (used for the per-path cofactors ``Delta_k``)."""
        allowed = [
            i for i, nodes in enumerate(self._loop_nodes) if not (nodes & excluded)
        ]
        allowed_set = set(allowed)
        gains = {i: _loop_gain(self.sfg, self.loops[i], s, env) for i in allowed}
        det = complex(1.0)
        for subset in self._subsets:
            if all(i in allowed_set for i in subset):
                product = complex(1.0)
                for i in subset:
                    product *= gains[i]
                det += (-1.0) ** len(subset) * product
        return det

    def gain(self, source: str, s: complex, env: Env | None = None) -> complex:
        """Mason gain from one excitation vertex to the output at ``s``."""
        merged = self.sfg.merged_env(env)
        delta = self.determinant(s, merged)
        total = complex(0.0)
        for path in self.paths_by_source.get(source, []):
            path_nodes = frozenset(path)
            cofactor = self.determinant(s, merged, excluded=path_nodes)
            total += _path_gain(self.sfg, path, s, merged) * cofactor
        return total / delta

    def transfer(self, s: complex, env: Env | None = None) -> complex:
        """Superposed output over all excitations, weighted by amplitude."""
        total = complex(0.0)
        for source, amplitude in self.sfg.excitations.items():
            total += amplitude * self.gain(source, s, env)
        return total


def transfer_function(
    sfg: DPSFG,
    frequencies: np.ndarray,
    env: Env | None = None,
) -> np.ndarray:
    """Evaluate the DP-SFG transfer function over a frequency grid (Hz)."""
    evaluator = MasonEvaluator(sfg)
    response = np.zeros(len(frequencies), dtype=complex)
    for k, freq in enumerate(np.asarray(frequencies, dtype=float)):
        s = 2j * np.pi * freq
        response[k] = evaluator.transfer(s, env)
    return response
