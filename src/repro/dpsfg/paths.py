"""Forward-path and cycle enumeration on DP-SFG graphs.

The paper processes the final DP-SFG with NetworkX: Johnson's algorithm for
all cycles and depth-first search for all forward paths (Sec. III-B).  This
module wraps those calls and canonicalizes the results so serialization is
deterministic:

* forward paths are sorted by (length, vertex tuple),
* cycles are rotated so the lexicographically smallest vertex comes first
  and sorted the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .builder import DPSFG

__all__ = ["PathInventory", "enumerate_paths", "forward_paths", "cycles"]


def forward_paths(sfg: DPSFG, source: str) -> list[list[str]]:
    """All simple paths from one excitation vertex to the output vertex."""
    if source not in sfg.excitations:
        raise KeyError(f"{source!r} is not an excitation vertex of this DP-SFG")
    if source not in sfg.graph or sfg.output not in sfg.graph:
        return []
    found = nx.all_simple_paths(sfg.graph, source, sfg.output)
    return sorted((list(p) for p in found), key=lambda p: (len(p), tuple(p)))


def cycles(sfg: DPSFG) -> list[list[str]]:
    """All simple cycles (loops), canonically rotated and sorted."""
    raw = nx.simple_cycles(sfg.graph)
    canonical = [_rotate_min(list(cycle)) for cycle in raw]
    return sorted(canonical, key=lambda c: (len(c), tuple(c)))


def _rotate_min(cycle: list[str]) -> list[str]:
    """Rotate a cycle so its lexicographically smallest vertex leads."""
    pivot = min(range(len(cycle)), key=lambda i: cycle[i])
    return cycle[pivot:] + cycle[:pivot]


@dataclass
class PathInventory:
    """All forward paths (per excitation) and cycles of one DP-SFG.

    This is the quantity Table I reports per topology (``#forward paths``
    and ``#cycles``).
    """

    sfg: DPSFG
    paths_by_source: dict[str, list[list[str]]]
    loop_list: list[list[str]]

    @property
    def n_forward_paths(self) -> int:
        return sum(len(paths) for paths in self.paths_by_source.values())

    @property
    def n_cycles(self) -> int:
        return len(self.loop_list)

    def all_forward_paths(self) -> list[list[str]]:
        """Forward paths across all excitations, in deterministic order."""
        collected: list[list[str]] = []
        for source in sorted(self.paths_by_source):
            collected.extend(self.paths_by_source[source])
        return collected


def enumerate_paths(sfg: DPSFG) -> PathInventory:
    """Enumerate forward paths from every excitation, plus all cycles."""
    per_source = {source: forward_paths(sfg, source) for source in sorted(sfg.excitations)}
    return PathInventory(sfg=sfg, paths_by_source=per_source, loop_list=cycles(sfg))
