"""Serialization of DP-SFG paths into transformer-friendly sequences.

Reproduces the Fig. 4 format: each forward path or cycle becomes one line of
alternating vertex names and edge weights, e.g. ::

    Iin 1 I1 1/(sC+sCdsM0+sCgsM0+gdsM0) V1 1 Vout
    I1 1/(sC+sCdsM0+sCgsM0+gdsM0) V1 -gmM0 I1

When an environment with device-parameter values is supplied, the weights
are rendered with substituted engineering-notation values (the lower half of
Fig. 4), e.g. ``1/(sC+s1.10fF+s900aF+101uS)``.  Parameters absent from the
environment (like the load capacitance ``C``) stay symbolic, exactly as the
paper keeps ``sC`` symbolic in its example.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .builder import DPSFG
from .expr import LinComb
from .paths import PathInventory, enumerate_paths

__all__ = ["render_weight", "render_path", "render_cycle", "render_sequences"]

Env = Mapping[str, float]


def render_weight(sfg: DPSFG, tail: str, head: str, env: Env | None) -> str:
    """Render one edge weight; multi-term sums are parenthesized."""
    weight = sfg.weight(tail, head)
    text = weight.render(env)
    if isinstance(weight, LinComb) and len(weight.collect().terms) > 1:
        return f"({text})"
    return text


def render_path(sfg: DPSFG, path: Sequence[str], env: Env | None = None) -> str:
    """Render an open path as ``v0 w01 v1 w12 v2 ...``."""
    pieces: list[str] = []
    for index, vertex in enumerate(path):
        pieces.append(vertex)
        if index < len(path) - 1:
            pieces.append(render_weight(sfg, vertex, path[index + 1], env))
    return " ".join(pieces)


def render_cycle(sfg: DPSFG, cycle: Sequence[str], env: Env | None = None) -> str:
    """Render a cycle as a closed walk returning to its first vertex."""
    closed = list(cycle) + [cycle[0]]
    return render_path(sfg, closed, env)


def render_sequences(
    sfg: DPSFG,
    env: Env | None = None,
    inventory: PathInventory | None = None,
    max_paths: int | None = None,
) -> list[str]:
    """All path/cycle lines of a DP-SFG in deterministic order.

    Forward paths come first (sorted per excitation), then cycles -- the
    order Fig. 4 uses.  ``max_paths`` optionally truncates the forward-path
    list (the paper notes that for large graphs "it is possible to devise
    other string representations"; truncation is our budget knob, applied
    to forward paths only so every loop stays visible).
    """
    if inventory is None:
        inventory = enumerate_paths(sfg)
    lines: list[str] = []
    paths = inventory.all_forward_paths()
    if max_paths is not None:
        paths = paths[:max_paths]
    for path in paths:
        lines.append(render_path(sfg, path, env))
    for cycle in inventory.loop_list:
        lines.append(render_cycle(sfg, cycle, env))
    return lines
