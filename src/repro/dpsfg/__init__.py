"""Driving-point signal flow graphs: build, enumerate, evaluate, serialize."""

from .builder import DPSFG, build_dpsfg, device_param_names
from .expr import Atom, LinComb, Reciprocal, Weight, capacitance, conductance, one, transconductance
from .mason import MasonEvaluator, transfer_function
from .paths import PathInventory, cycles, enumerate_paths, forward_paths
from .sequence import render_cycle, render_path, render_sequences, render_weight

__all__ = [
    "DPSFG",
    "build_dpsfg",
    "device_param_names",
    "Atom",
    "LinComb",
    "Reciprocal",
    "Weight",
    "capacitance",
    "conductance",
    "one",
    "transconductance",
    "MasonEvaluator",
    "transfer_function",
    "PathInventory",
    "cycles",
    "enumerate_paths",
    "forward_paths",
    "render_cycle",
    "render_path",
    "render_sequences",
    "render_weight",
]
