"""Entry point for ``python -m repro`` (see :mod:`repro.service.cli`)."""

import sys

from .service.cli import main

if __name__ == "__main__":
    sys.exit(main())
