"""Worker-process side of the sharded engine.

Each worker is a fresh ``spawn`` interpreter: nothing from the parent —
no ``ThreadingHTTPServer`` socket, no ``MicroBatcher`` queue, no lock in
a half-held state — crosses the boundary except the pickled
``engine_factory`` argument (fork-safety test pins this).  The factory
must therefore be a picklable callable (a module-level function or a
``functools.partial`` over one); :func:`engine_from_artifact` is the
production factory, building a :class:`~repro.service.SizingEngine` over
the mmap-shared model artifact and the cross-process result cache.

Protocol over the duplex pipe (parent → worker / worker → parent):

* ``("ready", pid)`` — sent once after the engine is built.
* ``("init-error", message, traceback)`` — the factory raised; the
  worker exits and the parent marks it failed.
* ``("size", job_id, requests)`` → ``("result", job_id, responses,
  engine_stats, cache_stats)`` — one batch; the worker piggybacks its
  cumulative :class:`~repro.service.EngineStats` snapshot on every
  result so the parent can aggregate ``/stats`` without extra round
  trips.
* ``("size", ...)`` → ``("job-error", job_id, message, traceback)`` —
  the batch raised (a bug, not a bad request: per-request problems come
  back as error *responses*).
* ``("ping", token)`` → ``("pong", token, pid)`` — liveness probe.
* ``("stop",)`` — clean exit.
"""

from __future__ import annotations

import os
import signal
import traceback
from collections.abc import Callable
from typing import Any

from ..service.engine import SizingEngine

__all__ = ["engine_from_artifact", "worker_main"]


def engine_from_artifact(
    artifact_dir: str,
    cache_dir: str | None = None,
    cache_size: int = 256,
    shared_cache_maxsize: int = 4096,
) -> SizingEngine:
    """Build a worker engine over the shared artifact (picklable factory).

    The model's weight arrays and LUT grids come back as read-only mmap
    views (:func:`repro.shard.artifact.load_shared_model`), so every
    worker shares one physical copy; with ``cache_dir`` the engine uses
    the cross-process :class:`~repro.service.SharedResultCache` instead
    of a private LRU.
    """
    from ..service.cache import SharedResultCache
    from .artifact import load_shared_model

    model = load_shared_model(artifact_dir)
    cache = (
        SharedResultCache(cache_dir, maxsize=shared_cache_maxsize)
        if cache_dir
        else None
    )
    return SizingEngine(model, cache_size=cache_size, cache=cache)


def _describe(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


def worker_main(conn: Any, engine_factory: Callable[[], SizingEngine]) -> None:
    """Entry point of one shard worker process (``spawn`` target)."""
    # A foreground Ctrl-C hits the whole process group; the parent owns
    # worker lifetime via the pipe ("stop") and kill(), so workers must
    # sit out the SIGINT instead of dying mid-drain with a traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        engine = engine_factory()
    except BaseException as error:  # noqa: BLE001 — report, then exit
        try:
            conn.send(("init-error", _describe(error), traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ready", os.getpid()))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "ping":
            conn.send(("pong", message[1], os.getpid()))
            continue
        if kind != "size":
            conn.send(("job-error", None, f"unknown message kind {kind!r}", ""))
            continue
        job_id, requests = message[1], message[2]
        try:
            responses = engine.size_batch(requests)
            cache_stats = engine.cache.as_dict() if engine.cache is not None else None
            conn.send(
                ("result", job_id, list(responses), engine.stats.as_dict(), cache_stats)
            )
        except BaseException as error:  # noqa: BLE001 — a batch bug must not kill the worker
            conn.send(("job-error", job_id, _describe(error), traceback.format_exc()))
    conn.close()
