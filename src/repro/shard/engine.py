"""Parent-process side: :class:`ShardedEngine` over a spawn worker pool.

``ShardedEngine`` presents the same ``size_batch`` contract as
:class:`~repro.service.SizingEngine` — order-preserving, one response
per request, errors as responses rather than exceptions — but executes
request groups on N worker processes, so netlist parsing, BPE
encode/decode and the serving loop's pure-Python work escape the single
GIL that bounded PR 2–6's speedups.

Design points:

* **Spawn only.**  Workers are created from the ``spawn`` context, never
  ``fork``: a forked worker would inherit the parent's HTTP listener
  socket, batcher queue and half-held locks (the fork-safety rule and a
  runtime test pin this).
* **One IO thread per worker, no locks.**  All pipe traffic for worker
  *i* happens on its dedicated IO thread, which consumes jobs from a
  per-worker inbox queue.  Blocking ``recv`` therefore never happens
  under a lock (the project-wide ``lock-order`` rule rejects that), and
  each worker's connection has exactly one user.  Worker-handle state
  (``state``, ``restarts``, stats snapshots) has a single writer — the
  IO thread — and is read without locks elsewhere.
* **Crash containment.**  A worker that dies mid-batch fails only its
  own slice: the IO thread detects the broken pipe, retires the worker
  (stats roll into a retired accumulator), and respawns it.  The failed
  slice is retried per-request on a healthy worker; a request that
  crashes a worker twice comes back as an error *response*, never an
  exception, and never poisons its batch neighbors.
* **Sharding.**  ``shard_by="spec"`` (default) routes by the quantized
  cache key, giving repeated specs worker affinity; ``"topology"`` keeps
  a topology's lazy per-topology state on one worker;
  ``"round-robin"`` spreads uniformly (used by tests to force
  cross-worker cache hits through the shared store).
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
import zlib
from dataclasses import fields
from functools import partial
from pathlib import Path
from collections.abc import Callable, Sequence
from typing import Any

from ..service.cache import SharedResultCache
from ..service.engine import EngineStats, SizingEngine
from ..service.requests import SizingRequest, SizingResponse
from .worker import engine_from_artifact, worker_main

__all__ = ["ShardedEngine"]

_SHARD_MODES = ("spec", "topology", "round-robin")

#: Sentinel closing a worker's inbox.
_STOP = object()


class _Job:
    """One slice of a batch in flight to a worker."""

    __slots__ = ("requests", "indices", "attempt", "responses", "error", "crashed", "_done")

    def __init__(self, requests: list[SizingRequest], indices: list[int], attempt: int):
        self.requests = requests
        self.indices = indices
        self.attempt = attempt
        self.responses: list[SizingResponse] | None = None
        self.error: str | None = None
        self.crashed = False
        self._done = threading.Event()

    def finish(self) -> None:
        self._done.set()

    def wait(self) -> None:
        self._done.wait()


class _WorkerHandle:
    """Parent-side bookkeeping for one worker (single writer: its IO thread)."""

    __slots__ = (
        "index", "process", "conn", "inbox", "thread", "state", "pid",
        "restarts", "init_error", "latest_stats", "retired_stats", "latest_cache",
    )

    def __init__(self, index: int):
        self.index = index
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn: Any = None
        self.inbox: queue.Queue = queue.Queue()
        self.thread: threading.Thread | None = None
        #: ``starting`` → ``healthy`` ⇄ ``restarting`` → ``failed``.
        self.state = "starting"
        self.pid: int | None = None
        self.restarts = 0
        self.init_error: str | None = None
        self.latest_stats: dict[str, float] = {}
        self.retired_stats: dict[str, float] = {}
        self.latest_cache: dict[str, Any] | None = None

    def stat(self, name: str) -> float:
        return self.retired_stats.get(name, 0) + self.latest_stats.get(name, 0)


def _error_response(request: SizingRequest, message: str) -> SizingResponse:
    return SizingResponse(
        request_id=request.id,
        topology=request.topology,
        method=request.method,
        success=False,
        widths=None,
        metrics=None,
        iterations=0,
        spice_simulations=0,
        wall_time_s=0.0,
        error=message,
    )


class ShardedEngine:
    """Multiprocess drop-in for ``SizingEngine.size_batch``."""

    #: Idle poll interval of each worker IO thread; bounds how fast a
    #: crash of an *idle* worker is noticed and restarted.
    _POLL_S = 0.2

    def __init__(
        self,
        engine_factory: Callable[[], SizingEngine],
        workers: int = 2,
        *,
        shard_by: str = "spec",
        cache: SharedResultCache | None = None,
        max_restarts: int = 3,
        startup_timeout_s: float = 120.0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_by not in _SHARD_MODES:
            raise ValueError(f"shard_by must be one of {_SHARD_MODES}, got {shard_by!r}")
        self._engine_factory = engine_factory
        self.shard_by = shard_by
        #: Parent-side handle on the cross-process result cache, used for
        #: ``/stats`` reads only — the *workers'* engines do the get/put,
        #: so hit/miss accounting is not double-counted here.
        self.cache = cache
        self.max_restarts = max_restarts
        self._ctx = multiprocessing.get_context("spawn")
        self._rr = itertools.count()
        self._closing = False
        self._handles = [_WorkerHandle(index) for index in range(workers)]
        for handle in self._handles:
            thread = threading.Thread(
                target=self._io_loop,
                args=(handle,),
                name=f"repro-shard-io-{handle.index}",
                daemon=True,
            )
            handle.thread = thread
            thread.start()
        self._wait_for_startup(startup_timeout_s)

    @classmethod
    def from_artifact(
        cls,
        artifact_dir: str | Path,
        workers: int = 2,
        *,
        cache_dir: str | Path | None = None,
        cache_size: int = 256,
        shared_cache_maxsize: int = 4096,
        **kwargs: Any,
    ) -> ShardedEngine:
        """Pool over :func:`~repro.shard.worker.engine_from_artifact` workers."""
        factory = partial(
            engine_from_artifact,
            str(artifact_dir),
            cache_dir=None if cache_dir is None else str(cache_dir),
            cache_size=cache_size,
            shared_cache_maxsize=shared_cache_maxsize,
        )
        cache = (
            SharedResultCache(cache_dir, maxsize=shared_cache_maxsize)
            if cache_dir is not None
            else None
        )
        return cls(factory, workers, cache=cache, **kwargs)

    # ------------------------------------------------------------------
    # Worker lifecycle (IO threads only)
    # ------------------------------------------------------------------
    def _start_worker(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._engine_factory),
            name=f"repro-shard-worker-{handle.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            message = parent_conn.recv()
        except (EOFError, OSError):
            message = None
        if message is not None and message[0] == "ready":
            handle.process = process
            handle.conn = parent_conn
            handle.pid = message[1]
            handle.state = "healthy"
            return
        handle.init_error = (
            message[1] if message is not None and message[0] == "init-error"
            else "worker process died during startup"
        )
        handle.state = "failed"
        parent_conn.close()
        process.join(timeout=5.0)

    def _retire(self, handle: _WorkerHandle) -> None:
        """Roll a dead worker's stats into the accumulator and respawn it."""
        for name, value in handle.latest_stats.items():
            handle.retired_stats[name] = handle.retired_stats.get(name, 0) + value
        handle.latest_stats = {}
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None
        if handle.process is not None:
            handle.process.join(timeout=5.0)
            handle.process = None
        handle.pid = None
        handle.restarts += 1
        handle.state = "failed" if handle.restarts > self.max_restarts else "restarting"

    def _stop_worker(self, handle: _WorkerHandle) -> None:
        if handle.conn is not None:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            handle.conn.close()
            handle.conn = None
        if handle.process is not None:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            handle.process = None

    def _io_loop(self, handle: _WorkerHandle) -> None:
        while True:
            if handle.state in ("starting", "restarting") and not self._closing:
                self._start_worker(handle)
            try:
                job = handle.inbox.get(timeout=self._POLL_S)
            except queue.Empty:
                if self._closing:
                    break
                if handle.state == "healthy" and not handle.process.is_alive():
                    # Passive liveness: an idle crash flips /healthz to
                    # degraded here, and the next loop iteration respawns.
                    self._retire(handle)
                continue
            if job is _STOP:
                break
            if handle.state == "failed":
                job.crashed = True
                job.error = handle.init_error
                job.finish()
                continue
            self._run_job(handle, job)
        self._stop_worker(handle)

    def _run_job(self, handle: _WorkerHandle, job: _Job) -> None:
        try:
            handle.conn.send(("size", id(job), job.requests))
            while True:
                message = handle.conn.recv()
                kind = message[0]
                if kind == "result" and message[1] == id(job):
                    job.responses = message[2]
                    handle.latest_stats = message[3]
                    handle.latest_cache = message[4]
                    break
                if kind == "job-error" and message[1] == id(job):
                    job.error = message[2]
                    break
        except (EOFError, OSError):
            job.crashed = True
            self._retire(handle)
        job.finish()

    def _wait_for_startup(self, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            states = {handle.state for handle in self._handles}
            if states <= {"healthy", "failed"}:
                break
            time.sleep(0.02)
        failed = [handle for handle in self._handles if handle.state == "failed"]
        if len(failed) == len(self._handles):
            errors = "; ".join(str(handle.init_error) for handle in failed)
            raise RuntimeError(f"all {len(failed)} shard workers failed to start: {errors}")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, request: SizingRequest) -> int:
        n = len(self._handles)
        if n == 1:
            return 0
        if self.shard_by == "round-robin":
            return next(self._rr) % n
        if self.shard_by == "topology":
            return zlib.crc32(request.topology.encode()) % n
        try:
            text = SharedResultCache.text_key(request)
        except ValueError:
            # Non-finite spec values cannot form a cache key; the worker
            # engine will reject the request — any shard can do that.
            text = request.topology
        return zlib.crc32(text.encode()) % n

    def _fallback_worker(self, exclude: int) -> int:
        for handle in self._handles:
            if handle.index != exclude and handle.state == "healthy":
                return handle.index
        return exclude

    # ------------------------------------------------------------------
    # The SizingEngine contract
    # ------------------------------------------------------------------
    def size_batch(self, requests: Sequence[SizingRequest]) -> list[SizingResponse]:
        """Dispatch a batch across the pool; order is preserved.

        Thread-safe: concurrent callers (the batcher's pipelined
        dispatches) only touch per-worker inbox queues and their own
        jobs' events.
        """
        if self._closing:
            raise RuntimeError("ShardedEngine is closed")
        responses: list[SizingResponse | None] = [None] * len(requests)
        slices: dict[int, tuple[list[SizingRequest], list[int]]] = {}
        for index, request in enumerate(requests):
            worker = self._route(request)
            reqs, idxs = slices.setdefault(worker, ([], []))
            reqs.append(request)
            idxs.append(index)
        pending: list[_Job] = []
        for worker, (reqs, idxs) in slices.items():
            job = _Job(reqs, idxs, attempt=0)
            self._handles[worker].inbox.put(job)
            pending.append(job)
        while pending:
            job = pending.pop()
            job.wait()
            if job.responses is not None:
                for index, response in zip(job.indices, job.responses, strict=True):
                    responses[index] = response
            elif not job.crashed:
                for index, request in zip(job.indices, job.requests, strict=True):
                    responses[index] = _error_response(
                        request, f"worker error: {job.error}"
                    )
            elif len(job.requests) > 1:
                # A crashed multi-request slice is retried per-request so
                # one poison request cannot fail its neighbors.
                for index, request in zip(job.indices, job.requests, strict=True):
                    retry = _Job([request], [index], attempt=job.attempt + 1)
                    target = self._fallback_worker(exclude=self._route(request))
                    self._handles[target].inbox.put(retry)
                    pending.append(retry)
            elif job.attempt == 0:
                retry = _Job(job.requests, job.indices, attempt=1)
                target = self._fallback_worker(exclude=self._route(job.requests[0]))
                self._handles[target].inbox.put(retry)
                pending.append(retry)
            else:
                message = (
                    "worker crashed while processing this request"
                    if job.error is None
                    else f"worker unavailable: {job.error}"
                )
                responses[job.indices[0]] = _error_response(job.requests[0], message)
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection (``/stats`` and ``/healthz``)
    # ------------------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        """Pool-wide :class:`EngineStats`: retired + live worker counters."""
        totals: dict[str, float] = {field.name: 0 for field in fields(EngineStats)}
        for handle in self._handles:
            for name in totals:
                totals[name] += handle.stat(name)
        for name in ("requests", "cache_hits", "coalesced", "batches",
                     "inference_calls", "inference_sequences",
                     "spice_simulations", "solver_requests"):
            totals[name] = int(totals[name])
        return EngineStats(**totals)

    def health(self) -> dict[str, Any]:
        """Pool liveness: ``ok`` only when every worker is healthy."""
        workers = [
            {
                "index": handle.index,
                "pid": handle.pid,
                "state": handle.state,
                "restarts": handle.restarts,
            }
            for handle in self._handles
        ]
        status = (
            "ok"
            if all(worker["state"] == "healthy" for worker in workers)
            else "degraded"
        )
        return {"status": status, "workers": workers}

    def workers_payload(self) -> list[dict[str, Any]]:
        """Per-worker block of the ``/stats`` document."""
        return [
            {
                "index": handle.index,
                "pid": handle.pid,
                "state": handle.state,
                "restarts": handle.restarts,
                "batches": int(handle.stat("batches")),
                "requests": int(handle.stat("requests")),
                "cache_hits": int(handle.stat("cache_hits")),
                "cache": handle.latest_cache,
            }
            for handle in self._handles
        ]

    # ------------------------------------------------------------------
    def close(self, timeout: float | None = 10.0) -> None:
        """Stop IO threads and terminate every worker process."""
        if self._closing:
            return
        self._closing = True
        for handle in self._handles:
            handle.inbox.put(_STOP)
        for handle in self._handles:
            if handle.thread is not None:
                handle.thread.join(timeout)

    def __enter__(self) -> ShardedEngine:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
