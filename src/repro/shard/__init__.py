"""Multiprocess sharded serving: worker pool + zero-copy shared artifacts.

The single-process engine saturates one core — the stacked kernels are
numpy-bound but parsing, BPE and the serving loop are pure Python under
one GIL.  This package shards ``size_batch`` across spawn-based worker
processes while keeping the heavy read-only state shared:

* :mod:`repro.shard.artifact` — the model bundle serialized as one raw
  buffer + manifest, memory-mapped read-only by every worker (N workers
  ≈ 1x model memory, near-instant load);
* :mod:`repro.shard.worker` — the worker process entry point and the
  picklable engine factory;
* :class:`ShardedEngine` — same ``size_batch`` contract as
  :class:`~repro.service.SizingEngine`, plus worker health, automatic
  restart, and pool-wide stats aggregation.

Pairs with :class:`~repro.service.SharedResultCache` so a spec sized by
one worker is a cache hit on every other.  ``python -m repro serve
--workers N --cache-dir ...`` wires it behind the micro-batcher.
"""

from .artifact import SharedArtifact, export_artifact, load_shared_model
from .engine import ShardedEngine
from .worker import engine_from_artifact, worker_main

__all__ = [
    "SharedArtifact",
    "ShardedEngine",
    "engine_from_artifact",
    "export_artifact",
    "load_shared_model",
    "worker_main",
]
