"""Zero-copy shared model artifacts for the sharded engine.

``SizingModel.save`` writes ``.npz`` bundles, which are zip archives:
``np.load(..., mmap_mode="r")`` silently ignores ``mmap_mode`` for zip
members, so every worker process that loads a bundle pays a private copy
of the transformer weights and gm/Id LUT grids — N workers cost Nx model
memory.  This module serializes the same arrays into a *single* raw
``.npy`` file plus a JSON manifest:

* ``arrays.npy`` — one flat ``uint8`` buffer holding every weight array
  and LUT grid back to back, each at a 64-byte-aligned offset.
* ``manifest.json`` — the bundle metadata (tokenizer merges, vocab,
  sequence config, transformer config, LUT scalars) plus an offset /
  dtype / shape table for every array in the buffer.

Workers open the buffer with ``np.load(mmap_mode="r")`` and rebind model
parameters to read-only views into it (:meth:`Module.adopt_parameters`),
so all workers share one physical copy of the pages and startup does no
bulk deserialization.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.bundle import SizingModel
from ..datagen.serialize import SequenceBuilder, SequenceConfig, SequenceFormat
from ..lut import LUT_OUTPUTS, LookupTable
from ..nlp import RestrictedBPE, Vocabulary
from ..topologies import topology_by_name
from ..transformer import Transformer, TransformerConfig

__all__ = ["ARTIFACT_VERSION", "SharedArtifact", "export_artifact", "load_shared_model"]

ARTIFACT_VERSION = 1

#: Byte alignment of each array inside ``arrays.npy``.  ``np.save`` pads
#: its header to a 64-byte boundary, so aligning the in-buffer offsets
#: keeps every array 64-byte aligned in the file as well.
_ALIGN = 64

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npy"


@dataclass(frozen=True)
class SharedArtifact:  # checks: process-shared
    """Handle to an exported artifact directory.

    Marked ``process-shared``: the handle crosses the spawn boundary in
    worker configs, so it stays plain data — a path and the parsed
    manifest, never the mmap itself (each worker opens its own mapping).
    """

    directory: str
    manifest: dict

    @property
    def arrays_path(self) -> str:
        return str(Path(self.directory) / _ARRAYS)

    @classmethod
    def open(cls, directory: str | Path) -> SharedArtifact:
        path = Path(directory)
        manifest = json.loads((path / _MANIFEST).read_text())
        version = manifest.get("format_version")
        if version != ARTIFACT_VERSION:
            raise ValueError(
                f"artifact {path} has format_version {version!r}; "
                f"this build reads version {ARTIFACT_VERSION}"
            )
        return cls(directory=str(path), manifest=manifest)


def _array_entries(model: SizingModel) -> list[tuple[str, np.ndarray]]:
    entries: list[tuple[str, np.ndarray]] = [
        (f"transformer/{name}", value)
        for name, value in model.transformer.named_parameters()
    ]
    for tech_name in sorted(model.luts):
        lut = model.luts[tech_name]
        entries.append((f"lut/{tech_name}/vgs_grid", lut.vgs_grid))
        entries.append((f"lut/{tech_name}/vds_grid", lut.vds_grid))
        for output in LUT_OUTPUTS:
            entries.append((f"lut/{tech_name}/table_{output}", lut.tables[output]))
    return entries


def export_artifact(model: SizingModel, directory: str | Path) -> SharedArtifact:
    """Write ``model``'s arrays and metadata as a mmap-friendly artifact."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    entries = _array_entries(model)
    arrays_meta: dict[str, dict] = {}
    cursor = 0
    blocks: list[tuple[int, np.ndarray]] = []
    for name, value in entries:
        contiguous = np.ascontiguousarray(value)
        cursor = -(-cursor // _ALIGN) * _ALIGN
        arrays_meta[name] = {
            "offset": cursor,
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
        }
        blocks.append((cursor, contiguous))
        cursor += contiguous.nbytes
    buffer = np.zeros(cursor, dtype=np.uint8)
    for offset, contiguous in blocks:
        flat = contiguous.reshape(-1).view(np.uint8)
        buffer[offset : offset + contiguous.nbytes] = flat
    np.save(path / _ARRAYS, buffer)

    manifest = {
        "format_version": ARTIFACT_VERSION,
        "merges": [list(pair) for pair in model.bpe.merges],
        "num_merges": model.bpe.num_merges,
        "vocab": model.vocab.id_to_token,
        "sequence_config": {
            "decoder_format": model.sequence_config.decoder_format.value,
            "encoder_max_paths": model.sequence_config.encoder_max_paths,
            "specs_per_path": model.sequence_config.specs_per_path,
            "include_paths_in_encoder": model.sequence_config.include_paths_in_encoder,
        },
        "topologies": sorted(model.builders),
        "transformer_config": asdict(model.transformer.config),
        "luts": {
            tech_name: {
                "length": lut.length,
                "reference_width": lut.reference_width,
            }
            for tech_name, lut in sorted(model.luts.items())
        },
        "arrays": arrays_meta,
    }
    (path / _MANIFEST).write_text(json.dumps(manifest, allow_nan=False))
    return SharedArtifact(directory=str(path), manifest=manifest)


def _views(artifact: SharedArtifact) -> dict[str, np.ndarray]:
    """Read-only views into one shared mapping of ``arrays.npy``."""
    mm = np.load(artifact.arrays_path, mmap_mode="r")
    views: dict[str, np.ndarray] = {}
    for name, meta in artifact.manifest["arrays"].items():
        dtype = np.dtype(meta["dtype"])
        shape = tuple(meta["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        offset = meta["offset"]
        views[name] = mm[offset : offset + nbytes].view(dtype).reshape(shape)
    return views


def load_shared_model(directory: str | Path) -> SizingModel:
    """Reconstruct a :class:`SizingModel` whose arrays are mmap views.

    The transformer's parameters and every LUT grid/table alias the
    page cache mapping of ``arrays.npy`` (check ``array.base`` for
    ``np.memmap``), so concurrently loaded copies in other processes
    share physical memory.  Only small derived state — spline
    coefficients, tokenizer dicts — is private per process.
    """
    artifact = SharedArtifact.open(directory)
    manifest = artifact.manifest
    views = _views(artifact)

    config = TransformerConfig(**manifest["transformer_config"])
    transformer = Transformer(config)
    transformer.adopt_parameters(
        {
            name[len("transformer/") :]: view
            for name, view in views.items()
            if name.startswith("transformer/")
        }
    )

    luts = {
        tech_name: LookupTable.from_arrays(
            tech_name,
            length=meta["length"],
            reference_width=meta["reference_width"],
            vgs_grid=views[f"lut/{tech_name}/vgs_grid"],
            vds_grid=views[f"lut/{tech_name}/vds_grid"],
            tables={
                output: views[f"lut/{tech_name}/table_{output}"]
                for output in LUT_OUTPUTS
            },
        )
        for tech_name, meta in manifest["luts"].items()
    }

    bpe = RestrictedBPE.from_merges(manifest["merges"], num_merges=manifest["num_merges"])
    vocab = Vocabulary()
    for token in manifest["vocab"]:
        vocab.add(token)
    config_meta = manifest["sequence_config"]
    sequence_config = SequenceConfig(
        decoder_format=SequenceFormat(config_meta["decoder_format"]),
        encoder_max_paths=config_meta["encoder_max_paths"],
        specs_per_path=config_meta["specs_per_path"],
        include_paths_in_encoder=config_meta["include_paths_in_encoder"],
    )
    builders = {
        name: SequenceBuilder(topology_by_name(name), sequence_config)
        for name in manifest["topologies"]
    }
    return SizingModel(
        transformer=transformer,
        bpe=bpe,
        vocab=vocab,
        sequence_config=sequence_config,
        builders=builders,
        luts=luts,
    )
