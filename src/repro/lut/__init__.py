"""Precomputed lookup tables and gm/Id width estimation (Stage III)."""

from .table import LUT_OUTPUTS, LookupTable, build_lut
from .width_estimator import DeviceParams, WidthEstimate, estimate_width

__all__ = [
    "LUT_OUTPUTS",
    "LookupTable",
    "build_lut",
    "DeviceParams",
    "WidthEstimate",
    "estimate_width",
]
