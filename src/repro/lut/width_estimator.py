"""Width estimation from predicted device parameters (Algorithm 1).

Stage III of the paper's flow: given the transformer-predicted small-signal
parameters ``gm, gds, Cds, Cgs`` (plus the drain current ``Id``) of one
MOSFET, recover its width from the per-unit-width LUT using the gm/Id
methodology:

1. the ratio ``gm/Id`` is width independent, so it pins down ``Vgs`` at any
   assumed ``Vds`` (line 7 of Algorithm 1);
2. at that ``Vgs``, each predicted parameter divided by the corresponding
   per-unit-width LUT output gives a *candidate width* ``w1..w5`` as a
   function of ``Vds`` (line 10);
3. the correct ``Vds`` is the one where the candidates agree -- the cost
   ``sum_{n<m} |w_n - w_m|`` over ``w1..w4`` is minimized (lines 11-12);
4. iterate because the ``gm/Id -> Vgs`` inversion itself depends weakly on
   ``Vds`` (lines 5-15, step factor ``alpha``).

Two update rules for ``Vds`` are provided: ``"paper"`` reproduces line 14's
small signed step (``alpha = 1e-4``), while the default ``"jump"`` moves
straight to the scanned cost minimizer, which converges in 2-3 iterations
to the same fixed point (covered by a regression test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .table import LookupTable

__all__ = ["DeviceParams", "WidthEstimate", "estimate_width"]


@dataclass(frozen=True)
class DeviceParams:
    """Transformer-predicted parameters of one device (SI units).

    ``id`` is the bias drain current ``I_d^in`` Algorithm 1 takes as input.
    """

    gm: float
    gds: float
    cds: float
    cgs: float
    id: float

    def __post_init__(self) -> None:
        for field_name in ("gm", "gds", "cds", "cgs", "id"):
            value = getattr(self, field_name)
            if value <= 0 or not np.isfinite(value):
                raise ValueError(f"{field_name} must be positive and finite, got {value}")

    @property
    def gm_over_id(self) -> float:
        return self.gm / self.id


@dataclass
class WidthEstimate:
    """Result of Algorithm 1 for one device."""

    width: float
    vgs: float
    vds: float
    candidates: dict[str, float]
    cost: float
    iterations: int
    converged: bool

    def spread(self) -> float:
        """Relative disagreement of the width candidates (0 = perfect)."""
        values = np.array(list(self.candidates.values()))
        mean = float(np.mean(values))
        if mean == 0:
            return float("inf")
        return float((np.max(values) - np.min(values)) / mean)


_CANDIDATE_OUTPUTS = ("gm", "gds", "cds", "cgs", "id")
#: Candidates entering the cost (w1..w4 per line 11; w5 = Id is excluded).
_COST_OUTPUTS = ("gm", "gds", "cds", "cgs")


def _candidate_widths(
    params: DeviceParams, lut: LookupTable, vgs: float, vds_grid: np.ndarray
) -> dict[str, np.ndarray]:
    """Candidate widths ``w_i(Vds)`` at fixed ``Vgs`` (line 10)."""
    predicted = {
        "gm": params.gm,
        "gds": params.gds,
        "cds": params.cds,
        "cgs": params.cgs,
        "id": params.id,
    }
    candidates: dict[str, np.ndarray] = {}
    for output in _CANDIDATE_OUTPUTS:
        per_width = lut.query(output, vgs, vds_grid)
        candidates[output] = predicted[output] / np.maximum(per_width, 1e-30)
    return candidates


def _cost(candidates: dict[str, np.ndarray]) -> np.ndarray:
    """Pairwise disagreement cost over ``w1..w4`` (line 11)."""
    outputs = _COST_OUTPUTS
    total = np.zeros_like(candidates[outputs[0]])
    for i, name_i in enumerate(outputs):
        for name_j in outputs[i + 1 :]:
            total = total + np.abs(candidates[name_i] - candidates[name_j])
    return total


def estimate_width(
    params: DeviceParams,
    lut: LookupTable,
    vdd: float = 1.2,
    alpha: float = 1e-4,
    epsilon: float | None = None,
    max_iterations: int = 50,
    vds_points: int = 241,
    update: str = "jump",
) -> WidthEstimate:
    """Run Algorithm 1: recover the device width from predicted parameters.

    Parameters
    ----------
    params:
        Transformer-predicted ``gm/gds/Cds/Cgs`` plus bias current.
    lut:
        Per-unit-width lookup table for the matching device type.
    vdd:
        Supply voltage; the initial guess is ``Vds = Vdd/2`` (line 3).
    alpha:
        Step factor of the ``"paper"`` update rule (line 14).
    epsilon:
        Convergence threshold on the cost change (line 5); defaults to a
        value scaled to the candidate magnitudes.
    vds_points:
        Resolution of the ``Vds`` cost scan (line 12 minimizes over Vds).
    update:
        ``"jump"`` (default) sets the next ``Vds`` to the scanned cost
        minimizer; ``"paper"`` takes line 14's small signed step.
    """
    if update not in ("jump", "paper"):
        raise ValueError(f"update must be 'jump' or 'paper', got {update!r}")
    vds_lo = float(lut.vds_grid[1])
    vds_hi = float(lut.vds_grid[-1])
    vds_scan = np.linspace(vds_lo, vds_hi, vds_points)

    gm_id = params.gm_over_id
    vds_curr = vdd / 2.0
    cost_prev = float("inf")
    best: tuple[float, float, float, dict[str, float]] | None = None
    converged = False
    iterations = 0

    if epsilon is None:
        # Scale the threshold to the size of the answer: candidate widths
        # are ~w, the cost is a sum of 6 |w_i - w_j| terms.
        rough_width = params.gm / max(float(lut.query("gm", lut.vgs_grid[-1], vdd / 2.0)), 1e-30)
        epsilon = 1e-6 * max(rough_width, 1e-9)

    for iterations in range(1, max_iterations + 1):
        vgs = lut.find_vgs_for_gm_id(gm_id, vds_curr)
        candidates = _candidate_widths(params, lut, vgs, vds_scan)
        cost = _cost(candidates)
        k_min = int(np.argmin(cost))
        cost_curr = float(cost[k_min])
        vds_min = float(vds_scan[k_min])
        chosen = {name: float(candidates[name][k_min]) for name in _CANDIDATE_OUTPUTS}
        if best is None or cost_curr < best[0]:
            best = (cost_curr, vgs, vds_min, chosen)

        delta = cost_prev - cost_curr
        if abs(delta) < epsilon:
            converged = True
            break
        cost_prev = cost_curr
        vds_prev = vds_curr
        if update == "jump":
            if abs(vds_min - vds_curr) < 1e-9:
                converged = True
                break
            vds_curr = vds_min
        else:
            vds_curr = vds_curr + float(np.sign(delta)) * alpha * vds_prev
            vds_curr = float(np.clip(vds_curr, vds_lo, vds_hi))

    assert best is not None
    cost_best, vgs_best, vds_best, candidates_best = best
    return WidthEstimate(
        width=candidates_best["gm"],  # W <- w1 (line 16)
        vgs=vgs_best,
        vds=vds_best,
        candidates=candidates_best,
        cost=cost_best,
        iterations=iterations,
        converged=converged,
    )
