"""Precomputed lookup tables (Fig. 5, Sec. III-D-1).

The LUT stores the vector-valued function of Eq. (3)::

    [Id gm gds Cds Cgs] = f(Vgs, Vds)     (per unit width)

characterized once per device type by a nested DC sweep of a reference-width
transistor (the paper: 65 nm, ``Wref = 700 nm``, 0-1.2 V in 60 mV steps).
Because every output varies linearly with width, storing per-unit-width
values lets any width be recovered by ratioing -- the gm/Id methodology.

As in the paper, the relatively coarse 60 mV grid is augmented with cubic
spline interpolation (``scipy.interpolate.RectBivariateSpline``) so queries
at intermediate bias points stay accurate.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
from scipy.interpolate import RectBivariateSpline
from scipy.optimize import brentq

from ..devices import NMOS_65NM, PMOS_65NM, TechParams
from ..spice.sweep import CharacterizationResult, characterize_device

__all__ = ["LookupTable", "build_lut", "LUT_OUTPUTS"]

#: LUT output names in the Eq. (3) ordering.
LUT_OUTPUTS = ("id", "gm", "gds", "cds", "cgs")

ArrayLike = float | np.ndarray


class LookupTable:  # checks: process-shared
    """Spline-interpolated per-unit-width device tables for one device type.

    Marked ``process-shared``: the gm/Id tables ship to sharding workers
    alongside :class:`~repro.core.bundle.SizingModel`, so the fork-safety
    rule keeps them plain data (grids, tables, splines).
    """

    def __init__(self, characterization: CharacterizationResult):
        self.tech = characterization.tech
        self.length = characterization.length
        self.reference_width = characterization.reference_width
        self.vgs_grid = characterization.vgs_grid
        self.vds_grid = characterization.vds_grid
        self.tables = {name: np.asarray(table) for name, table in characterization.tables.items()}
        degree = 3 if len(self.vgs_grid) > 3 and len(self.vds_grid) > 3 else 1
        self._splines = {
            name: RectBivariateSpline(self.vgs_grid, self.vds_grid, table, kx=degree, ky=degree)
            for name, table in self.tables.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, output: str, vgs: ArrayLike, vds: ArrayLike) -> np.ndarray:
        """Spline-interpolated per-unit-width value of one output."""
        if output not in self._splines:
            raise KeyError(f"unknown LUT output {output!r}; expected one of {LUT_OUTPUTS}")
        vgs_arr = np.asarray(vgs, dtype=float)
        vds_arr = np.asarray(vds, dtype=float)
        result = self._splines[output](vgs_arr, vds_arr, grid=False)
        return result

    def query_all(self, vgs: ArrayLike, vds: ArrayLike) -> dict[str, np.ndarray]:
        """All five outputs at once (per unit width)."""
        return {name: self.query(name, vgs, vds) for name in LUT_OUTPUTS}

    def gm_over_id(self, vgs: ArrayLike, vds: ArrayLike) -> np.ndarray:
        """The width-independent ``gm/Id`` ratio at a bias point (1/V)."""
        gm = self.query("gm", vgs, vds)
        id_ = self.query("id", vgs, vds)
        return gm / np.maximum(id_, 1e-30)

    # ------------------------------------------------------------------
    # gm/Id inversion (Algorithm 1, line 7)
    # ------------------------------------------------------------------
    def gm_id_range(self, vds: float) -> tuple[float, float]:
        """Achievable (min, max) gm/Id at the given ``Vds``.

        ``gm/Id`` decreases monotonically with ``Vgs``: the maximum sits at
        the lowest usable ``Vgs`` (deep weak inversion, ~``1/(n*Ut)``), the
        minimum at the top of the grid (strong inversion).
        """
        vgs_lo = float(self.vgs_grid[1])
        vgs_hi = float(self.vgs_grid[-1])
        return (
            float(self.gm_over_id(vgs_hi, vds)),
            float(self.gm_over_id(vgs_lo, vds)),
        )

    def find_vgs_for_gm_id(self, target: float, vds: float) -> float:
        """Find ``Vgs`` such that ``gm/Id(Vgs, Vds) == target`` (line 7).

        Targets outside the achievable range are clamped to the nearest
        endpoint (the paper's copilot loop then corrects residual error via
        the verification stage).
        """
        if target <= 0:
            raise ValueError(f"gm/Id target must be positive, got {target}")
        vgs_lo = float(self.vgs_grid[1])
        vgs_hi = float(self.vgs_grid[-1])
        low, high = self.gm_id_range(vds)
        if target >= high:
            return vgs_lo
        if target <= low:
            return vgs_hi

        def objective(vgs: float) -> float:
            return float(self.gm_over_id(vgs, vds)) - target

        return float(brentq(objective, vgs_lo, vgs_hi, xtol=1e-7))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Serialize the table (not the splines) to an ``.npz`` file."""
        payload = {
            "tech_name": np.array(self.tech.name),
            "length": np.array(self.length),
            "reference_width": np.array(self.reference_width),
            "vgs_grid": self.vgs_grid,
            "vds_grid": self.vds_grid,
        }
        for name, table in self.tables.items():
            payload[f"table_{name}"] = table
        np.savez(path, **payload)

    @classmethod
    def load(cls, path: str | Path) -> LookupTable:
        """Load a table saved by :meth:`save`."""
        data = np.load(path)
        tech_name = str(data["tech_name"])
        return cls.from_arrays(
            tech_name,
            length=float(data["length"]),
            reference_width=float(data["reference_width"]),
            vgs_grid=data["vgs_grid"],
            vds_grid=data["vds_grid"],
            tables={name: data[f"table_{name}"] for name in LUT_OUTPUTS},
        )

    @classmethod
    def from_arrays(
        cls,
        tech_name: str,
        *,
        length: float,
        reference_width: float,
        vgs_grid: np.ndarray,
        vds_grid: np.ndarray,
        tables: dict[str, np.ndarray],
    ) -> LookupTable:
        """Build a table directly from grid arrays.

        The arrays are adopted as-is (``np.asarray`` in ``__init__`` is a
        no-copy view for ndarray subclasses), so memory-mapped read-only
        views from a shared artifact stay mmap-backed — the basis of the
        sharded engine's N-workers-for-1x-model-memory property.  Only
        the spline coefficients are computed (and owned) privately.
        """
        tech = _TECH_BY_NAME.get(tech_name)
        if tech is None:
            raise ValueError(f"unknown technology {tech_name!r}")
        characterization = CharacterizationResult(
            tech=tech,
            length=float(length),
            reference_width=float(reference_width),
            vgs_grid=vgs_grid,
            vds_grid=vds_grid,
            tables=dict(tables),
        )
        return cls(characterization)


_TECH_BY_NAME = {NMOS_65NM.name: NMOS_65NM, PMOS_65NM.name: PMOS_65NM}


def build_lut(
    tech: TechParams,
    reference_width: float = 700e-9,
    length: float = 180e-9,
    step: float = 0.06,
    vmax: float = 1.2,
    use_testbench: bool = False,
) -> LookupTable:
    """Characterize a device and wrap the result in a :class:`LookupTable`.

    The default grid matches the paper: 0 to 1.2 V in 60 mV steps.  With
    ``use_testbench=True`` every grid point goes through the MNA DC solver
    (the literal Fig. 5 flow); the default evaluates the model directly,
    which yields identical numbers (see the regression test) but is much
    faster for the 441-point grid.
    """
    grid = np.arange(0.0, vmax + 1e-9, step)
    characterization = characterize_device(
        tech,
        reference_width=reference_width,
        length=length,
        vgs_grid=grid,
        vds_grid=grid,
        use_testbench=use_testbench,
    )
    return LookupTable(characterization)
