"""``lock-discipline``: thread-shared classes mutate only under their lock.

Historical bug (PR 6): ``EngineStats`` and ``ResultCache`` predate the
HTTP serving layer and were written for single-threaded callers.  When
``ThreadingHTTPServer`` handler threads arrived, their unlocked counter
increments and LRU mutations became data races (torn ``/stats`` reads,
lost ``hits``), and every mutation had to be retrofitted onto one
internal lock.  This rule keeps that discipline from regressing: in a
registered thread-shared class, any write to ``self`` state — attribute
assignment, augmented assignment, ``del``, subscript stores on a
``self`` attribute, known mutating method calls (``append``, ``update``,
``move_to_end``, ...), or ``setattr(self, ...)`` — must sit lexically
inside a ``with self._lock:`` block.  ``__init__``/``__post_init__`` are
exempt (no concurrent aliases exist yet).

The registry below names the serving-layer classes shared across
threads today; new classes opt in with a marker comment on their
``class`` line::

    class ShardPool:  # checks: thread-shared[_lock]

The analysis is lexical: a helper that acquires the lock for its caller
should carry a one-line ``# checks: ignore[lock-discipline]`` with a
comment saying who holds the lock.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .core import FileContext, FileRule, Finding, ProjectContext, attr_chain

__all__ = ["LockDisciplineRule", "THREAD_SHARED_CLASSES"]

#: Classes shared between the serving layer's threads, and the lock
#: attribute their mutations must hold (see the PR 6 retrofit).
THREAD_SHARED_CLASSES: dict[str, str] = {
    "EngineStats": "_lock",
    "ResultCache": "_lock",
    "ServeStats": "_lock",
    "MicroBatcher": "_lock",
}

#: Constructors run before any other thread can hold a reference.
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: Method names that mutate their receiver in place (containers and
#: common bookkeeping types).
_MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "add", "clear", "discard", "extend",
        "insert", "pop", "popleft", "popitem", "remove", "rotate",
        "setdefault", "update", "move_to_end", "subtract",
    }
)


class LockDisciplineRule(FileRule):
    id = "lock-discipline"
    summary = (
        "thread-shared classes may mutate self state only inside "
        "`with self._lock:` (outside __init__)"
    )

    def check_file(self, ctx: FileContext, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attr = THREAD_SHARED_CLASSES.get(node.name)
            marker = ctx.thread_shared_markers.get(node.lineno)
            if marker is not None:
                lock_attr = marker
            if lock_attr is None:
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in _INIT_METHODS:
                    continue
                yield from self._check_method(ctx, node.name, item, lock_attr)

    # ------------------------------------------------------------------
    def _check_method(
        self,
        ctx: FileContext,
        class_name: str,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attr: str,
    ) -> Iterator[Finding]:
        def finding(node: ast.AST, what: str) -> Finding:
            return Finding(
                rule=self.id,
                path=ctx.display_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{class_name}.{method.name} {what} outside "
                    f"`with self.{lock_attr}:` — {class_name} is thread-shared, "
                    "unlocked mutation races concurrent readers/writers "
                    "(the PR 6 EngineStats/ResultCache retrofit)"
                ),
            )

        def writes_in_target(target: ast.expr) -> Iterator[tuple[ast.AST, str]]:
            """Self-rooted write locations inside one assignment target."""
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    yield from writes_in_target(element)
                return
            if isinstance(target, ast.Starred):
                yield from writes_in_target(target.value)
                return
            chain = attr_chain(target)
            if chain and chain[0] == "self" and len(chain) >= 2:
                yield target, f"writes `{'.'.join(chain)}`"
            elif isinstance(target, ast.Subscript):
                chain = attr_chain(target.value)
                if chain and chain[0] == "self" and len(chain) >= 2:
                    yield target, f"stores into `{'.'.join(chain)}[...]`"

        def is_lock_expr(node: ast.expr) -> bool:
            return attr_chain(node) == ["self", lock_attr]

        def visit(node: ast.AST, locked: bool) -> Iterator[Finding]:
            if isinstance(node, ast.With):
                inner = locked or any(
                    is_lock_expr(item.context_expr) for item in node.items
                )
                for item in node.items:
                    yield from visit(item, locked)
                for stmt in node.body:
                    yield from visit(stmt, inner)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A nested function may escape and run after the lock is
                # released; treat its body as unlocked.
                body = node.body if isinstance(node.body, list) else [node.body]
                for stmt in body:
                    yield from visit(stmt, False)
                return
            if not locked:
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        for site, what in writes_in_target(target):
                            yield finding(site, what)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        for site, what in writes_in_target(target):
                            yield finding(site, what.replace("writes", "deletes", 1))
                elif isinstance(node, ast.Call):
                    chain = attr_chain(node.func)
                    if (
                        chain
                        and chain[0] == "self"
                        and len(chain) >= 3
                        and chain[-1] in _MUTATOR_METHODS
                    ):
                        yield finding(node, f"calls mutator `{'.'.join(chain)}()`")
                    elif (
                        chain in (["setattr"], ["object", "__setattr__"])
                        and node.args
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id == "self"
                    ):
                        yield finding(node, "calls `setattr(self, ...)`")
            for child in ast.iter_child_nodes(node):
                yield from visit(child, locked)

        for stmt in method.body:
            yield from visit(stmt, False)
