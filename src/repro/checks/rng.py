"""``rng-determinism``: all randomness flows through an explicit Generator.

Historical context: every solver in :mod:`repro.solvers` takes an
explicit ``rng: np.random.Generator`` (the engine derives it from a
stable hash of the request id, see ``SizingEngine._solve_with_method``),
which is what makes solver reruns reproducible and the parity/golden
tests meaningful.  A single module-level ``np.random.shuffle`` or an
``import random`` sneaks process-global hidden state past that protocol,
and a time-derived seed (``default_rng(time.time())``) silently breaks
run-to-run determinism.  This rule forbids all three inside the package:

* calls into the legacy ``np.random`` module-level API (``np.random.seed``,
  ``np.random.rand``, ``np.random.shuffle``, ...) — only the explicit
  constructors (``default_rng``, ``Generator``, ``SeedSequence``, bit
  generators) are allowed;
* any import of the stdlib :mod:`random` module;
* seeding from wall-clock time (``time.time``/``time_ns``/monotonic
  clocks or ``datetime.now``) in ``default_rng``/``seed``/``SeedSequence``
  arguments.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .core import FileContext, FileRule, Finding, ProjectContext, attr_chain

__all__ = ["RngDeterminismRule"]

#: Names under ``np.random`` that construct *explicit* RNG state.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng", "Generator", "BitGenerator", "SeedSequence",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    }
)

#: Seeding entry points whose arguments must not be time-derived.
_SEED_SINKS = frozenset({"default_rng", "seed", "SeedSequence"})

#: Wall-clock sources that make a seed nondeterministic across runs.
_TIME_SOURCES = frozenset(
    {
        ("time", "time"), ("time", "time_ns"),
        ("time", "monotonic"), ("time", "monotonic_ns"),
        ("time", "perf_counter"), ("time", "perf_counter_ns"),
        ("datetime", "now"), ("datetime", "utcnow"),
    }
)


def _time_call_inside(node: ast.expr) -> str | None:
    """The dotted name of a wall-clock call inside ``node``, if any."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        chain = attr_chain(sub.func)
        if chain and len(chain) >= 2 and tuple(chain[-2:]) in _TIME_SOURCES:
            return ".".join(chain)
    return None


class RngDeterminismRule(FileRule):
    id = "rng-determinism"
    summary = (
        "randomness must flow through an explicitly passed/seeded "
        "np.random.Generator — no np.random module-level calls, no stdlib "
        "random, no time-derived seeds"
    )

    def check_file(self, ctx: FileContext, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self._finding(
                            ctx, node,
                            "imports the stdlib `random` module — its global "
                            "Mersenne state bypasses the explicit-Generator "
                            "protocol every solver follows; take an "
                            "`np.random.Generator` argument instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self._finding(
                        ctx, node,
                        "imports from the stdlib `random` module — its global "
                        "Mersenne state bypasses the explicit-Generator "
                        "protocol; take an `np.random.Generator` argument "
                        "instead",
                    )
                elif node.module == "numpy.random" and node.level == 0:
                    for alias in node.names:
                        if alias.name not in _ALLOWED_NP_RANDOM:
                            yield self._finding(
                                ctx, node,
                                f"imports legacy `numpy.random.{alias.name}` — "
                                "module-level RNG state is process-global; use "
                                "an explicitly passed Generator",
                            )
            elif isinstance(node, ast.Attribute):
                chain = attr_chain(node)
                if (
                    chain
                    and len(chain) == 3
                    and chain[0] in ("np", "numpy")
                    and chain[1] == "random"
                    and chain[2] not in _ALLOWED_NP_RANDOM
                ):
                    yield self._finding(
                        ctx, node,
                        f"uses legacy `{'.'.join(chain)}` — module-level "
                        "np.random state is process-global and "
                        "seed-order-dependent; draw from an explicitly "
                        "passed `np.random.Generator`",
                    )
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain and chain[-1] in _SEED_SINKS:
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        source = _time_call_inside(arg)
                        if source is not None:
                            yield self._finding(
                                ctx, node,
                                f"seeds `{'.'.join(chain)}` from `{source}()` — "
                                "time-derived seeds make runs irreproducible; "
                                "derive seeds from stable inputs (e.g. a config "
                                "seed or a request-id hash)",
                            )

    def _finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.display_path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
        )
