"""Rule ``fork-safety``: objects destined for a worker pool stay portable.

The ROADMAP's multiprocess sharding tentpole will send the model bundle
and the gm/Id LUTs across process boundaries (pickled, or fork-inherited
and then diverging).  The classic failure is an innocuous-looking
attribute smuggled in three modules away: a ``threading.Lock`` inside a
helper the bundle holds, a bound method cached on ``self``, an open
file, a generator — all either unpicklable or silently wrong after
``fork``.  Cross-process cache bugs are born exactly here.

Classes opt in with a marker on their ``class`` line::

    class SizingModel:  # checks: process-shared

and the rule *transitively* verifies — descending through annotated and
constructor-inferred attribute types via the pass-1 symbol table — that
no reachable attribute holds a lock, thread, socket, open file, queue,
generator, lambda, or bound method.  Parent *serving* state is forbidden
too: an HTTP/TCP server (its listener socket), an sqlite connection, or
any ``multiprocessing`` primitive — the things a shard-pool worker
entrypoint must never inherit from the serving parent.  Project classes
that wrap these (``SizingServer``, ``MicroBatcher``) are caught by the
same transitive descent without being named here.

Severity ``warning``, second check: module-level mutable state mutated
by any function reachable (through the call graph) from
``SizingEngine.size_batch``.  After ``fork`` each worker inherits a
private copy of that state; mutations diverge silently across the pool,
which is how one worker's cache disagrees with another's.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .core import Finding, ProjectContext, Rule
from .project import AttrType, ClassInfo, ProjectGraph

__all__ = ["ForkSafetyRule"]

#: Attribute types that must not cross a process boundary.
FORBIDDEN_TYPES = {
    "threading.Lock": "a threading.Lock",
    "threading.RLock": "a threading.RLock",
    "threading.Condition": "a threading.Condition",
    "threading.Event": "a threading.Event",
    "threading.Semaphore": "a threading.Semaphore",
    "threading.BoundedSemaphore": "a threading.BoundedSemaphore",
    "threading.Barrier": "a threading.Barrier",
    "threading.Thread": "a live thread",
    "threading.local": "thread-local storage",
    "socket.socket": "a socket",
    "queue.Queue": "a queue.Queue (holds internal locks)",
    "queue.LifoQueue": "a queue.LifoQueue (holds internal locks)",
    "queue.PriorityQueue": "a queue.PriorityQueue (holds internal locks)",
    "queue.SimpleQueue": "a queue.SimpleQueue",
    "open": "an open file handle",
    "io.open": "an open file handle",
    "io.FileIO": "an open file handle",
    "tempfile.NamedTemporaryFile": "an open temporary file",
    # Parent serving state: a worker entrypoint must never inherit the
    # HTTP listener socket or the micro-batcher's queue.  The shard pool
    # pins spawn-start at runtime (tests/test_shard.py); this rule pins
    # it statically — nothing marked process-shared may even *hold* one.
    "http.server.HTTPServer": "a listening HTTP server (socket)",
    "http.server.ThreadingHTTPServer": "a listening HTTP server (socket)",
    "socketserver.TCPServer": "a listening TCP server (socket)",
    "socketserver.ThreadingTCPServer": "a listening TCP server (socket)",
    "socketserver.UDPServer": "a bound UDP server (socket)",
    # sqlite connections are documented as non-portable across processes;
    # SharedResultCache opens one per operation instead of caching one.
    "sqlite3.connect": "an sqlite3 connection",
    "sqlite3.Connection": "an sqlite3 connection",
    # multiprocessing primitives wrap OS pipes and locks whose duplication
    # semantics under spawn are exactly the bug class this rule exists for.
    "multiprocessing.Queue": "a multiprocessing.Queue (holds pipes and locks)",
    "multiprocessing.JoinableQueue": "a multiprocessing.JoinableQueue",
    "multiprocessing.SimpleQueue": "a multiprocessing.SimpleQueue",
    "multiprocessing.Pipe": "a multiprocessing pipe connection",
    "multiprocessing.Lock": "a multiprocessing.Lock",
    "multiprocessing.RLock": "a multiprocessing.RLock",
    "multiprocessing.Event": "a multiprocessing.Event",
    "multiprocessing.Process": "a process handle",
    "multiprocessing.connection.Connection": "a multiprocessing pipe connection",
}

_KIND_DESCRIPTIONS = {
    "lambda": "a lambda (unpicklable)",
    "generator": "a generator (unpicklable, state lost on fork)",
    "bound-method": "a bound method (pins the whole instance into the pickle)",
}


class ForkSafetyRule(Rule):
    id = "fork-safety"
    summary = (
        "classes marked `# checks: process-shared` must hold no locks, "
        "threads, sockets, files, generators, or bound callables, even "
        "transitively; state mutated under `size_batch` must not be "
        "module-global"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        for info in graph.classes.values():
            if info.process_shared:
                yield from self._check_class(graph, info, (info.name,), set())
        yield from self._check_module_state(graph)

    # ------------------------------------------------------------------
    def _check_class(
        self,
        graph: ProjectGraph,
        info: ClassInfo,
        path: tuple[str, ...],
        visited: set[str],
    ) -> Iterator[Finding]:
        if info.qualname in visited or len(path) > 8:
            return
        visited = visited | {info.qualname}
        seen_attrs: set[tuple[str, str]] = set()
        for attr_type in info.attr_types:
            key = (attr_type.attr, attr_type.type_name)
            if key in seen_attrs:
                continue
            seen_attrs.add(key)
            chain = " -> ".join([*path, attr_type.attr])
            if attr_type.kind in _KIND_DESCRIPTIONS:
                yield self._finding(
                    info, attr_type, chain, _KIND_DESCRIPTIONS[attr_type.kind]
                )
                continue
            if attr_type.type_name in FORBIDDEN_TYPES:
                yield self._finding(
                    info, attr_type, chain, FORBIDDEN_TYPES[attr_type.type_name]
                )
                continue
            nested = graph.classes.get(attr_type.type_name)
            if nested is not None and nested.qualname not in visited:
                yield from self._check_class(
                    graph, nested, (*path, f"{attr_type.attr}: {nested.name}"), visited
                )

    def _finding(
        self, info: ClassInfo, attr_type: AttrType, chain: str, what: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=info.ctx.display_path,
            line=getattr(attr_type.node, "lineno", info.node.lineno),
            col=getattr(attr_type.node, "col_offset", 0),
            message=(
                f"process-shared object holds {what} at `{chain}`; it cannot "
                "cross a process boundary (pickle fails or the state silently "
                "diverges after fork) — keep shared objects plain data"
            ),
        )

    # ------------------------------------------------------------------
    def _check_module_state(self, graph: ProjectGraph) -> Iterator[Finding]:
        entries = [
            qualname
            for qualname in graph.functions
            if qualname.endswith(".SizingEngine.size_batch")
        ]
        reachable: set[str] = set()
        for entry in entries:
            reachable |= graph.reachable_from(entry)
        emitted: set[tuple[str, int, str]] = set()
        for qualname in sorted(reachable):
            summary = graph.functions.get(qualname)
            if summary is None:
                continue
            for name, node in summary.global_mutations:
                key = (summary.ctx.display_path, getattr(node, "lineno", 1), name)
                if key in emitted:
                    continue
                emitted.add(key)
                yield Finding(
                    rule=self.id,
                    path=summary.ctx.display_path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    severity="warning",
                    message=(
                        f"`{summary.name}` mutates module-level `{name}` and is "
                        "reachable from `SizingEngine.size_batch`; fork-inherited "
                        "module state diverges per worker — move it onto the "
                        "engine or a shared cache"
                    ),
                )
