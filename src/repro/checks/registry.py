"""The default rule set, in reporting order.

Each rule's module docstring cites the historical bug that motivates it;
``python -m repro.checks --list-rules`` prints the one-line summaries.
"""

from __future__ import annotations

from .core import Rule
from .fork_safety import ForkSafetyRule
from .hot_loop import HotLoopRule
from .json_safety import JsonSafetyRule
from .lock_discipline import LockDisciplineRule
from .lock_order import LockOrderRule
from .rng import RngDeterminismRule
from .wire_format import WireFormatRule

__all__ = ["DEFAULT_RULES", "rule_by_id"]

DEFAULT_RULES: tuple[Rule, ...] = (
    LockDisciplineRule(),
    LockOrderRule(),
    ForkSafetyRule(),
    HotLoopRule(),
    WireFormatRule(),
    RngDeterminismRule(),
    JsonSafetyRule(),
)


def rule_by_id(rule_id: str) -> Rule:
    for rule in DEFAULT_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(f"no such rule: {rule_id!r}")
