"""Baseline file support: grandfathered findings that do not fail CI.

A baseline is a committed JSON file enumerating known findings by a
line-number-independent fingerprint ``(rule, path, message)`` — moving
code around does not resurrect a grandfathered finding, but changing
what the finding *says* (or fixing it) does.  CI fails only on findings
absent from the baseline, so new debt cannot ride in on old debt's
coattails.

This repo's policy is an **empty** baseline: every finding the rules
surfaced was fixed before they landed enabled (`checks-baseline.json`
at the repo root records that state).  The mechanism exists for
downstream forks and for emergencies, not as a parking lot.
"""

from __future__ import annotations

import json
from pathlib import Path

from .core import Finding, Report

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]


def load_baseline(path: Path) -> dict[tuple[str, str, str], int]:
    """Fingerprint -> allowed count from a baseline file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != 1:
        raise ValueError(f"unrecognized baseline format in {path}")
    allowed: dict[tuple[str, str, str], int] = {}
    for entry in data.get("findings", []):
        key = (entry["rule"], entry["path"], entry["message"])
        allowed[key] = allowed.get(key, 0) + 1
    return allowed


def write_baseline(path: Path, report: Report) -> int:
    """Write the report's findings as the new baseline; returns count."""
    findings = sorted(report.findings, key=lambda finding: finding.sort_key)
    payload = {
        "version": 1,
        "comment": (
            "Grandfathered repro.checks findings. Policy: keep this empty; "
            "fix findings instead of baselining them. Regenerate with "
            "`python -m repro.checks --write-baseline`."
        ),
        "findings": [
            {"rule": f.rule, "path": f.path, "message": f.message} for f in findings
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, allow_nan=False) + "\n", encoding="utf-8"
    )
    return len(findings)


def apply_baseline(report: Report, allowed: dict[tuple[str, str, str], int]) -> Report:
    """Drop findings matching the baseline; count them as grandfathered.

    Each baseline entry absorbs at most its recorded multiplicity, so a
    *second* instance of a grandfathered finding still fails.
    """
    remaining = dict(allowed)
    kept: list[Finding] = []
    grandfathered = 0
    for finding in report.findings:
        key = finding.fingerprint
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered += 1
        else:
            kept.append(finding)
    return Report(
        findings=kept,
        files_checked=report.files_checked,
        rules=report.rules,
        grandfathered=grandfathered,
    )
