"""Command line front end: ``python -m repro.checks [paths...]``.

Exit status: 0 when every rule passes, 1 on any finding (including
unused suppressions), 2 on usage errors.  ``--format json`` prints the
machine-readable report to stdout; ``--output FILE`` additionally writes
the JSON report to a file regardless of the stdout format (CI uploads it
as an artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from .core import Report, Rule, run_checks
from .registry import DEFAULT_RULES

__all__ = ["main", "build_parser", "run"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description=(
            "Repo-specific AST invariant linter: lock discipline on "
            "thread-shared classes, wire-format/cache-key drift, RNG "
            "determinism, JSON non-finite safety."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to check (default: the repro package "
             "this checker is installed in)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout report format (default text)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule ids and exit",
    )
    return parser


def _default_paths() -> list[Path]:
    """The installed ``repro`` package (works from any checkout layout)."""
    return [Path(__file__).resolve().parents[1]]


def run(
    paths: Sequence[Path],
    fmt: str = "text",
    output: Path | None = None,
    rules: Sequence[Rule] | None = None,
) -> int:
    """Run the checker; returns the process exit status."""
    active_rules = list(DEFAULT_RULES) if rules is None else list(rules)
    resolved = [Path(p) for p in paths] if paths else _default_paths()
    for path in resolved:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    report = run_checks(resolved, active_rules, display_root=Path.cwd())
    if output is not None:
        output.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True, allow_nan=False)
            + "\n",
            encoding="utf-8",
        )
    if fmt == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True, allow_nan=False))
    else:
        _print_text(report)
    return 0 if report.ok else 1


def _print_text(report: Report) -> None:
    for finding in report.findings:
        print(finding.format())
    status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    print(
        f"repro.checks: {status} across {report.files_checked} file(s), "
        f"{len(report.rules)} rule(s)",
        file=sys.stderr,
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.id}: {rule.summary}")
        return 0
    return run(args.paths, fmt=args.format, output=args.output)
