"""Command line front end: ``python -m repro.checks [paths...]``.

Exit status: 0 when no error-severity finding survives the baseline,
1 otherwise (``--strict`` promotes warnings to failures too), 2 on
usage errors.  ``--format json`` prints the machine-readable report to
stdout; ``--output FILE`` additionally writes the JSON report to a file
regardless of the stdout format (CI uploads it as an artifact).

``--changed-only [REF]`` restricts *reporting* to files changed versus
REF (default HEAD) per ``git diff`` plus untracked files — the full
tree is still parsed so cross-module resolution never degrades.
``--baseline FILE`` grandfathers known findings; ``--write-baseline``
regenerates that file.  ``--fix`` deletes unused suppressions in place
(the default is check-only; CI stays read-only).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from collections.abc import Sequence
from pathlib import Path

from .baseline import apply_baseline, load_baseline, write_baseline
from .core import Report, Rule, run_checks
from .fixes import apply_fixes
from .registry import DEFAULT_RULES

__all__ = ["main", "build_parser", "run"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description=(
            "Repo-specific two-pass static analyzer: lock discipline and "
            "lock ordering on thread-shared classes, fork-safety of "
            "process-shared objects, hot-loop vectorization discipline, "
            "wire-format/cache-key drift, RNG determinism, JSON "
            "non-finite safety."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to check (default: the repro package "
             "this checker is installed in)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout report format (default text)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="JSON baseline of grandfathered findings; matching findings "
             "are reported as grandfathered and do not fail the run",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--changed-only", nargs="?", const="HEAD", default=None, metavar="REF",
        help="report findings only for files changed vs REF (git diff + "
             "untracked; default REF: HEAD); the full tree is still "
             "parsed for symbol resolution",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="delete unused `# checks: ignore[...]` suppressions in "
             "place, then re-check (default: check only, never writes)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warning-severity findings too (default: only "
             "error severity fails)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule ids and exit",
    )
    return parser


def _default_paths() -> list[Path]:
    """The installed ``repro`` package (works from any checkout layout)."""
    return [Path(__file__).resolve().parents[1]]


def _changed_paths(ref: str, anchor: Path) -> set[Path] | None:
    """Absolute paths of ``.py`` files changed vs ``ref`` (plus untracked)."""
    probe = anchor if anchor.is_dir() else anchor.parent
    try:
        root = Path(
            subprocess.run(
                ["git", "-C", str(probe), "rev-parse", "--show-toplevel"],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
        )
        diff = subprocess.run(
            ["git", "-C", str(root), "diff", "--name-only", "-z", ref],
            capture_output=True, text=True, check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "-C", str(root), "ls-files", "--others", "--exclude-standard", "-z"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as error:
        detail = getattr(error, "stderr", "") or str(error)
        print(f"error: --changed-only failed: {detail.strip()}", file=sys.stderr)
        return None
    names = [name for name in (diff + untracked).split("\0") if name]
    return {root / name for name in names if name.endswith(".py")}


def run(
    paths: Sequence[Path],
    fmt: str = "text",
    output: Path | None = None,
    rules: Sequence[Rule] | None = None,
    baseline: Path | None = None,
    write_baseline_file: bool = False,
    changed_only: str | None = None,
    fix: bool = False,
    strict: bool = False,
) -> int:
    """Run the checker; returns the process exit status."""
    active_rules = list(DEFAULT_RULES) if rules is None else list(rules)
    resolved = [Path(p) for p in paths] if paths else _default_paths()
    for path in resolved:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    restrict: set[Path] | None = None
    if changed_only is not None:
        restrict = _changed_paths(changed_only, resolved[0])
        if restrict is None:
            return 2

    def check() -> Report:
        return run_checks(
            resolved, active_rules, display_root=Path.cwd(), restrict_paths=restrict
        )

    report = check()

    if write_baseline_file:
        if baseline is None:
            print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        count = write_baseline(baseline, report)
        print(f"repro.checks: wrote {count} finding(s) to {baseline}", file=sys.stderr)
        return 0

    allowed = None
    if baseline is not None:
        if baseline.exists():
            try:
                allowed = load_baseline(baseline)
            except (ValueError, KeyError, json.JSONDecodeError) as error:
                print(f"error: bad baseline {baseline}: {error}", file=sys.stderr)
                return 2
        else:
            print(f"error: no such baseline: {baseline}", file=sys.stderr)
            return 2
        report = apply_baseline(report, allowed)

    if fix:
        fixed = apply_fixes(report, Path.cwd())
        if fixed:
            print(
                f"repro.checks: fixed unused suppressions in {len(fixed)} file(s)",
                file=sys.stderr,
            )
            report = check()
            if allowed is not None:
                report = apply_baseline(report, allowed)

    if output is not None:
        output.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True, allow_nan=False)
            + "\n",
            encoding="utf-8",
        )
    if fmt == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True, allow_nan=False))
    else:
        _print_text(report)
    failing = report.findings if strict else report.errors
    return 0 if not failing else 1


def _print_text(report: Report) -> None:
    for finding in report.findings:
        print(finding.format())
    status = "clean" if report.ok else (
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
    )
    grandfathered = (
        f", {report.grandfathered} grandfathered" if report.grandfathered else ""
    )
    print(
        f"repro.checks: {status} across {report.files_checked} file(s), "
        f"{len(report.rules)} rule(s){grandfathered}",
        file=sys.stderr,
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.id}: {rule.summary}")
        return 0
    return run(
        args.paths,
        fmt=args.format,
        output=args.output,
        baseline=args.baseline,
        write_baseline_file=args.write_baseline,
        changed_only=args.changed_only,
        fix=args.fix,
        strict=args.strict,
    )
