"""``--fix`` support: delete unused suppressions in place.

The unused-suppression audit (PR 7) reports every ``# checks:
ignore[rule]`` that matched no finding, so stale ignores cannot outlive
the code they excused.  This module goes one step further, ruff-style:
given a report, it rewrites the flagged lines — removing just the stale
rule ids from the comma list, or the whole directive comment when every
id on it is stale.  The checker itself stays read-only by default; CI
never writes.
"""

from __future__ import annotations

import re
from pathlib import Path

from .core import UNUSED_SUPPRESSION, Report

__all__ = ["apply_fixes"]

_STALE_ID = re.compile(r"suppression `# checks: ignore\[(?P<id>[^\]]+)\]` matched")
_DIRECTIVE_ON_LINE = re.compile(
    r"(?P<lead>\s*)#\s*checks:\s*ignore\s*\[(?P<ids>[^\]]*)\]"
)


def apply_fixes(report: Report, root: Path) -> list[str]:
    """Rewrite files to drop stale suppressions; returns display paths fixed.

    Only ``unused-suppression`` findings are fixable.  Paths in the
    report are resolved against ``root`` (the display root the checker
    ran with).
    """
    stale: dict[str, dict[int, set[str]]] = {}
    for finding in report.findings:
        if finding.rule != UNUSED_SUPPRESSION:
            continue
        match = _STALE_ID.search(finding.message)
        if match is None:
            continue
        stale.setdefault(finding.path, {}).setdefault(finding.line, set()).add(
            match.group("id")
        )

    fixed: list[str] = []
    for display_path, lines in sorted(stale.items()):
        path = Path(display_path)
        if not path.is_absolute():
            path = root / display_path
        if not path.exists():
            continue
        source = path.read_text(encoding="utf-8")
        source_lines = source.split("\n")
        changed = False
        for line_number, stale_ids in lines.items():
            index = line_number - 1
            if not 0 <= index < len(source_lines):
                continue
            rewritten = _rewrite_line(source_lines[index], stale_ids)
            if rewritten != source_lines[index]:
                source_lines[index] = rewritten
                changed = True
        if changed:
            # newline="" keeps any \r\n endings (already embedded) verbatim.
            path.write_text("\n".join(source_lines), encoding="utf-8", newline="")
            fixed.append(display_path)
    return fixed


def _rewrite_line(line: str, stale_ids: set[str]) -> str:
    match = _DIRECTIVE_ON_LINE.search(line)
    if match is None:
        return line
    ids = [part.strip() for part in match.group("ids").split(",") if part.strip()]
    kept = [rule_id for rule_id in ids if rule_id not in stale_ids]
    if kept:
        replacement = f"{match.group('lead')}# checks: ignore[{', '.join(kept)}]"
        return line[: match.start()] + replacement + line[match.end() :]
    return line[: match.start()].rstrip() + line[match.end() :]
