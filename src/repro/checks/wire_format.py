"""``wire-format-drift``: request fields must reach the wire and the cache key.

Historical bugs (PRs 4-5): every extension of the request schema —
``corners`` in PR 4, then ``analyses`` and the transient targets in
PR 5 — had to *remember* to thread the new field through three places by
hand: ``SizingRequest.to_json``, ``SizingRequest.from_json``, and
``ResultCache.key``.  Forgetting the serializers breaks the wire format
visibly; forgetting the cache key is the dangerous one — two requests
differing only in the new field silently collide in the LRU and one of
them is answered with the other's verdict.  PR 4 shipped exactly that
hazard window for ``corners`` until the cache-collision tests caught it.

This rule makes the invariant structural: every dataclass field of
``SizingRequest`` and of the embedded ``DesignSpec`` must be referenced

* in ``to_json`` **and** ``from_json`` (directly, via a string-collection
  constant such as ``TRAN_METRIC_NAMES``, or through a helper method on
  the wire classes such as ``DesignSpec.tran_targets``), and
* in ``ResultCache.key`` — unless listed in :data:`CACHE_KEY_EXEMPT`
  (request *identity*, re-addressed on cache hits) or
  :data:`TRANSPORT_ONLY` (keys that, like ``deadline_ms``, describe the
  transport and must never influence sizing results).

A new field that skips any of the three is a CI failure at the field's
definition line, not a latent serving bug.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .core import FileContext, Finding, ProjectContext, Rule

__all__ = [
    "WireFormatRule",
    "TRANSPORT_ONLY",
    "CACHE_KEY_EXEMPT",
]

#: The class whose dataclass fields define the request wire format.
REQUEST_CLASS = "SizingRequest"
#: The spec class flattened into the request wire format.
SPEC_CLASS = "DesignSpec"
#: The cache class and the classmethod computing the result-cache key.
CACHE_CLASS, CACHE_KEY_METHOD = "ResultCache", "key"
SERIALIZER_METHODS = ("to_json", "from_json")

#: Wire keys that carry *transport* concerns (how a request travels),
#: not sizing inputs: they are stripped before the engine and must never
#: appear in the cache key.  ``deadline_ms`` is the canonical example —
#: see ``repro.serve.protocol``.
TRANSPORT_ONLY = frozenset({"deadline_ms"})

#: Request fields that are per-request *identity*, not content: cache
#: hits re-address the stored response (``with_request_id``), so keying
#: on these would defeat coalescing without changing any verdict.
CACHE_KEY_EXEMPT = frozenset({"id"})


def dataclass_fields(class_def: ast.ClassDef) -> list[tuple[str, int, int]]:
    """(name, line, col) of each annotated field in declaration order.

    ``ClassVar`` annotations and private (``_``-prefixed) names are not
    wire fields.
    """
    fields = []
    for node in class_def.body:
        if not isinstance(node, ast.AnnAssign) or not isinstance(node.target, ast.Name):
            continue
        if "ClassVar" in ast.dump(node.annotation):
            continue
        name = node.target.id
        if name.startswith("_"):
            continue
        fields.append((name, node.lineno, node.col_offset))
    return fields


class WireFormatRule(Rule):
    id = "wire-format-drift"
    summary = (
        "every SizingRequest/DesignSpec field must be referenced in "
        "to_json, from_json and ResultCache.key (or be explicitly "
        "transport-only/identity)"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        request = _first_class(project, REQUEST_CLASS)
        if request is None:
            # Nothing to check in trees that don't define the wire format
            # (e.g. rule fixtures for other rules).
            return
        request_ctx, request_def = request
        spec = _first_class(project, SPEC_CLASS)
        cache_key = _method(project, CACHE_CLASS, CACHE_KEY_METHOD)

        method_index = _method_index(project, (request_def,) + (
            (spec[1],) if spec is not None else ()
        ))

        serializer_refs: dict[str, set[str]] = {}
        for name in SERIALIZER_METHODS:
            method = _class_method(request_def, name)
            if method is None:
                yield Finding(
                    rule=self.id,
                    path=request_ctx.display_path,
                    line=request_def.lineno,
                    col=request_def.col_offset,
                    message=(
                        f"{REQUEST_CLASS} defines no `{name}` — the wire "
                        "format contract requires explicit serializers"
                    ),
                )
                serializer_refs[name] = set()
                continue
            refs = _references(method, project, method_index, set())
            if spec is not None:
                spec_method = _class_method(spec[1], name)
                if spec_method is not None:
                    refs |= _references(spec_method, project, method_index, set())
            serializer_refs[name] = refs

        key_refs: set[str] | None = None
        if cache_key is not None:
            key_refs = _references(cache_key[1], project, method_index, set())

        checked: list[tuple[FileContext, str, int, int]] = [
            (request_ctx, name, line, col)
            for name, line, col in dataclass_fields(request_def)
        ]
        if spec is not None:
            checked.extend(
                (spec[0], name, line, col)
                for name, line, col in dataclass_fields(spec[1])
            )

        for ctx, field_name, line, col in checked:
            if field_name in TRANSPORT_ONLY:
                continue
            for serializer in SERIALIZER_METHODS:
                if field_name not in serializer_refs[serializer]:
                    yield Finding(
                        rule=self.id,
                        path=ctx.display_path,
                        line=line,
                        col=col,
                        message=(
                            f"field `{field_name}` is not referenced in "
                            f"{REQUEST_CLASS}.{serializer} — it will silently "
                            "drop off the wire format (the PR 4/5 drift shape); "
                            "serialize it, or list it in TRANSPORT_ONLY with a "
                            "justification"
                        ),
                    )
            if (
                key_refs is not None
                and field_name not in CACHE_KEY_EXEMPT
                and field_name not in key_refs
            ):
                yield Finding(
                    rule=self.id,
                    path=ctx.display_path,
                    line=line,
                    col=col,
                    message=(
                        f"field `{field_name}` is not referenced in "
                        f"{CACHE_CLASS}.{CACHE_KEY_METHOD} — requests differing "
                        "only in this field would collide in the result cache "
                        "and transfer each other's verdicts (the PR 4 corners "
                        "hazard); add it to the key, or to CACHE_KEY_EXEMPT if "
                        "it is pure request identity"
                    ),
                )


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _first_class(
    project: ProjectContext, name: str
) -> tuple[FileContext, ast.ClassDef] | None:
    found = project.classes(name)
    return found[0] if found else None


def _class_method(class_def: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for node in class_def.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _method(
    project: ProjectContext, class_name: str, method_name: str
) -> tuple[FileContext, ast.FunctionDef] | None:
    for ctx, class_def in project.classes(class_name):
        method = _class_method(class_def, method_name)
        if method is not None:
            return ctx, method
    return None


def _method_index(
    project: ProjectContext, class_defs: tuple[ast.ClassDef, ...]
) -> dict[str, ast.FunctionDef]:
    """Methods of the wire classes by simple name, for call expansion."""
    index: dict[str, ast.FunctionDef] = {}
    for class_def in class_defs:
        for node in class_def.body:
            if isinstance(node, ast.FunctionDef):
                index.setdefault(node.name, node)
    return index


def _references(
    func: ast.FunctionDef,
    project: ProjectContext,
    method_index: dict[str, ast.FunctionDef],
    visited: set[str],
) -> set[str]:
    """Every name a serializer 'touches': attributes, string literals,
    keyword-argument names, string-collection constants it iterates, and
    (recursively) helper methods of the wire classes it calls."""
    if func.name in visited:
        return set()
    visited.add(func.name)
    refs: set[str] = set()
    collections = project.string_collections
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            refs.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            refs.add(node.value)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            refs.add(node.arg)
        elif isinstance(node, ast.Name) and node.id in collections:
            refs |= collections[node.id]
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            callee = method_index.get(node.func.attr)
            if callee is not None:
                refs |= _references(callee, project, method_index, visited)
    return refs
