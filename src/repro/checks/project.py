"""Pass 1 of the project-wide analyzer: symbol table and call graph.

PR 7's rules were single-file pattern matchers.  The ROADMAP tentpoles
they guard — multiprocess sharding with zero-copy shared artifacts, and
sparse MNA inside the batched Newton hot paths — fail *across* module
boundaries: a lock acquired two calls away, an unpicklable attribute
smuggled in through a helper's constructor, a per-item solve hidden in
a callee.  This module builds what those rules need to see:

* a module table (dotted names derived from package structure),
* per-module import resolution (``import numpy as np``, from-imports,
  relative imports, ``__init__`` re-export chasing),
* class ownership (methods, lock attributes, inferred attribute types),
* a :class:`FunctionSummary` per function/method recording the facts
  pass 2 consumes — locks acquired, resolved calls, blocking operations,
  ndarray allocations, ``np.linalg.solve`` calls, module-global
  mutations — plus *transitive* closures of the lock/blocking/solve
  facts over the call graph, each carrying a representative call chain
  so findings can explain the path.

Everything here is best-effort static resolution: an unresolvable call
contributes nothing (rules err toward silence, never toward noise).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from .core import FileContext, attr_chain

__all__ = [
    "CallSite",
    "FunctionSummary",
    "ClassInfo",
    "ModuleInfo",
    "ProjectGraph",
    "AttrType",
    "BLOCKING_EXTERNALS",
    "BLOCKING_METHODS",
    "NDARRAY_ALLOCATORS",
    "SOLVE_FUNCTIONS",
]

#: Fully-qualified external callables that block the calling thread.
BLOCKING_EXTERNALS = {
    "time.sleep": "time.sleep",
    "socket.socket": "socket constructor",
    "socket.create_connection": "socket.create_connection",
    "subprocess.run": "subprocess.run",
    "subprocess.check_output": "subprocess.check_output",
    "urllib.request.urlopen": "urllib.request.urlopen",
}

#: Method names that block regardless of receiver type (socket/file I/O
#: plus the engine's own batch entry point, per the lock-order rule).
BLOCKING_METHODS = {
    "recv",
    "recv_into",
    "sendall",
    "accept",
    "makefile",
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
    "size_batch",
}

#: numpy constructors that allocate a fresh work array.  Gather ops
#: (``np.stack``, fancy indexing) are deliberately absent: chunked
#: stacking is the *point* of the batched kernels, while fresh
#: zeros/empty work buffers inside an iteration loop are preallocatable.
NDARRAY_ALLOCATORS = {
    "zeros",
    "empty",
    "ones",
    "full",
    "zeros_like",
    "empty_like",
    "ones_like",
    "full_like",
    "eye",
    "identity",
    "tile",
}

#: Fully-qualified dense linear-solve entry points.
SOLVE_FUNCTIONS = {
    "numpy.linalg.solve",
    "numpy.linalg.lstsq",
    "scipy.linalg.solve",
    "scipy.linalg.lu_solve",
}

_LOCK_CONSTRUCTORS = {
    "threading.Lock": False,
    "threading.RLock": True,
    "threading.Condition": False,
    "threading.Semaphore": False,
    "threading.BoundedSemaphore": False,
}

_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "discard",
    "remove",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
}

_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "collections.OrderedDict",
    "collections.defaultdict",
    "collections.Counter",
    "collections.deque",
}


@dataclass
class CallSite:
    """One call expression inside a function body."""

    chain: tuple[str, ...]
    node: ast.Call
    #: qualified name of the resolved project function/method, if any
    target: Optional[str] = None


@dataclass
class AttrType:
    """One inferred type for an instance attribute."""

    attr: str
    #: "class" | "lambda" | "generator" | "bound-method" | "annotation"
    kind: str
    #: resolved qualname (project class) or dotted external name
    type_name: str
    node: ast.AST


@dataclass
class FunctionSummary:
    """Lexical + transitive facts about one function or method."""

    qualname: str
    module: str
    class_name: Optional[str]
    name: str
    node: ast.AST
    ctx: FileContext
    hot_path: bool = False
    calls: list[CallSite] = field(default_factory=list)
    calls_by_node: dict[int, CallSite] = field(default_factory=dict)
    #: lock ids acquired directly via ``with`` in this body
    acquires: list[str] = field(default_factory=list)
    #: (description, node) for directly blocking operations
    blocking: list[tuple[str, ast.AST]] = field(default_factory=list)
    #: directly calls a dense linear solve
    solves: bool = False
    #: (global name, node) mutations of module-level mutable bindings
    global_mutations: list[tuple[str, ast.AST]] = field(default_factory=list)
    # Transitive closures over the call graph; values are representative
    # callee chains ("via" paths), empty tuple for direct facts.
    t_locks: dict[str, tuple[str, ...]] = field(default_factory=dict)
    t_blocking: dict[str, tuple[str, ...]] = field(default_factory=dict)
    t_solves: Optional[tuple[str, ...]] = None


@dataclass
class ClassInfo:
    """One class definition plus everything pass 2 asks about it."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    ctx: FileContext
    process_shared: bool = False
    base_names: list[str] = field(default_factory=list)
    methods: dict[str, FunctionSummary] = field(default_factory=dict)
    #: lock attribute -> reentrant?
    lock_attrs: dict[str, bool] = field(default_factory=dict)
    attr_types: list[AttrType] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One analyzed module."""

    name: str
    ctx: FileContext
    is_package: bool = False
    #: local name -> fully-qualified target
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level lock name -> reentrant?
    module_locks: dict[str, bool] = field(default_factory=dict)
    #: module-level mutable bindings (dict/list/set literals or factories)
    mutable_globals: dict[str, ast.AST] = field(default_factory=dict)


def module_name_for(ctx: FileContext) -> tuple[str, bool]:
    """Dotted module name derived from package structure.

    Walks parent directories while they contain ``__init__.py`` so
    ``.../src/repro/spice/dc.py`` becomes ``repro.spice.dc``.  Files in
    a bare directory (test fixtures) use their stem.  Returns
    ``(name, is_package)``.
    """
    path = ctx.path.resolve()
    is_package = path.name == "__init__.py"
    parts: list[str] = [] if is_package else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:  # bare __init__.py outside any package dir
        parts = [path.parent.name]
    parts.reverse()
    return ".".join(parts), is_package


class ProjectGraph:
    """Symbol table + call graph over every parsed file."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionSummary] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.classes_by_name: dict[str, ClassInfo] = {}
        #: lock id -> reentrant?
        self.lock_reentrant: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: list[FileContext]) -> ProjectGraph:
        graph = cls()
        for ctx in files:
            name, is_package = module_name_for(ctx)
            module = ModuleInfo(name=name, ctx=ctx, is_package=is_package)
            graph.modules.setdefault(name, module)
        for module in list(graph.modules.values()):
            graph._collect_imports(module)
            graph._collect_definitions(module)
        for module in graph.modules.values():
            graph._collect_class_facts(module)
        for module in graph.modules.values():
            for summary in _module_summaries(module):
                graph._summarize(module, summary)
        graph._close_transitive()
        return graph

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        module.imports[alias.asname] = alias.name
                    else:
                        module.imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                base = self._resolve_import_base(module, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}" if base else alias.name

    @staticmethod
    def _resolve_import_base(module: ModuleInfo, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        parts = module.name.split(".")
        # The package a plain module lives in is its name minus the last
        # component; a package (__init__.py) is its own package.
        package_parts = parts if module.is_package else parts[:-1]
        anchor = package_parts[: len(package_parts) - (node.level - 1)]
        if node.module:
            anchor = anchor + node.module.split(".")
        return ".".join(anchor)

    def _collect_definitions(self, module: ModuleInfo) -> None:
        for node in module.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}.{node.name}"
                summary = FunctionSummary(
                    qualname=qualname,
                    module=module.name,
                    class_name=None,
                    name=node.name,
                    node=node,
                    ctx=module.ctx,
                    hot_path=node.lineno in module.ctx.hot_path_markers,
                )
                module.functions[node.name] = summary
                self.functions[qualname] = summary
            elif isinstance(node, ast.ClassDef):
                qualname = f"{module.name}.{node.name}"
                info = ClassInfo(
                    qualname=qualname,
                    module=module.name,
                    name=node.name,
                    node=node,
                    ctx=module.ctx,
                    process_shared=node.lineno in module.ctx.process_shared_markers,
                    base_names=[
                        ".".join(chain)
                        for base in node.bases
                        if (chain := attr_chain(base)) is not None
                    ],
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qual = f"{qualname}.{item.name}"
                        summary = FunctionSummary(
                            qualname=method_qual,
                            module=module.name,
                            class_name=node.name,
                            name=item.name,
                            node=item,
                            ctx=module.ctx,
                            hot_path=item.lineno in module.ctx.hot_path_markers,
                        )
                        info.methods[item.name] = summary
                        self.functions[method_qual] = summary
                module.classes[node.name] = info
                self.classes[qualname] = info
                self.classes_by_name.setdefault(node.name, info)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value_name = self.external_name(module, node.value)
                if value_name in _LOCK_CONSTRUCTORS:
                    module.module_locks[target.id] = _LOCK_CONSTRUCTORS[value_name]
                    self.lock_reentrant[f"{module.name}.{target.id}"] = _LOCK_CONSTRUCTORS[
                        value_name
                    ]
                elif _is_mutable_literal(node.value) or value_name in _MUTABLE_FACTORIES:
                    module.mutable_globals[target.id] = node

    def _collect_class_facts(self, module: ModuleInfo) -> None:
        for info in module.classes.values():
            for item in info.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                    for type_name in self._annotation_types(module, item.annotation):
                        info.attr_types.append(
                            AttrType(item.target.id, "annotation", type_name, item)
                        )
            for method in info.methods.values():
                self._collect_self_assignments(module, info, method)
            for attr, reentrant in info.lock_attrs.items():
                self.lock_reentrant[f"{info.qualname}.{attr}"] = reentrant

    def _collect_self_assignments(
        self, module: ModuleInfo, info: ClassInfo, method: FunctionSummary
    ) -> None:
        for node in _walk_body(method.node):
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                chain = attr_chain(target)
                if chain is None or len(chain) != 2 or chain[0] != "self":
                    continue
                attr = chain[1]
                inferred = self._infer_value_type(module, info, value)
                if inferred is not None:
                    kind, type_name = inferred
                    info.attr_types.append(AttrType(attr, kind, type_name, node))
                    if kind == "class" and type_name in _LOCK_CONSTRUCTORS:
                        info.lock_attrs[attr] = _LOCK_CONSTRUCTORS[type_name]

    def _infer_value_type(
        self, module: ModuleInfo, info: ClassInfo, value: ast.expr
    ) -> Optional[tuple[str, str]]:
        if isinstance(value, ast.Lambda):
            return ("lambda", "lambda")
        if isinstance(value, ast.GeneratorExp):
            return ("generator", "generator")
        if isinstance(value, ast.Call):
            name = self.external_name(module, value.func)
            if name is not None:
                return ("class", name)
            return None
        # Element type of comprehension-built containers:
        # ``self._splines = {k: Spline(...) for ...}``.
        if isinstance(value, ast.DictComp) and isinstance(value.value, ast.Call):
            name = self.external_name(module, value.value.func)
            if name is not None:
                return ("class", name)
        if isinstance(value, (ast.ListComp, ast.SetComp)) and isinstance(value.elt, ast.Call):
            name = self.external_name(module, value.elt.func)
            if name is not None:
                return ("class", name)
        chain = attr_chain(value)
        if chain is not None and len(chain) == 2 and chain[0] == "self":
            if chain[1] in info.methods:
                return ("bound-method", f"{info.qualname}.{chain[1]}")
        return None

    def _annotation_types(self, module: ModuleInfo, annotation: ast.expr) -> list[str]:
        """Every type name an annotation mentions, resolved when possible."""
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return []
        names: list[str] = []
        for node in ast.walk(annotation):
            if isinstance(node, ast.Attribute):
                name = self.external_name(module, node)
                if name is not None:
                    names.append(name)
            elif isinstance(node, ast.Name):
                resolved = self.external_name(module, node)
                names.append(resolved if resolved is not None else node.id)
        # Attribute chains also walk their inner Name; drop bare prefixes
        # of dotted results.
        dotted = {name for name in names if "." in name}
        prefixes = {name.split(".")[0] for name in dotted}
        return [name for name in names if "." in name or name not in prefixes]

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def external_name(self, module: ModuleInfo, node: ast.expr) -> Optional[str]:
        """Dotted name of an expression with imports applied.

        ``np.linalg.solve`` with ``import numpy as np`` resolves to
        ``numpy.linalg.solve``; a project class resolves to its
        qualname.  Returns ``None`` for non-name expressions.
        """
        chain = attr_chain(node)
        if chain is None:
            return None
        head, rest = chain[0], chain[1:]
        if head in module.classes:
            base = module.classes[head].qualname
        elif head in module.functions:
            base = module.functions[head].qualname
        elif head in module.imports:
            base = module.imports[head]
        else:
            base = head
        full = ".".join([base, *rest]) if rest else base
        return self._chase_reexports(full)

    def _chase_reexports(self, qualified: str, depth: int = 0) -> str:
        """Follow ``pkg/__init__`` re-export chains to the real target."""
        if depth > 8:
            return qualified
        head, _, tail = qualified.rpartition(".")
        if not head or qualified in self.functions or qualified in self.classes:
            return qualified
        module = self.modules.get(head)
        if module is not None and tail in module.imports:
            return self._chase_reexports(module.imports[tail], depth + 1)
        # ``pkg.Class.method`` — chase the class component.
        grand, _, mid = head.rpartition(".")
        if grand:
            owner = self.modules.get(grand)
            if owner is not None and mid in owner.imports:
                chased = self._chase_reexports(owner.imports[mid], depth + 1)
                return f"{chased}.{tail}"
        return qualified

    def resolve_call(
        self, module: ModuleInfo, summary: FunctionSummary, chain: tuple[str, ...]
    ) -> Optional[str]:
        """Qualified name of the project function a call chain targets."""
        if chain[0] == "self" and summary.class_name is not None:
            info = module.classes.get(summary.class_name)
            if info is not None and len(chain) == 2:
                resolved = self._resolve_method(info, chain[1])
                if resolved is not None:
                    return resolved
            return None
        name = self.external_name(module, _chain_to_node(chain))
        if name is None:
            return None
        if name in self.functions:
            return name
        if name in self.classes:
            init = self.classes[name].methods.get("__init__")
            return init.qualname if init is not None else None
        return None

    def _resolve_method(self, info: ClassInfo, method: str, depth: int = 0) -> Optional[str]:
        if method in info.methods:
            return info.methods[method].qualname
        if depth > 4:
            return None
        for base_name in info.base_names:
            base = self.classes.get(base_name) or self.classes_by_name.get(
                base_name.split(".")[-1]
            )
            if base is not None:
                resolved = self._resolve_method(base, method, depth + 1)
                if resolved is not None:
                    return resolved
        return None

    def lock_id(
        self, module: ModuleInfo, summary: FunctionSummary, item: ast.expr
    ) -> Optional[str]:
        """Canonical id of the lock a ``with`` item acquires, if known."""
        chain = attr_chain(item)
        if chain is None:
            return None
        if chain[0] == "self" and len(chain) == 2 and summary.class_name is not None:
            info = module.classes.get(summary.class_name)
            if info is not None and chain[1] in info.lock_attrs:
                return f"{info.qualname}.{chain[1]}"
            return None
        if len(chain) == 1 and chain[0] in module.module_locks:
            return f"{module.name}.{chain[0]}"
        return None

    # ------------------------------------------------------------------
    # Function summaries (pass-1 facts)
    # ------------------------------------------------------------------
    def _summarize(self, module: ModuleInfo, summary: FunctionSummary) -> None:
        for node in _walk_body(summary.node):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain is None:
                    continue
                site = CallSite(chain=tuple(chain), node=node)
                site.target = self.resolve_call(module, summary, site.chain)
                summary.calls.append(site)
                summary.calls_by_node[id(node)] = site
                self._record_call_facts(module, summary, site)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    lock = self.lock_id(module, summary, item.context_expr)
                    if lock is not None:
                        summary.acquires.append(lock)
        self._record_global_mutations(module, summary)

    def _record_call_facts(
        self, module: ModuleInfo, summary: FunctionSummary, site: CallSite
    ) -> None:
        name = self.external_name(module, site.node.func)
        if name in SOLVE_FUNCTIONS:
            summary.solves = True
        if name is not None and name in BLOCKING_EXTERNALS:
            summary.blocking.append((BLOCKING_EXTERNALS[name], site.node))
            return
        if len(site.chain) == 1 and site.chain[0] == "open":
            summary.blocking.append(("open() file I/O", site.node))
        elif len(site.chain) >= 2 and site.chain[-1] in BLOCKING_METHODS:
            if site.target is None or site.chain[-1] == "size_batch":
                summary.blocking.append((f".{site.chain[-1]}() call", site.node))

    def _record_global_mutations(self, module: ModuleInfo, summary: FunctionSummary) -> None:
        declared_global: set[str] = set()
        for node in _walk_body(summary.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in _walk_body(summary.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared_global:
                        summary.global_mutations.append((target.id, node))
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        if target.value.id in module.mutable_globals:
                            summary.global_mutations.append((target.value.id, node))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        if target.value.id in module.mutable_globals:
                            summary.global_mutations.append((target.value.id, node))
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] in module.mutable_globals
                    and chain[1] in _MUTATOR_METHODS
                ):
                    summary.global_mutations.append((chain[0], node))

    # ------------------------------------------------------------------
    # Transitive closures
    # ------------------------------------------------------------------
    def _close_transitive(self) -> None:
        for summary in self.functions.values():
            for lock in summary.acquires:
                summary.t_locks.setdefault(lock, ())
            for desc, _node in summary.blocking:
                summary.t_blocking.setdefault(desc, ())
            if summary.solves:
                summary.t_solves = ()
        changed = True
        while changed:
            changed = False
            for summary in self.functions.values():
                for site in summary.calls:
                    if site.target is None or site.target == summary.qualname:
                        continue
                    callee = self.functions.get(site.target)
                    if callee is None:
                        continue
                    for lock, via in callee.t_locks.items():
                        if lock not in summary.t_locks:
                            summary.t_locks[lock] = (callee.qualname, *via)
                            changed = True
                    for desc, via in callee.t_blocking.items():
                        if desc not in summary.t_blocking:
                            summary.t_blocking[desc] = (callee.qualname, *via)
                            changed = True
                    if callee.t_solves is not None and summary.t_solves is None:
                        summary.t_solves = (callee.qualname, *callee.t_solves)
                        changed = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable_from(self, qualname: str) -> set[str]:
        """Transitive closure of resolved calls starting at one function."""
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            summary = self.functions.get(current)
            if summary is None:
                continue
            for site in summary.calls:
                if site.target is not None and site.target not in seen:
                    stack.append(site.target)
        return seen

    def module_for(self, summary: FunctionSummary) -> ModuleInfo:
        return self.modules[summary.module]

    def class_for(self, name: str) -> Optional[ClassInfo]:
        return self.classes.get(name) or self.classes_by_name.get(name.split(".")[-1])


def _module_summaries(module: ModuleInfo):
    yield from module.functions.values()
    for info in module.classes.values():
        yield from info.methods.values()


def _walk_body(root: ast.AST):
    """Walk a function body without descending into nested defs/lambdas.

    Nested functions and lambdas do not execute when the enclosing body
    runs, so their facts must not leak into the enclosing summary.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _chain_to_node(chain: tuple[str, ...]) -> ast.expr:
    node: ast.expr = ast.Name(id=chain[0])
    for part in chain[1:]:
        node = ast.Attribute(value=node, attr=part)
    return node


def _is_mutable_literal(node: ast.expr) -> bool:
    return isinstance(
        node,
        (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
    )
