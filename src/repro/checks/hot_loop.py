"""Rule ``hot-loop``: vectorization discipline in hot-path kernels.

PRs 2–5 bought 3–5x on DC/AC/transient by replacing per-candidate Python
loops with stacked ``np.linalg.solve`` calls over structure-grouped
batches, and the parity tests pin the *values* bit-identical — but
nothing pinned the *shape* of the code.  A per-item solve or a fresh
work-buffer allocation quietly reintroduced inside a Newton or time-step
loop would erase those wins while every test stays green.

Functions opt in with a marker on their ``def`` line::

    def solve_dc_many(  # checks: hot-path

Inside a marked function the rule flags, through the pass-1 call graph:

* a dense solve (``np.linalg.solve`` / ``lstsq``) inside a ``for`` /
  ``while`` whose arguments depend on a loop variable — the per-item
  shape.  A stacked solve of loop-invariant chunk arrays is fine;
* a call to a project function that *transitively* reaches a dense
  solve, passing loop-variable-dependent arguments — the same regression
  hidden one or more calls deep;
* a fresh numpy work-buffer allocation (``np.zeros`` / ``np.empty`` /
  ...) inside a loop that iterates a solve — Newton and time-step inner
  loops must preallocate and reuse.  Gather ops (``np.stack``, fancy
  indexing) are exempt: chunked stacking is how the batch kernels are
  *supposed* to stage work.

``except`` handler bodies are exempt end to end: the singular-matrix
fallback in ``_solve_newton_steps`` deliberately drops to a per-item
solve, and that is the correct shape for a rarely-taken recovery path.

The pluggable linear-solve layer is *sanctioned*: hot-path loops call
:func:`repro.spice.linsolve.solve_stacked` once per structure group or
frequency chunk by design (the stack lives inside the call), so the
transitive-solve finding skips call sites that target it.  Its loops
still count as "solving" for the work-array allocation check — the
engines must keep preallocating around it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from .core import Finding, ProjectContext, Rule
from .project import (
    NDARRAY_ALLOCATORS,
    SOLVE_FUNCTIONS,
    FunctionSummary,
    ModuleInfo,
    ProjectGraph,
)

__all__ = ["SANCTIONED_SOLVERS", "HotLoopRule"]

#: Project functions that *are* the stacked-solve layer: a hot-path loop
#: handing them loop-dependent chunk arrays is the intended shape (one
#: stacked/structure-grouped solve per call), not a per-item regression.
SANCTIONED_SOLVERS = frozenset(
    {
        "repro.spice.linsolve.solve_stacked",
    }
)


@dataclass
class _Loop:
    node: ast.AST
    targets: frozenset[str]
    solving: bool


class HotLoopRule(Rule):
    id = "hot-loop"
    summary = (
        "functions marked `# checks: hot-path` may not re-grow per-item "
        "numpy solves or per-iteration work-array allocations inside "
        "Python loops"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        for summary in graph.functions.values():
            if not summary.hot_path:
                continue
            module = graph.module_for(summary)
            yield from self._check_function(graph, module, summary)

    # ------------------------------------------------------------------
    def _check_function(
        self, graph: ProjectGraph, module: ModuleInfo, summary: FunctionSummary
    ) -> Iterator[Finding]:
        yield from self._scan(graph, module, summary, summary.node, [])

    def _scan(
        self,
        graph: ProjectGraph,
        module: ModuleInfo,
        summary: FunctionSummary,
        node: ast.AST,
        loops: list[_Loop],
    ) -> Iterator[Finding]:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not summary.node
        ):
            return  # nested defs are their own (unmarked) scopes
        if isinstance(node, ast.ExceptHandler):
            # Fallback/recovery paths are allowed to go per-item.
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from self._scan(graph, module, summary, node.iter, loops)
            inner = loops + [
                _Loop(node, _target_names(node.target), self._loop_solves(graph, summary, node))
            ]
            for stmt in node.body + node.orelse:
                yield from self._scan(graph, module, summary, stmt, inner)
            return
        if isinstance(node, ast.While):
            inner = loops + [
                _Loop(node, frozenset(), self._loop_solves(graph, summary, node))
            ]
            yield from self._scan(graph, module, summary, node.test, inner)
            for stmt in node.body + node.orelse:
                yield from self._scan(graph, module, summary, stmt, inner)
            return
        if isinstance(node, ast.Call) and loops:
            yield from self._check_call(graph, module, summary, node, loops)
        for child in ast.iter_child_nodes(node):
            yield from self._scan(graph, module, summary, child, loops)

    # ------------------------------------------------------------------
    def _check_call(
        self,
        graph: ProjectGraph,
        module: ModuleInfo,
        summary: FunctionSummary,
        call: ast.Call,
        loops: list[_Loop],
    ) -> Iterator[Finding]:
        loop_targets: set[str] = set()
        for loop in loops:
            loop_targets.update(loop.targets)
        name = graph.external_name(module, call.func)
        if name in SOLVE_FUNCTIONS and _args_depend_on(call, loop_targets):
            yield self._finding(
                summary,
                call,
                f"per-item `{name.split('.', 1)[1]}` inside a Python loop in "
                f"hot-path `{summary.name}`; batch the systems and make one "
                "stacked solve (the PR 2-5 vectorization these kernels exist for)",
            )
            return
        site = summary.calls_by_node.get(id(call))
        if (
            site is not None
            and site.target is not None
            and site.target != summary.qualname
            and site.target not in SANCTIONED_SOLVERS
            and _args_depend_on(call, loop_targets)
        ):
            callee = graph.functions.get(site.target)
            if callee is not None and callee.t_solves is not None:
                via = " -> ".join(
                    short for short in (_short(site.target), *map(_short, callee.t_solves))
                )
                yield self._finding(
                    summary,
                    call,
                    f"loop in hot-path `{summary.name}` calls `{_short(site.target)}` "
                    f"per item, which reaches a dense solve ({via}); hoist the loop "
                    "into a stacked batch solve",
                )
                return
        if name is not None and loops and any(loop.solving for loop in loops):
            base, _, leaf = name.rpartition(".")
            if base == "numpy" and leaf in NDARRAY_ALLOCATORS:
                yield self._finding(
                    summary,
                    call,
                    f"`np.{leaf}` allocates a fresh work array every iteration of a "
                    f"solve loop in hot-path `{summary.name}`; preallocate the buffer "
                    "outside the loop and reuse it (zero-filled reuse is bit-identical)",
                )

    def _loop_solves(
        self, graph: ProjectGraph, summary: FunctionSummary, loop: ast.AST
    ) -> bool:
        """Does this loop body (transitively) perform a dense solve?"""
        module = graph.module_for(summary)
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            name = graph.external_name(module, node.func)
            if name in SOLVE_FUNCTIONS:
                return True
            site = summary.calls_by_node.get(id(node))
            if site is not None and site.target is not None:
                callee = graph.functions.get(site.target)
                if callee is not None and callee.t_solves is not None:
                    return True
        return False

    def _finding(self, summary: FunctionSummary, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=summary.ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _target_names(target: ast.expr) -> frozenset[str]:
    names = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return frozenset(names)


def _args_depend_on(call: ast.Call, loop_targets: set[str]) -> bool:
    """Does any argument reference a loop variable (directly or as index)?"""
    if not loop_targets:
        return False
    for arg in [*call.args, *[kw.value for kw in call.keywords]]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id in loop_targets:
                return True
    return False


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname
