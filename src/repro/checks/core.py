"""The rule framework of :mod:`repro.checks`.

A *rule* is a small AST analysis with a stable id (``lock-discipline``,
``wire-format-drift``, ...) that yields :class:`Finding` objects.  The
runner parses every target file once, builds a :class:`ProjectContext`
shared by all rules (so cross-file rules such as wire-format drift can
resolve constants defined in other modules), runs the rules, and applies
inline suppressions.

Suppressions are source comments on the flagged line::

    self._entries.clear()  # checks: ignore[lock-discipline]

Several ids may be listed comma-separated.  A suppression that matched
no finding is itself reported (rule id ``unused-suppression``), so stale
ignores cannot silently outlive the code they excused — the same
convention ruff applies to ``# noqa``.

Classes may opt into the lock-discipline rule with a marker comment on
their ``class`` line::

    class ShardPool:  # checks: thread-shared[_lock]

naming the lock attribute every mutation must hold (default ``_lock``).

Two further markers drive the project-wide rules:

    class SizingModel:  # checks: process-shared

opts a class into the fork-safety rule (its attributes must stay free of
locks, threads, sockets, open files, generators, and bound callables so
the object can cross a process boundary), and

    def solve_dc_many(  # checks: hot-path

opts a function into the hot-loop discipline rule (no per-item numpy
solves or fresh work-array allocations inside its Python loops).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "Finding",
    "FileContext",
    "ProjectContext",
    "Rule",
    "FileRule",
    "Report",
    "run_checks",
    "iter_python_files",
    "attr_chain",
    "UNUSED_SUPPRESSION",
]

#: Rule id reported for an ignore directive that matched nothing.
UNUSED_SUPPRESSION = "unused-suppression"

_DIRECTIVE = re.compile(
    r"#\s*checks:\s*(?P<kind>ignore|thread-shared|process-shared|hot-path)"
    r"\s*(?:\[(?P<args>[^\]]*)\])?"
)

#: Valid finding severities, most severe first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: [{self.severity}] {self.message}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class FileContext:
    """One parsed source file plus its inline directives."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    #: line number -> rule ids suppressed on that line
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: line number -> lock attribute named by a ``thread-shared`` marker
    thread_shared_markers: dict[int, str] = field(default_factory=dict)
    #: lines carrying a ``process-shared`` marker (fork-safety opt-in)
    process_shared_markers: set[int] = field(default_factory=set)
    #: lines carrying a ``hot-path`` marker (hot-loop discipline opt-in)
    hot_path_markers: set[int] = field(default_factory=set)

    @classmethod
    def parse(cls, path: Path, display_path: str | None = None) -> FileContext:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            display_path=display_path if display_path is not None else str(path),
            source=source,
            tree=tree,
        )
        ctx._scan_directives()
        return ctx

    def _scan_directives(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _DIRECTIVE.search(token.string)
                if match is None:
                    continue
                line = token.start[0]
                args = (match.group("args") or "").strip()
                kind = match.group("kind")
                if kind == "ignore":
                    ids = {part.strip() for part in args.split(",") if part.strip()}
                    if ids:
                        self.suppressions.setdefault(line, set()).update(ids)
                elif kind == "thread-shared":
                    self.thread_shared_markers[line] = args or "_lock"
                elif kind == "process-shared":
                    self.process_shared_markers.add(line)
                else:  # hot-path
                    self.hot_path_markers.add(line)
        except tokenize.TokenError:  # pragma: no cover - already parsed as AST
            pass


class ProjectContext:
    """Everything the rules can see: all parsed files plus shared indexes."""

    def __init__(self, files: Sequence[FileContext]):
        self.files = list(files)
        self._string_collections: dict[str, frozenset[str]] | None = None
        self._graph: Any = None

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Any:
        """The pass-1 :class:`~repro.checks.project.ProjectGraph`.

        Built lazily on first access and shared by every project-wide
        rule, so the symbol table / call graph is computed once per run.
        """
        if self._graph is None:
            from .project import ProjectGraph

            self._graph = ProjectGraph.build(self.files)
        return self._graph

    # ------------------------------------------------------------------
    def classes(self, name: str) -> list[tuple[FileContext, ast.ClassDef]]:
        """Every class definition with this name across the project."""
        found = []
        for ctx in self.files:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and node.name == name:
                    found.append((ctx, node))
        return found

    # ------------------------------------------------------------------
    @property
    def string_collections(self) -> dict[str, frozenset[str]]:
        """Module-level constants that enumerate strings, by simple name.

        Covers tuples/lists/sets of string literals, dict literals with
        string keys (the keys), aliases (``_TRAN_FIELDS =
        TRAN_METRIC_DIRECTIONS``) and conversions (``NAMES =
        tuple(DIRECTIONS)``), resolved across every analyzed module —
        this is how the wire-format rule sees through indirections like
        ``for name in TRAN_METRIC_NAMES``.
        """
        if self._string_collections is None:
            self._string_collections = self._build_string_collections()
        return self._string_collections

    def _build_string_collections(self) -> dict[str, frozenset[str]]:
        resolved: dict[str, frozenset[str]] = {}
        pending: list[tuple[str, str]] = []  # (name, referenced name)
        for ctx in self.files:
            for node in ctx.tree.body:
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                strings = _literal_strings(node.value)
                if strings is not None:
                    resolved[target.id] = frozenset(strings)
                    continue
                ref = _collection_reference(node.value)
                if ref is not None:
                    pending.append((target.id, ref))
        # Resolve aliases/conversions to fixpoint (chains are short).
        for _ in range(len(pending) + 1):
            progressed = False
            for name, ref in pending:
                if name not in resolved and ref in resolved:
                    resolved[name] = resolved[ref]
                    progressed = True
            if not progressed:
                break
        return resolved


def _literal_strings(node: ast.expr) -> set[str] | None:
    """The strings a literal collection enumerates, or ``None``."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values = set()
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            values.add(element.value)
        return values
    if isinstance(node, ast.Dict):
        keys = set()
        for key in node.keys:
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return None
            keys.add(key.value)
        return keys
    return None


def _collection_reference(node: ast.expr) -> str | None:
    """The name another collection constant is derived from, or ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"tuple", "list", "set", "frozenset", "sorted"}
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Name)
        and not node.keywords
    ):
        return node.args[0].id
    return None


def attr_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class Rule:
    """A project-scoped analysis.  Subclasses set ``id`` and ``summary``."""

    id: str = ""
    summary: str = ""

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


class FileRule(Rule):
    """A rule that inspects one file at a time."""

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.files:
            yield from self.check_file(ctx, project)

    def check_file(self, ctx: FileContext, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


@dataclass
class Report:
    """Outcome of one checker run (post-suppression)."""

    findings: list[Finding]
    files_checked: int
    rules: list[Rule]
    #: findings dropped because they matched the committed baseline
    grandfathered: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def errors(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.severity == "warning"]

    def as_dict(self) -> dict[str, Any]:
        counts: dict[str, int] = {}
        severities: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
            severities[finding.severity] = severities.get(finding.severity, 0) + 1
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "rules": [{"id": rule.id, "summary": rule.summary} for rule in self.rules],
            "findings": [finding.as_dict() for finding in self.findings],
            "counts": dict(sorted(counts.items())),
            "severities": dict(sorted(severities.items())),
            "grandfathered": self.grandfathered,
        }


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to check."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    yield candidate
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")


def run_checks(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    display_root: Path | None = None,
    restrict_paths: set[Path] | None = None,
) -> Report:
    """Parse ``paths``, run every rule, apply suppressions.

    Returns the findings that survived suppression, plus one
    ``unused-suppression`` finding per ignore directive that matched
    nothing.  Files that fail to parse yield a ``syntax-error`` finding
    instead of aborting the run.

    ``restrict_paths`` implements ``--changed-only``: every file is
    still parsed (the symbol table and call graph always cover the full
    tree, so cross-module resolution never degrades), but findings —
    including the unused-suppression audit — are only *reported* for
    files in the restricted set.  Syntax errors are reported regardless;
    a file that does not parse poisons the shared symbol table for
    everyone.
    """
    contexts: list[FileContext] = []
    findings: list[Finding] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        display = str(path)
        if display_root is not None:
            try:
                display = str(path.relative_to(display_root))
            except ValueError:
                pass
        try:
            contexts.append(FileContext.parse(path, display_path=display))
        except SyntaxError as error:
            findings.append(
                Finding(
                    rule="syntax-error",
                    path=display,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    message=f"file does not parse: {error.msg}",
                )
            )

    restrict_display: set[str] | None = None
    if restrict_paths is not None:
        resolved = {path.resolve() for path in restrict_paths}
        restrict_display = {
            ctx.display_path for ctx in contexts if ctx.path.resolve() in resolved
        }

    project = ProjectContext(contexts)
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(project))

    by_path = {ctx.display_path: ctx for ctx in contexts}
    used: set[tuple[str, int, str]] = set()
    for finding in raw:
        ctx = by_path.get(finding.path)
        suppressed = ctx is not None and finding.rule in ctx.suppressions.get(
            finding.line, set()
        )
        if suppressed:
            used.add((finding.path, finding.line, finding.rule))
        elif restrict_display is None or finding.path in restrict_display:
            findings.append(finding)

    for ctx in contexts:
        if restrict_display is not None and ctx.display_path not in restrict_display:
            continue
        for line, rule_ids in sorted(ctx.suppressions.items()):
            for rule_id in sorted(rule_ids):
                if (ctx.display_path, line, rule_id) not in used:
                    findings.append(
                        Finding(
                            rule=UNUSED_SUPPRESSION,
                            path=ctx.display_path,
                            line=line,
                            col=0,
                            message=(
                                f"suppression `# checks: ignore[{rule_id}]` matched "
                                "no finding; remove it so stale ignores cannot hide "
                                "future regressions"
                            ),
                        )
                    )

    findings.sort(key=lambda finding: finding.sort_key)
    return Report(findings=findings, files_checked=files_checked, rules=list(rules))
