"""Rule ``lock-order``: deadlock-shaped acquisition across the project.

The serve and service layers each grew a lock (``ServeStats._lock``,
``EngineStats._lock``, ``ResultCache._lock``, ``SizingEngine._topologies_lock``)
in separate PRs, and the sharding tentpole will add more.  Two threads
acquiring two locks in opposite orders is the classic deadlock, and it
is invisible to per-file analysis the moment one acquisition happens in
a callee: ``A.method`` holds lock 1 and calls a helper that, two modules
away, takes lock 2 while ``B.method`` nests them the other way round.

Using the pass-1 call graph this rule:

* builds the lock-acquisition graph — an edge ``L1 -> L2`` whenever a
  ``with``-block holding ``L1`` acquires ``L2``, lexically or through
  any chain of resolved calls — and flags every edge participating in a
  cycle, with the acquisition path spelled out;
* flags nested reacquisition of a non-reentrant ``threading.Lock``
  (reentrant ``RLock`` self-edges, e.g. ``ResultCache``, are fine);
* flags blocking work reachable while any lock is held — socket/file
  I/O, ``time.sleep``, and ``size_batch`` (a SPICE solve under a stats
  lock would serialize the entire server on one candidate's Newton
  iteration).

Locks are identified by role — ``(owning class, attribute)`` for
``self._lock``-style locks, ``(module, name)`` for module-level locks —
which is the granularity lock *ordering* is defined over.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from .core import Finding, ProjectContext, Rule
from .project import FunctionSummary, ProjectGraph

__all__ = ["LockOrderRule"]


@dataclass
class _Edge:
    """One observed ``outer -> inner`` nested acquisition."""

    outer: str
    inner: str
    summary: FunctionSummary
    node: ast.AST
    via: tuple[str, ...] = ()


class LockOrderRule(Rule):
    id = "lock-order"
    summary = (
        "nested lock acquisitions must form a consistent global order, "
        "and no blocking work may run while a lock is held"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        edges: list[_Edge] = []
        blocking: list[Finding] = []
        for summary in graph.functions.values():
            self._walk(graph, summary, summary.node, [], edges, blocking)
        yield from blocking
        yield from self._cycle_findings(graph, edges)

    # ------------------------------------------------------------------
    def _walk(
        self,
        graph: ProjectGraph,
        summary: FunctionSummary,
        node: ast.AST,
        held: list[str],
        edges: list[_Edge],
        blocking: list[Finding],
    ) -> None:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not summary.node
        ):
            return  # nested defs do not run while the lock is held
        if isinstance(node, (ast.With, ast.AsyncWith)):
            module = graph.module_for(summary)
            acquired: list[str] = []
            for item in node.items:
                lock = graph.lock_id(module, summary, item.context_expr)
                if lock is not None:
                    for outer in held + acquired:
                        edges.append(_Edge(outer, lock, summary, node))
                    acquired.append(lock)
            for stmt in node.body:
                self._walk(graph, summary, stmt, held + acquired, edges, blocking)
            return
        if isinstance(node, ast.Call) and held:
            self._check_call(graph, summary, node, held, edges, blocking)
        for child in ast.iter_child_nodes(node):
            self._walk(graph, summary, child, held, edges, blocking)

    def _check_call(
        self,
        graph: ProjectGraph,
        summary: FunctionSummary,
        call: ast.Call,
        held: list[str],
        edges: list[_Edge],
        blocking: list[Finding],
    ) -> None:
        direct = next(
            (desc for desc, node in summary.blocking if node is call), None
        )
        if direct is not None:
            blocking.append(self._blocking_finding(summary, call, direct, held, ()))
            return
        site = summary.calls_by_node.get(id(call))
        if site is None or site.target is None:
            return
        callee = graph.functions.get(site.target)
        if callee is None:
            return
        for lock, via in callee.t_locks.items():
            for outer in held:
                edges.append(
                    _Edge(outer, lock, summary, call, via=(callee.qualname, *via))
                )
        for desc, via in callee.t_blocking.items():
            blocking.append(
                self._blocking_finding(
                    summary, call, desc, held, (callee.qualname, *via)
                )
            )

    def _blocking_finding(
        self,
        summary: FunctionSummary,
        node: ast.AST,
        desc: str,
        held: list[str],
        via: tuple[str, ...],
    ) -> Finding:
        route = f" (via {' -> '.join(_short(part) for part in via)})" if via else ""
        locks = ", ".join(f"`{_short(lock)}`" for lock in held)
        return Finding(
            rule=self.id,
            path=summary.ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=(
                f"blocking operation {desc} reachable while holding {locks}{route}; "
                "move I/O and solves out of the critical section — every other "
                "thread contending on the lock stalls behind it"
            ),
        )

    # ------------------------------------------------------------------
    def _cycle_findings(
        self, graph: ProjectGraph, edges: list[_Edge]
    ) -> Iterator[Finding]:
        adjacency: dict[str, set[str]] = {}
        for edge in edges:
            if edge.outer == edge.inner:
                if not graph.lock_reentrant.get(edge.inner, False):
                    route = (
                        f" (via {' -> '.join(_short(p) for p in edge.via)})"
                        if edge.via
                        else ""
                    )
                    yield Finding(
                        rule=self.id,
                        path=edge.summary.ctx.display_path,
                        line=getattr(edge.node, "lineno", 1),
                        col=getattr(edge.node, "col_offset", 0),
                        message=(
                            f"non-reentrant lock `{_short(edge.inner)}` reacquired "
                            f"while already held{route}; this deadlocks the calling "
                            "thread against itself — use an RLock or restructure"
                        ),
                    )
                continue
            adjacency.setdefault(edge.outer, set()).add(edge.inner)
            adjacency.setdefault(edge.inner, set())
        cyclic = _nodes_in_cycles(adjacency)
        emitted: set[tuple[str, int, str, str]] = set()
        for edge in edges:
            if edge.outer == edge.inner:
                continue
            if edge.outer in cyclic and edge.inner in cyclic[edge.outer]:
                key = (
                    edge.summary.ctx.display_path,
                    getattr(edge.node, "lineno", 1),
                    edge.outer,
                    edge.inner,
                )
                if key in emitted:
                    continue
                emitted.add(key)
                cycle = _cycle_through(adjacency, edge.outer, edge.inner)
                route = (
                    f" via {' -> '.join(_short(p) for p in edge.via)}" if edge.via else ""
                )
                yield Finding(
                    rule=self.id,
                    path=edge.summary.ctx.display_path,
                    line=getattr(edge.node, "lineno", 1),
                    col=getattr(edge.node, "col_offset", 0),
                    message=(
                        f"lock-order cycle: `{_short(edge.inner)}` acquired while "
                        f"holding `{_short(edge.outer)}`{route}, but elsewhere the "
                        f"order is reversed (cycle: {cycle}); pick one global order"
                    ),
                )


def _nodes_in_cycles(adjacency: dict[str, set[str]]) -> dict[str, set[str]]:
    """For each node on a cycle, the successors that stay on a cycle.

    Computed from strongly connected components: an edge lies on some
    cycle iff both endpoints share an SCC (of size > 1, since self-edges
    are handled separately).
    """
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    component: dict[str, int] = {}
    counter = [0]
    comp_id = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(adjacency.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adjacency.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_id[0]
                    if member == node:
                        break
                comp_id[0] += 1

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)

    sizes: dict[int, int] = {}
    for comp in component.values():
        sizes[comp] = sizes.get(comp, 0) + 1
    cyclic: dict[str, set[str]] = {}
    for node, successors in adjacency.items():
        for succ in successors:
            if component.get(node) == component.get(succ) and sizes.get(
                component.get(node, -1), 0
            ) > 1:
                cyclic.setdefault(node, set()).add(succ)
    return cyclic


def _cycle_through(adjacency: dict[str, set[str]], outer: str, inner: str) -> str:
    """A readable ``A -> B -> ... -> A`` path witnessing the cycle."""
    path = _shortest_path(adjacency, inner, outer)
    if path is None:
        return f"{_short(outer)} -> {_short(inner)} -> ... -> {_short(outer)}"
    names = [outer, *path]
    return " -> ".join(_short(name) for name in names)


def _shortest_path(
    adjacency: dict[str, set[str]], start: str, goal: str
) -> list[str] | None:
    frontier = [[start]]
    seen = {start}
    while frontier:
        next_frontier = []
        for path in frontier:
            for succ in sorted(adjacency.get(path[-1], ())):
                if succ == goal:
                    return path + [succ]
                if succ not in seen:
                    seen.add(succ)
                    next_frontier.append(path + [succ])
        frontier = next_frontier
    return None


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname
