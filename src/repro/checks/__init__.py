"""Repo-specific static analyzer (``python -m repro.checks``).

A two-pass, project-wide analyzer: pass 1 (:mod:`repro.checks.project`)
builds a symbol table and call graph over every analyzed file — import
resolution, class/method ownership, per-function summaries of acquired
locks, blocking operations, numpy solves, and inferred attribute types —
and pass 2 runs seven rules over those summaries, enforced in CI:

``lock-discipline``
    Thread-shared classes (``EngineStats``, ``ResultCache``,
    ``ServeStats``, ``MicroBatcher``) mutate ``self`` state only inside
    ``with self._lock:`` — the PR 6 retrofit, kept from regressing.
``lock-order``
    Nested lock acquisitions form one consistent global order — cycles
    are flagged interprocedurally through the call graph — and no
    blocking work (I/O, ``time.sleep``, ``size_batch``) runs while any
    lock is held.
``fork-safety``
    Classes marked ``# checks: process-shared`` hold no locks, threads,
    sockets, files, generators, or bound callables, transitively; no
    module-level mutable state is mutated under ``size_batch``.
``hot-loop``
    Functions marked ``# checks: hot-path`` contain no per-item numpy
    solves and no fresh work-array allocations inside solve loops — the
    PR 2-5 vectorization wins, made structural.
``wire-format-drift``
    Every ``SizingRequest``/``DesignSpec`` field is referenced in
    ``to_json``, ``from_json`` and ``ResultCache.key`` — the PR 4/5
    schema-threading hazard, made structural.
``rng-determinism``
    No legacy ``np.random`` module-level calls, no stdlib ``random``, no
    time-derived seeds — randomness flows through explicit Generators.
``json-safety``
    ``json.dumps`` always pins ``allow_nan=False`` — the PR 3 bare
    ``Infinity`` bug cannot silently corrupt output again.

Suppress a single finding inline with ``# checks: ignore[rule-id]``;
unused suppressions are themselves findings (and ``--fix`` deletes them
in place).  Findings carry severities; a committed baseline file can
grandfather known findings, and ``--changed-only`` restricts reporting
to git-changed files while still resolving symbols from the full tree.
See the README's "Static analysis" section for the full catalog.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .core import (
    FileContext,
    FileRule,
    Finding,
    ProjectContext,
    Report,
    Rule,
    run_checks,
)
from .fixes import apply_fixes
from .project import ProjectGraph
from .registry import DEFAULT_RULES, rule_by_id

__all__ = [
    "Finding",
    "FileContext",
    "FileRule",
    "ProjectContext",
    "ProjectGraph",
    "Report",
    "Rule",
    "run_checks",
    "DEFAULT_RULES",
    "rule_by_id",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "apply_fixes",
]
