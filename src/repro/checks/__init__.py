"""Repo-specific AST invariant linter (``python -m repro.checks``).

Four rules grounded in this reproduction's bug history, enforced in CI:

``lock-discipline``
    Thread-shared classes (``EngineStats``, ``ResultCache``,
    ``ServeStats``, ``MicroBatcher``) mutate ``self`` state only inside
    ``with self._lock:`` — the PR 6 retrofit, kept from regressing.
``wire-format-drift``
    Every ``SizingRequest``/``DesignSpec`` field is referenced in
    ``to_json``, ``from_json`` and ``ResultCache.key`` — the PR 4/5
    schema-threading hazard, made structural.
``rng-determinism``
    No legacy ``np.random`` module-level calls, no stdlib ``random``, no
    time-derived seeds — randomness flows through explicit Generators.
``json-safety``
    ``json.dumps`` always pins ``allow_nan=False`` — the PR 3 bare
    ``Infinity`` bug cannot silently corrupt output again.

Suppress a single finding inline with ``# checks: ignore[rule-id]``;
unused suppressions are themselves findings.  See the README's "Static
analysis" section for the full catalog.
"""

from .core import (
    FileContext,
    FileRule,
    Finding,
    ProjectContext,
    Report,
    Rule,
    run_checks,
)
from .registry import DEFAULT_RULES, rule_by_id

__all__ = [
    "Finding",
    "FileContext",
    "FileRule",
    "ProjectContext",
    "Report",
    "Rule",
    "run_checks",
    "DEFAULT_RULES",
    "rule_by_id",
]
