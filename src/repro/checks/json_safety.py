"""``json-safety``: every ``json.dumps``/``dump`` must pass ``allow_nan=False``.

Historical bug (PR 3): ``SearchObjective`` recorded ``float("inf")`` as
the best-so-far objective while every candidate of a generation was
penalized, and that ``inf`` flowed into solver-history JSON as a bare
``Infinity`` token — which is *not* JSON: every standards-compliant
consumer downstream failed to parse the output, long after the actual
bug site.  Python's ``json.dumps`` default (``allow_nan=True``) is what
allowed the corrupt value to leave the process silently.

The repo convention enforced here: serialization call sites always pass
``allow_nan=False`` so a non-finite value raises ``ValueError`` at the
point of serialization (loud, attributable) instead of emitting invalid
JSON (silent, discovered by whoever parses it).  Payloads expected to
carry unmeasured/non-finite values must map them to ``None`` first, the
way ``repro.service.requests._metrics_json`` guards metric bundles.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .core import FileContext, FileRule, Finding, ProjectContext, attr_chain

__all__ = ["JsonSafetyRule"]

_SERIALIZERS = frozenset({"dump", "dumps"})


class JsonSafetyRule(FileRule):
    id = "json-safety"
    summary = "json.dumps/json.dump must pass allow_nan=False (no bare Infinity/NaN)"

    def check_file(self, ctx: FileContext, project: ProjectContext) -> Iterator[Finding]:
        json_aliases, function_aliases = _json_bindings(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._serializer_name(node.func, json_aliases, function_aliases)
            if name is None:
                continue
            allow_nan = None
            for keyword in node.keywords:
                if keyword.arg == "allow_nan":
                    allow_nan = keyword.value
            if (
                isinstance(allow_nan, ast.Constant)
                and allow_nan.value is False
            ):
                continue
            if allow_nan is None:
                detail = "defaults to allow_nan=True"
            else:
                detail = "does not pin allow_nan=False"
            yield Finding(
                rule=self.id,
                path=ctx.display_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"`{name}` {detail}: a non-finite float serializes as bare "
                    "`Infinity`/`NaN`, which is not JSON — the PR 3 "
                    "solver-history bug.  Pass allow_nan=False and map "
                    "expected non-finite values to None first"
                ),
            )

    @staticmethod
    def _serializer_name(
        func: ast.expr, json_aliases: set[str], function_aliases: dict[str, str]
    ) -> str | None:
        chain = attr_chain(func)
        if chain is None:
            return None
        if len(chain) == 2 and chain[0] in json_aliases and chain[1] in _SERIALIZERS:
            return f"{chain[0]}.{chain[1]}"
        if len(chain) == 1 and chain[0] in function_aliases:
            return chain[0]
        return None


def _json_bindings(tree: ast.Module) -> tuple[set[str], dict[str, str]]:
    """Local names bound to the json module and to its dump functions."""
    modules: set[str] = set()
    functions: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "json":
                    modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "json":
            for alias in node.names:
                if alias.name in _SERIALIZERS:
                    functions[alias.asname or alias.name] = alias.name
    return modules, functions
