"""DC sweeps: LUT characterization testbench and ICMR extraction.

Two sweep styles from the paper's flow live here:

* the nested ``(Vgs, Vds)`` characterization sweep of Fig. 5 that fills the
  precomputed LUT for a reference-width device, and
* the input common-mode range (ICMR) sweep used during dataset generation
  ("Sweeping the DC voltage to determine the input common-mode range of the
  designs", Sec. IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from ..devices import EKVModel, TechParams
from .dc import ConvergenceError, solve_dc
from .netlist import Circuit

__all__ = [
    "CharacterizationResult",
    "characterize_device",
    "icmr_sweep",
    "ICMRResult",
    "dc_transfer_sweep",
]


@dataclass
class CharacterizationResult:
    """Output of the nested characterization sweep (Fig. 5).

    Each table has shape ``(len(vgs_grid), len(vds_grid))`` and stores the
    quantity *per unit width* (divided by the reference width), which is how
    the paper's LUT is stored so that widths can be recovered by ratioing.
    """

    tech: TechParams
    length: float
    reference_width: float
    vgs_grid: np.ndarray
    vds_grid: np.ndarray
    tables: dict[str, np.ndarray]

    OUTPUTS = ("id", "gm", "gds", "cds", "cgs")


def characterize_device(
    tech: TechParams,
    reference_width: float = 700e-9,
    length: float = 180e-9,
    vgs_grid: Sequence[float] | None = None,
    vds_grid: Sequence[float] | None = None,
    use_testbench: bool = True,
) -> CharacterizationResult:
    """Run the nested DC sweep of Fig. 5 and collect per-unit-width tables.

    Parameters
    ----------
    tech:
        Device parameter set (NMOS or PMOS).
    reference_width, length:
        Geometry of the characterized reference device; the paper uses
        ``Wref = 700 nm`` and ``L = 180 nm`` in a 65 nm node.
    vgs_grid, vds_grid:
        Sweep grids in volts; default 0 to 1.2 V in 60 mV steps as in the
        paper (21 points per axis).
    use_testbench:
        When True (default) each grid point is obtained by solving the
        one-transistor DC testbench through the MNA solver, exactly like a
        SPICE characterization run.  When False the model is evaluated
        directly (identical numbers, faster), which is useful in tests.
    """
    if vgs_grid is None:
        vgs_grid = np.arange(0.0, 1.2 + 1e-9, 0.06)
    if vds_grid is None:
        vds_grid = np.arange(0.0, 1.2 + 1e-9, 0.06)
    vgs_grid = np.asarray(vgs_grid, dtype=float)
    vds_grid = np.asarray(vds_grid, dtype=float)

    tables = {name: np.zeros((len(vgs_grid), len(vds_grid))) for name in CharacterizationResult.OUTPUTS}

    if use_testbench:
        for i, vgs in enumerate(vgs_grid):
            for j, vds in enumerate(vds_grid):
                op = _testbench_op(tech, reference_width, length, float(vgs), float(vds))
                small = op
                tables["id"][i, j] = small.id
                tables["gm"][i, j] = small.gm
                tables["gds"][i, j] = small.gds
                tables["cds"][i, j] = small.cds
                tables["cgs"][i, j] = small.cgs
    else:
        model = EKVModel(tech)
        vgs_mesh, vds_mesh = np.meshgrid(vgs_grid, vds_grid, indexing="ij")
        values = model.evaluate_all(vgs_mesh, vds_mesh, reference_width, length)
        for name in CharacterizationResult.OUTPUTS:
            tables[name] = np.asarray(values[name], dtype=float)

    for name in CharacterizationResult.OUTPUTS:
        tables[name] = tables[name] / reference_width

    return CharacterizationResult(
        tech=tech,
        length=length,
        reference_width=reference_width,
        vgs_grid=vgs_grid,
        vds_grid=vds_grid,
        tables=tables,
    )


def _testbench_op(tech: TechParams, width: float, length: float, vgs: float, vds: float):
    """One-point characterization: bias a single device and read its OP."""
    circuit = Circuit(name=f"char_{tech.name}")
    # Polarity mapping: the normalized (vgs, vds) pair maps to source-
    # referenced circuit voltages of the proper sign for each device type.
    pol = tech.polarity
    circuit.add_vsource("VG", "g", "0", pol * vgs)
    circuit.add_vsource("VD", "d", "0", pol * vds)
    circuit.add_mosfet("DUT", "d", "g", "0", tech, width, length)
    solution = solve_dc(circuit, initial_guess={"g": pol * vgs, "d": pol * vds})
    return solution.op("DUT").small_signal


@dataclass
class ICMRResult:
    """Input common-mode range extracted from a Vcm sweep."""

    vcm_values: np.ndarray
    all_saturated: np.ndarray
    converged: np.ndarray

    @property
    def low(self) -> float:
        """Lowest Vcm where every monitored device is saturated (nan if none)."""
        valid = self.vcm_values[self.all_saturated]
        return float(valid[0]) if len(valid) else float("nan")

    @property
    def high(self) -> float:
        """Highest valid Vcm (nan if none)."""
        valid = self.vcm_values[self.all_saturated]
        return float(valid[-1]) if len(valid) else float("nan")

    def contains(self, vcm: float, tol: float = 1e-9) -> bool:
        """True when ``vcm`` lies inside the extracted range.

        ``tol`` absorbs floating-point noise in swept grid values.
        """
        return bool(self.all_saturated.any()) and (
            self.low - tol <= vcm <= self.high + tol
        )


def icmr_sweep(
    circuit: Circuit,
    vcm_sources: Sequence[str],
    vcm_values: Iterable[float],
    monitored_devices: Sequence[str] | None = None,
) -> ICMRResult:
    """Sweep the common-mode input voltage and record device saturation.

    ``vcm_sources`` are the names of the input voltage sources whose DC value
    is set to each swept Vcm.  A design's ICMR is the contiguous range where
    every monitored MOSFET (default: all of them) stays saturated.
    """
    values = np.asarray(list(vcm_values), dtype=float)
    monitored = list(monitored_devices) if monitored_devices else [m.name for m in circuit.mosfets]
    all_saturated = np.zeros(len(values), dtype=bool)
    converged = np.zeros(len(values), dtype=bool)
    work = circuit.copy()
    guess: dict[str, float] | None = None
    for k, vcm in enumerate(values):
        for source_name in vcm_sources:
            work.vsource(source_name).dc = float(vcm)
        try:
            solution = solve_dc(work, initial_guess=guess)
        except ConvergenceError:
            continue
        converged[k] = True
        guess = solution.node_voltages  # warm start for the next point
        all_saturated[k] = all(solution.op(name).saturated for name in monitored)
    return ICMRResult(vcm_values=values, all_saturated=all_saturated, converged=converged)


def dc_transfer_sweep(
    circuit: Circuit,
    source_name: str,
    values: Iterable[float],
    observe_node: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Sweep one voltage source and observe a node voltage (warm-started)."""
    sweep_values = np.asarray(list(values), dtype=float)
    observed = np.full(len(sweep_values), np.nan)
    work = circuit.copy()
    guess: dict[str, float] | None = None
    for k, value in enumerate(sweep_values):
        work.vsource(source_name).dc = float(value)
        try:
            solution = solve_dc(work, initial_guess=guess)
        except ConvergenceError:
            continue
        guess = solution.node_voltages
        observed[k] = solution.voltage(observe_node)
    return sweep_values, observed
