"""Small-signal AC analysis on the linearized circuit.

After a DC solve, every MOSFET is replaced by its four-element small-signal
model -- exactly the parameter set the paper's LUT stores and its DP-SFG
uses (Sec. II-B, III-B):

* a VCCS ``gm * (vg - vs)`` from drain to source,
* an output conductance ``gds`` between drain and source,
* ``Cgs`` between gate and source, and
* ``Cds`` between drain and source.

The complex MNA system ``Y(jw) x = b`` is then solved over a frequency
grid.  Independent sources contribute through their ``ac`` magnitudes
(supplies and bias sources have ``ac = 0`` and act as small-signal
grounds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import linsolve
from .dc import DCSolution
from .netlist import GROUND, Circuit

__all__ = ["ACResult", "run_ac", "run_ac_many", "default_frequency_grid"]


def default_frequency_grid(
    f_start: float = 1.0, f_stop: float = 1e11, points_per_decade: int = 12
) -> np.ndarray:
    """Logarithmic frequency grid (Hz) covering the OTA metric range."""
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    decades = np.log10(f_stop / f_start)
    n_points = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), n_points)


@dataclass
class ACResult:
    """Frequency response of every node voltage.

    ``phasors`` has shape ``(n_freq, n_nodes)`` in the order of
    ``node_names``; ground is implicit (always 0).
    """

    frequencies: np.ndarray
    node_names: list[str]
    phasors: np.ndarray

    def __post_init__(self) -> None:
        # Name -> column map so transfer() is O(1) instead of a linear
        # scan of node_names on every call (metric extraction hits it in a
        # loop over output nodes and bulk paths hit it per candidate).
        self._node_index = {name: i for i, name in enumerate(self.node_names)}

    def transfer(self, node: str) -> np.ndarray:
        """Complex response of ``node`` versus frequency."""
        if node == GROUND:
            return np.zeros_like(self.frequencies, dtype=complex)
        try:
            idx = self._node_index[node]
        except KeyError:
            raise ValueError(f"{node!r} is not a node of this AC result") from None
        return self.phasors[:, idx]

    def magnitude_db(self, node: str) -> np.ndarray:
        """Magnitude response in dB (floors at -400 dB to avoid log(0))."""
        mag = np.abs(self.transfer(node))
        return 20.0 * np.log10(np.maximum(mag, 1e-20))


class _ACSystem:
    """Builds the complex MNA matrices of the linearized circuit."""

    def __init__(self, solution: DCSolution):
        self.circuit: Circuit = solution.circuit
        self.solution = solution
        self.node_names = self.circuit.nodes()
        self.n_nodes = len(self.node_names)
        self.n_sources = len(self.circuit.vsources)
        self.size = self.n_nodes + self.n_sources
        self._index = {name: i for i, name in enumerate(self.node_names)}
        self._conductance, self._capacitance, self._rhs = self._assemble()

    def _node(self, name: str) -> int | None:
        return None if name == GROUND else self._index[name]

    def _assemble(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = self.n_nodes
        g_matrix = np.zeros((self.size, self.size))
        c_matrix = np.zeros((self.size, self.size))
        rhs = np.zeros(self.size, dtype=complex)

        def stamp_admittance(matrix: np.ndarray, i1: int | None, i2: int | None, value: float) -> None:
            if i1 is not None:
                matrix[i1, i1] += value
                if i2 is not None:
                    matrix[i1, i2] -= value
            if i2 is not None:
                matrix[i2, i2] += value
                if i1 is not None:
                    matrix[i2, i1] -= value

        def stamp_vccs(
            matrix: np.ndarray,
            out_pos: int | None,
            out_neg: int | None,
            ctrl_pos: int | None,
            ctrl_neg: int | None,
            gm: float,
        ) -> None:
            # Current gm*(v_ctrl_pos - v_ctrl_neg) flows out_pos -> out_neg.
            for out, sign_out in ((out_pos, 1.0), (out_neg, -1.0)):
                if out is None:
                    continue
                for ctrl, sign_ctrl in ((ctrl_pos, 1.0), (ctrl_neg, -1.0)):
                    if ctrl is None:
                        continue
                    matrix[out, ctrl] += sign_out * sign_ctrl * gm

        for res in self.circuit.resistors:
            stamp_admittance(
                g_matrix, self._node(res.node1), self._node(res.node2), res.conductance
            )
        for cap in self.circuit.capacitors:
            stamp_admittance(
                c_matrix, self._node(cap.node1), self._node(cap.node2), cap.capacitance
            )

        for mosfet in self.circuit.mosfets:
            op = self.solution.op(mosfet.name)
            small = op.small_signal
            drain = self._node(mosfet.drain)
            gate = self._node(mosfet.gate)
            source = self._node(mosfet.source)
            stamp_admittance(g_matrix, drain, source, small.gds)
            stamp_admittance(c_matrix, drain, source, small.cds)
            stamp_admittance(c_matrix, gate, source, small.cgs)
            stamp_vccs(g_matrix, drain, source, gate, source, small.gm)

        for src in self.circuit.isources:
            ip, in_ = self._node(src.pos), self._node(src.neg)
            if ip is not None:
                rhs[ip] -= src.ac
            if in_ is not None:
                rhs[in_] += src.ac

        for k, src in enumerate(self.circuit.vsources):
            row = n + k
            ip, in_ = self._node(src.pos), self._node(src.neg)
            if ip is not None:
                g_matrix[ip, row] += 1.0
                g_matrix[row, ip] += 1.0
            if in_ is not None:
                g_matrix[in_, row] -= 1.0
                g_matrix[row, in_] -= 1.0
            rhs[row] = src.ac

        return g_matrix, c_matrix, rhs

    def pattern(self) -> linsolve.StructurePattern:
        """Symbolic solve structure of this system's ``Y(jw)`` sweep.

        Every nonzero of ``Y(jw) = G + jw C`` lies inside
        ``nonzero(G) | nonzero(C)`` at *every* frequency, so one pattern
        covers the whole grid.
        """
        return linsolve.pattern_from_matrices(self._conductance, self._capacitance)

    def solve(self, frequencies: np.ndarray) -> np.ndarray:
        """Solve the frequency sweep through the linsolve layer.

        Frequencies are chunked only to bound the stacked ``Y`` tensor's
        memory; each chunk's ``Y(jw)`` entries are built with the same
        elementwise arithmetic as the historical per-frequency loop and
        the dense backend's stacked LAPACK sweep factors each matrix
        independently, so the phasors are bit-identical to the old
        scalar path.  The symbolic pattern is shared by every chunk.
        """
        phasors = np.zeros((len(frequencies), self.n_nodes), dtype=complex)
        omegas = 2.0 * np.pi * np.asarray(frequencies, dtype=float)
        pattern = self.pattern()
        for start in range(0, len(omegas), _FREQ_CHUNK):
            w = omegas[start : start + _FREQ_CHUNK]
            y_stack = self._conductance[None, :, :] + (1j * w)[:, None, None] * self._capacitance[None, :, :]
            rhs = np.broadcast_to(self._rhs, (len(w), self.size))
            solved = linsolve.solve_stacked(y_stack, rhs, pattern=pattern)
            phasors[start : start + len(w)] = solved[:, : self.n_nodes]
        return phasors


def run_ac(
    solution: DCSolution,
    frequencies: np.ndarray | None = None,
) -> ACResult:
    """Run a small-signal AC analysis at the given DC operating point.

    Parameters
    ----------
    solution:
        Result of :func:`repro.spice.dc.solve_dc`; it carries the linearized
        device parameters.
    frequencies:
        Frequency grid in Hz (defaults to :func:`default_frequency_grid`).
    """
    freqs = default_frequency_grid() if frequencies is None else np.asarray(frequencies, dtype=float)
    system = _ACSystem(solution)
    phasors = system.solve(freqs)
    return ACResult(frequencies=freqs, node_names=system.node_names, phasors=phasors)


#: Candidates per stacked AC solve; bounds the transient ``Y`` stack to a
#: few tens of MB even for large populations and wide frequency grids.
_AC_CHUNK = 64

#: Frequencies per stacked solve in the scalar :func:`run_ac` path; keeps
#: the ``(freqs, size, size)`` complex ``Y`` stack small even for the
#: node-count scaling bench's largest structures.
_FREQ_CHUNK = 32

#: Complex elements allowed in one ``(chunk, freqs, size, size)`` stack
#: (~64 MB); large structures shrink the candidate chunk instead of
#: blowing up memory.  Chunking never changes values -- each matrix is
#: factorized independently either way.
_AC_STACK_BUDGET = 4_000_000


def run_ac_many(  # checks: hot-path
    solutions: list,
    frequencies: np.ndarray | None = None,
) -> list:
    """Run the AC analysis of many operating points in one stacked solve.

    The bulk path of the batched evaluation backend: all candidates' MNA
    systems of one shape are stacked into a single complex
    ``(candidates, frequencies, size, size)`` tensor and factorized by one
    ``np.linalg.solve`` call, replacing the per-frequency Python loop of
    :func:`run_ac` with a single LAPACK sweep.  The per-matrix arithmetic
    is unchanged, so the returned phasors are bit-identical to running
    :func:`run_ac` per candidate (pinned by the parity tests).

    ``solutions`` may mix circuit structures; candidates are grouped by
    system size and each group is solved together.
    """
    freqs = default_frequency_grid() if frequencies is None else np.asarray(frequencies, dtype=float)
    results: list = [None] * len(solutions)
    systems = [_ACSystem(solution) for solution in solutions]
    omegas = 2.0 * np.pi * freqs

    groups: dict[int, list[int]] = {}
    for index, system in enumerate(systems):
        groups.setdefault(system.size, []).append(index)

    for size, indices in groups.items():
        chunk_size = max(
            1, min(_AC_CHUNK, _AC_STACK_BUDGET // max(1, len(freqs) * size * size))
        )
        for start in range(0, len(indices), chunk_size):
            chunk = indices[start : start + chunk_size]
            g_stack = np.stack([systems[i]._conductance for i in chunk])
            c_stack = np.stack([systems[i]._capacitance for i in chunk])
            rhs_stack = np.stack([systems[i]._rhs for i in chunk])
            # One symbolic pattern per chunk: the nonzeros of every
            # candidate's Y(jw) lie inside the union of the chunk's G/C
            # nonzeros at every frequency.
            pattern = linsolve.pattern_from_matrices(g_stack, c_stack)
            # Y(jw) per candidate and frequency; elementwise the same ops
            # as the scalar per-frequency build in _ACSystem.solve.
            y_stack = g_stack[:, None, :, :] + (1j * omegas)[None, :, None, None] * c_stack[:, None, :, :]
            rhs = np.broadcast_to(rhs_stack[:, None, :], y_stack.shape[:3])
            solved = linsolve.solve_stacked(y_stack, rhs, pattern=pattern)
            for row, i in enumerate(chunk):
                system = systems[i]
                results[i] = ACResult(
                    frequencies=freqs,
                    node_names=system.node_names,
                    phasors=solved[row][:, : system.n_nodes].copy(),
                )
    return results
