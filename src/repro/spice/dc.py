"""Nonlinear DC operating-point solver (Newton-Raphson on MNA).

This is the substrate that stands in for the Spectre/SPICE operating-point
analyses used throughout the paper (dataset generation, LUT
characterization, verification).  It builds the standard modified nodal
analysis (MNA) system

* one KCL residual per non-ground node,
* one branch-current unknown plus one voltage constraint per independent
  voltage source,

and solves ``f(x) = 0`` with damped Newton iterations.  Convergence
robustness comes from three stacked strategies, tried in order:

1. plain damped Newton from the initial guess,
2. gmin stepping (a large conductance to ground is ramped down decade by
   decade), and
3. source stepping (supplies ramped from 0 to full value).

These are the same continuation tricks production SPICE engines use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..devices import OperatingPoint
from .netlist import GROUND, Circuit

__all__ = ["DCSolution", "ConvergenceError", "solve_dc", "solve_dc_many"]

#: Shunt conductance to ground added at every node for conditioning (S).
GMIN = 1e-12

#: Maximum allowed Newton voltage update per iteration (V).
MAX_STEP = 0.5


class ConvergenceError(RuntimeError):
    """Raised when all DC continuation strategies fail to converge."""


@dataclass
class DCSolution:
    """Result of a DC operating-point solve."""

    circuit: Circuit
    node_voltages: dict[str, float]
    source_currents: dict[str, float]
    iterations: int
    strategy: str
    operating_points: dict[str, OperatingPoint] = field(default_factory=dict)

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` (ground is always 0 V)."""
        if node == GROUND:
            return 0.0
        return self.node_voltages[node]

    def op(self, mosfet_name: str) -> OperatingPoint:
        """Operating point of the named MOSFET."""
        return self.operating_points[mosfet_name]

    def kcl_residual(self) -> float:
        """Max KCL residual (A) over all nodes -- a correctness self-check."""
        system = _MNASystem(self.circuit)
        x = system.pack(self.node_voltages, self.source_currents)
        residual, _ = system.residual_and_jacobian(x, source_scale=1.0, gmin=GMIN)
        return float(np.max(np.abs(residual[: system.n_nodes]))) if system.n_nodes else 0.0


class _MNASystem:
    """Assembles residual and Jacobian of the nonlinear MNA equations."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.node_names = circuit.nodes()
        self.n_nodes = len(self.node_names)
        self.n_sources = len(circuit.vsources)
        self.size = self.n_nodes + self.n_sources
        self._index = {name: i for i, name in enumerate(self.node_names)}

    # ------------------------------------------------------------------
    def node_index(self, name: str) -> Optional[int]:
        """Index of a node in the unknown vector; ``None`` for ground."""
        if name == GROUND:
            return None
        return self._index[name]

    def pack(
        self, voltages: dict[str, float], currents: dict[str, float]
    ) -> np.ndarray:
        x = np.zeros(self.size)
        for name, idx in self._index.items():
            x[idx] = voltages.get(name, 0.0)
        for k, source in enumerate(self.circuit.vsources):
            x[self.n_nodes + k] = currents.get(source.name, 0.0)
        return x

    def unpack(self, x: np.ndarray) -> tuple[dict[str, float], dict[str, float]]:
        voltages = {name: float(x[idx]) for name, idx in self._index.items()}
        currents = {
            source.name: float(x[self.n_nodes + k])
            for k, source in enumerate(self.circuit.vsources)
        }
        return voltages, currents

    # ------------------------------------------------------------------
    def residual_and_jacobian(
        self, x: np.ndarray, source_scale: float, gmin: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate ``f(x)`` and ``J(x)`` at the given point.

        ``source_scale`` multiplies every independent source value (used by
        the source-stepping continuation).  ``gmin`` is the shunt
        conductance to ground at each node.
        """
        circuit = self.circuit
        n = self.n_nodes
        f = np.zeros(self.size)
        jac = np.zeros((self.size, self.size))

        def volt(idx: Optional[int]) -> float:
            return 0.0 if idx is None else float(x[idx])

        # gmin shunts keep floating subcircuits well-conditioned.
        for idx in range(n):
            f[idx] += gmin * x[idx]
            jac[idx, idx] += gmin

        for res in circuit.resistors:
            i1, i2 = self.node_index(res.node1), self.node_index(res.node2)
            g = res.conductance
            current = g * (volt(i1) - volt(i2))
            if i1 is not None:
                f[i1] += current
                jac[i1, i1] += g
                if i2 is not None:
                    jac[i1, i2] -= g
            if i2 is not None:
                f[i2] -= current
                jac[i2, i2] += g
                if i1 is not None:
                    jac[i2, i1] -= g

        for src in circuit.isources:
            ip, in_ = self.node_index(src.pos), self.node_index(src.neg)
            value = src.dc * source_scale
            if ip is not None:
                f[ip] += value
            if in_ is not None:
                f[in_] -= value

        for mosfet in circuit.mosfets:
            id_, ig, is_ = (
                self.node_index(mosfet.drain),
                self.node_index(mosfet.gate),
                self.node_index(mosfet.source),
            )
            vd, vg, vs = volt(id_), volt(ig), volt(is_)
            ids = mosfet.ids(vd, vg, vs)
            gm, gds = mosfet.conductances(vd, vg, vs)
            # Current i_ds leaves the drain node and enters the source node.
            if id_ is not None:
                f[id_] += ids
                jac[id_, id_] += gds
                if ig is not None:
                    jac[id_, ig] += gm
                if is_ is not None:
                    jac[id_, is_] -= gm + gds
            if is_ is not None:
                f[is_] -= ids
                jac[is_, is_] += gm + gds
                if id_ is not None:
                    jac[is_, id_] -= gds
                if ig is not None:
                    jac[is_, ig] -= gm

        for k, src in enumerate(circuit.vsources):
            row = n + k
            ip, in_ = self.node_index(src.pos), self.node_index(src.neg)
            branch_current = float(x[row])
            # Branch current flows out of the positive node.
            if ip is not None:
                f[ip] += branch_current
                jac[ip, row] += 1.0
            if in_ is not None:
                f[in_] -= branch_current
                jac[in_, row] -= 1.0
            f[row] = volt(ip) - volt(in_) - src.dc * source_scale
            if ip is not None:
                jac[row, ip] += 1.0
            if in_ is not None:
                jac[row, in_] -= 1.0

        return f, jac


def _newton(
    system: _MNASystem,
    x0: np.ndarray,
    source_scale: float,
    gmin: float,
    max_iterations: int = 150,
    abstol: float = 1e-10,
    reltol: float = 1e-9,
) -> tuple[np.ndarray, int]:
    """Damped Newton iteration; returns the solution and iteration count."""
    x = x0.copy()
    for iteration in range(1, max_iterations + 1):
        f, jac = system.residual_and_jacobian(x, source_scale, gmin)
        try:
            dx = np.linalg.solve(jac, -f)
        except np.linalg.LinAlgError:
            dx = np.linalg.lstsq(jac, -f, rcond=None)[0]
        # Voltage-step damping: scale the whole update so no node moves
        # more than MAX_STEP volts in one iteration.
        v_step = np.max(np.abs(dx[: system.n_nodes])) if system.n_nodes else 0.0
        if v_step > MAX_STEP:
            dx *= MAX_STEP / v_step
        x += dx
        node_residual = (
            float(np.max(np.abs(f[: system.n_nodes]))) if system.n_nodes else 0.0
        )
        if node_residual < abstol and float(np.max(np.abs(dx), initial=0.0)) < reltol:
            return x, iteration
    raise ConvergenceError(
        f"Newton failed after {max_iterations} iterations "
        f"(source_scale={source_scale}, gmin={gmin})"
    )


def _default_guess(system: _MNASystem) -> np.ndarray:
    """Heuristic starting point: source nodes pinned, others at mid-rail."""
    circuit = system.circuit
    supply = max((abs(src.dc) for src in circuit.vsources), default=1.0)
    x = np.full(system.size, 0.0)
    x[: system.n_nodes] = supply / 2.0
    for src in circuit.vsources:
        ip = system.node_index(src.pos)
        in_ = system.node_index(src.neg)
        if ip is not None and in_ is None:
            x[ip] = src.dc
        elif ip is None and in_ is not None:
            x[in_] = -src.dc
    return x


def solve_dc(
    circuit: Circuit,
    initial_guess: Optional[dict[str, float]] = None,
    max_iterations: int = 150,
) -> DCSolution:
    """Solve the DC operating point of ``circuit``.

    Parameters
    ----------
    circuit:
        The netlist to solve.
    initial_guess:
        Optional mapping from node name to starting voltage; unknown nodes
        fall back to the built-in heuristic.
    max_iterations:
        Newton iteration cap per continuation stage.

    Raises
    ------
    ConvergenceError
        If plain Newton, gmin stepping and source stepping all fail.
    """
    system = _MNASystem(circuit)
    x0 = _initial_point(system, initial_guess)
    return _solve_with_continuation(system, x0, max_iterations)


def _initial_point(
    system: _MNASystem, initial_guess: Optional[dict[str, float]]
) -> np.ndarray:
    """Starting vector: heuristic guess overridden by the caller's hints."""
    x0 = _default_guess(system)
    if initial_guess:
        for name, value in initial_guess.items():
            idx = system.node_index(name)
            if idx is not None:
                x0[idx] = value
    return x0


def _solve_with_continuation(
    system: _MNASystem,
    x0: np.ndarray,
    max_iterations: int,
    skip_plain_newton: bool = False,
) -> DCSolution:
    """Run the stacked continuation strategies from ``x0``.

    ``skip_plain_newton`` lets the batched solver hand over candidates whose
    plain-Newton stage already (provably, bit-identically) failed without
    paying for a second identical failure.
    """
    circuit = system.circuit
    total_iterations = 0

    # Strategy 1: plain damped Newton.
    if not skip_plain_newton:
        try:
            x, iters = _newton(system, x0, 1.0, GMIN, max_iterations)
            return _finalize(system, x, iters, "newton")
        except ConvergenceError:
            pass

    # Strategy 2: gmin stepping.
    x = x0.copy()
    try:
        for exponent in range(3, 13):
            gmin = 10.0 ** (-exponent)
            x, iters = _newton(system, x, 1.0, gmin, max_iterations)
            total_iterations += iters
        return _finalize(system, x, total_iterations, "gmin-stepping")
    except ConvergenceError:
        pass

    # Strategy 3: source stepping.
    x = np.zeros(system.size)
    total_iterations = 0
    try:
        for scale in np.linspace(0.1, 1.0, 10):
            x, iters = _newton(system, x, float(scale), GMIN, max_iterations)
            total_iterations += iters
        return _finalize(system, x, total_iterations, "source-stepping")
    except ConvergenceError as exc:
        raise ConvergenceError(
            f"DC solve failed for circuit {circuit.name!r} with all strategies"
        ) from exc


def solve_dc_many(
    circuits: list,
    initial_guess: Optional[dict[str, float]] = None,
    max_iterations: int = 150,
) -> list:
    """Solve the DC operating point of many structurally similar circuits.

    The bulk path of the batched evaluation backend: circuits that share
    one MNA structure (same nodes and elements, only MOSFET widths differ
    -- exactly what one topology's ``build`` produces over a population of
    width vectors) run the plain-Newton stage *together*, with the
    residual/Jacobian assembly vectorized over the candidate axis and one
    stacked ``np.linalg.solve`` per iteration.  Every per-candidate
    floating-point operation is elementwise-identical to the scalar path,
    so the returned solutions are bit-identical to ``solve_dc`` run one
    candidate at a time (the parity tests pin this).

    Failures are isolated per candidate: a design whose plain Newton stage
    diverges falls back to the scalar continuation strategies, and if those
    fail too its slot holds the :class:`ConvergenceError` instead of a
    :class:`DCSolution` -- one bad design never aborts the batch.

    Returns a list aligned with ``circuits`` whose entries are either
    :class:`DCSolution` or :class:`ConvergenceError`.
    """
    results: list = [None] * len(circuits)
    groups: dict = {}
    for index, circuit in enumerate(circuits):
        groups.setdefault(_structure_key(circuit), []).append(index)
    for indices in groups.values():
        batch = [circuits[i] for i in indices]
        for i, outcome in zip(indices, _solve_batch(batch, initial_guess, max_iterations)):
            results[i] = outcome
    return results


def _structure_key(circuit: Circuit):
    """Hashable MNA-structure signature: everything but MOSFET widths."""
    return (
        tuple(circuit.nodes()),
        tuple((r.node1, r.node2, r.resistance) for r in circuit.resistors),
        tuple((s.pos, s.neg, s.dc) for s in circuit.isources),
        tuple((s.pos, s.neg, s.dc) for s in circuit.vsources),
        tuple(
            (m.name, m.drain, m.gate, m.source, m.tech, m.length)
            for m in circuit.mosfets
        ),
    )


def _solve_batch(
    circuits: list, initial_guess: Optional[dict[str, float]], max_iterations: int
) -> list:
    """Solve one structure-sharing group; see :func:`solve_dc_many`."""
    system = _MNASystem(circuits[0])
    x0 = _initial_point(system, initial_guess)
    slot_widths = [
        np.array([circuit.mosfets[slot].width for circuit in circuits])
        for slot in range(len(circuits[0].mosfets))
    ]
    xs, iters, converged = _newton_batch(
        system, len(circuits), slot_widths, x0, 1.0, GMIN, max_iterations
    )
    outcomes: list = []
    for j, circuit in enumerate(circuits):
        # _finalize extracts operating points from the candidate's *own*
        # MOSFET instances, so rebuild the (cheap) per-candidate system.
        if converged[j]:
            outcomes.append(_finalize(_MNASystem(circuit), xs[j], int(iters[j]), "newton"))
            continue
        try:
            outcomes.append(
                _solve_with_continuation(
                    _MNASystem(circuit), x0.copy(), max_iterations, skip_plain_newton=True
                )
            )
        except ConvergenceError as error:
            outcomes.append(error)
    return outcomes


def _residual_and_jacobian_batch(
    system: _MNASystem,
    slot_widths: list,
    x: np.ndarray,
    source_scale: float,
    gmin: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized counterpart of ``_MNASystem.residual_and_jacobian``.

    ``x`` has shape ``(P, size)`` -- one unknown vector per candidate --
    and ``slot_widths[k]`` holds candidate ``k``-th MOSFET widths.  Every
    stamp mirrors the scalar assembly operation for operation; because
    numpy ufuncs are elementwise, each candidate's row is bit-identical to
    what the scalar assembly produces for that candidate alone.
    """
    circuit = system.circuit
    n = system.n_nodes
    batch = x.shape[0]
    f = np.zeros((batch, system.size))
    jac = np.zeros((batch, system.size, system.size))

    def volt(idx: Optional[int]):
        return 0.0 if idx is None else x[:, idx]

    # gmin shunts keep floating subcircuits well-conditioned.
    if n:
        f[:, :n] += gmin * x[:, :n]
        diag = np.arange(n)
        jac[:, diag, diag] += gmin

    for res in circuit.resistors:
        i1, i2 = system.node_index(res.node1), system.node_index(res.node2)
        g = res.conductance
        current = g * (volt(i1) - volt(i2))
        if i1 is not None:
            f[:, i1] += current
            jac[:, i1, i1] += g
            if i2 is not None:
                jac[:, i1, i2] -= g
        if i2 is not None:
            f[:, i2] -= current
            jac[:, i2, i2] += g
            if i1 is not None:
                jac[:, i2, i1] -= g

    for src in circuit.isources:
        ip, in_ = system.node_index(src.pos), system.node_index(src.neg)
        value = src.dc * source_scale
        if ip is not None:
            f[:, ip] += value
        if in_ is not None:
            f[:, in_] -= value

    for slot, mosfet in enumerate(circuit.mosfets):
        id_, ig, is_ = (
            system.node_index(mosfet.drain),
            system.node_index(mosfet.gate),
            system.node_index(mosfet.source),
        )
        vd, vg, vs = volt(id_), volt(ig), volt(is_)
        widths = slot_widths[slot]
        pol = mosfet.tech.polarity
        # Mirrors MOSFET.ids / MOSFET.conductances with a width vector.
        vgs = pol * (vg - vs)
        vds = pol * (vd - vs)
        ids = pol * mosfet.model.drain_current(vgs, vds, widths, mosfet.length)
        gm = mosfet.model.transconductance(vgs, vds, widths, mosfet.length)
        gds = mosfet.model.output_conductance(vgs, vds, widths, mosfet.length)
        # Current i_ds leaves the drain node and enters the source node.
        if id_ is not None:
            f[:, id_] += ids
            jac[:, id_, id_] += gds
            if ig is not None:
                jac[:, id_, ig] += gm
            if is_ is not None:
                jac[:, id_, is_] -= gm + gds
        if is_ is not None:
            f[:, is_] -= ids
            jac[:, is_, is_] += gm + gds
            if id_ is not None:
                jac[:, is_, id_] -= gds
            if ig is not None:
                jac[:, is_, ig] -= gm

    for k, src in enumerate(circuit.vsources):
        row = n + k
        ip, in_ = system.node_index(src.pos), system.node_index(src.neg)
        branch_current = x[:, row]
        # Branch current flows out of the positive node.
        if ip is not None:
            f[:, ip] += branch_current
            jac[:, ip, row] += 1.0
        if in_ is not None:
            f[:, in_] -= branch_current
            jac[:, in_, row] -= 1.0
        f[:, row] = volt(ip) - volt(in_) - src.dc * source_scale
        if ip is not None:
            jac[:, row, ip] += 1.0
        if in_ is not None:
            jac[:, row, in_] -= 1.0

    return f, jac


def _solve_newton_steps(jac: np.ndarray, f: np.ndarray) -> np.ndarray:
    """Stacked ``J dx = -f`` solve with the scalar path's lstsq fallback."""
    try:
        return np.linalg.solve(jac, -f[..., None])[..., 0]
    except np.linalg.LinAlgError:
        dx = np.empty_like(f)
        for k in range(f.shape[0]):
            try:
                dx[k] = np.linalg.solve(jac[k], -f[k])
            except np.linalg.LinAlgError:
                dx[k] = np.linalg.lstsq(jac[k], -f[k], rcond=None)[0]
        return dx


def _newton_batch(
    system: _MNASystem,
    batch: int,
    slot_widths: list,
    x0: np.ndarray,
    source_scale: float,
    gmin: float,
    max_iterations: int = 150,
    abstol: float = 1e-10,
    reltol: float = 1e-9,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Damped Newton over a ``batch``-candidate group; per-candidate convergence.

    Candidates freeze the moment their own convergence criterion fires, so
    each trajectory reproduces the scalar ``_newton`` iteration for that
    candidate exactly.  Returns ``(solutions, iterations, converged)``.
    """
    n = system.n_nodes
    x = np.tile(x0, (batch, 1))
    solutions = np.array(x, copy=True)
    iterations = np.zeros(batch, dtype=int)
    converged = np.zeros(batch, dtype=bool)
    active = np.arange(batch)

    for iteration in range(1, max_iterations + 1):
        widths_active = [w[active] for w in slot_widths]
        f, jac = _residual_and_jacobian_batch(
            system, widths_active, x[active], source_scale, gmin
        )
        dx = _solve_newton_steps(jac, f)
        # Voltage-step damping: scale each candidate's update so no node
        # moves more than MAX_STEP volts in one iteration.
        if n:
            v_step = np.max(np.abs(dx[:, :n]), axis=1)
            over = v_step > MAX_STEP
            if np.any(over):
                dx[over] *= (MAX_STEP / v_step[over])[:, None]
        x[active] += dx
        node_residual = (
            np.max(np.abs(f[:, :n]), axis=1) if n else np.zeros(len(active))
        )
        done = (node_residual < abstol) & (np.max(np.abs(dx), axis=1) < reltol)
        if np.any(done):
            newly = active[done]
            solutions[newly] = x[newly]
            iterations[newly] = iteration
            converged[newly] = True
            active = active[~done]
            if active.size == 0:
                break
    return solutions, iterations, converged


def _finalize(system: _MNASystem, x: np.ndarray, iterations: int, strategy: str) -> DCSolution:
    voltages, currents = system.unpack(x)

    def volt(node: str) -> float:
        return 0.0 if node == GROUND else voltages[node]

    ops = {
        mosfet.name: mosfet.operating_point(
            volt(mosfet.drain), volt(mosfet.gate), volt(mosfet.source)
        )
        for mosfet in system.circuit.mosfets
    }
    return DCSolution(
        circuit=system.circuit,
        node_voltages=voltages,
        source_currents=currents,
        iterations=iterations,
        strategy=strategy,
        operating_points=ops,
    )
