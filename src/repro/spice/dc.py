"""Nonlinear DC operating-point solver (Newton-Raphson on MNA).

This is the substrate that stands in for the Spectre/SPICE operating-point
analyses used throughout the paper (dataset generation, LUT
characterization, verification).  It builds the standard modified nodal
analysis (MNA) system

* one KCL residual per non-ground node,
* one branch-current unknown plus one voltage constraint per independent
  voltage source,

and solves ``f(x) = 0`` with damped Newton iterations.  Convergence
robustness comes from three stacked strategies, tried in order:

1. plain damped Newton from the initial guess,
2. gmin stepping (a large conductance to ground is ramped down decade by
   decade), and
3. source stepping (supplies ramped from 0 to full value).

These are the same continuation tricks production SPICE engines use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..devices import EKVModel, OperatingPoint
from . import linsolve
from .netlist import GROUND, Circuit

__all__ = ["DCSolution", "ConvergenceError", "solve_dc", "solve_dc_many"]

#: Shunt conductance to ground added at every node for conditioning (S).
GMIN = 1e-12

#: Maximum allowed Newton voltage update per iteration (V).
MAX_STEP = 0.5


class ConvergenceError(RuntimeError):
    """Raised when all DC continuation strategies fail to converge."""


@dataclass
class DCSolution:
    """Result of a DC operating-point solve."""

    circuit: Circuit
    node_voltages: dict[str, float]
    source_currents: dict[str, float]
    iterations: int
    strategy: str
    operating_points: dict[str, OperatingPoint] = field(default_factory=dict)

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` (ground is always 0 V)."""
        if node == GROUND:
            return 0.0
        return self.node_voltages[node]

    def op(self, mosfet_name: str) -> OperatingPoint:
        """Operating point of the named MOSFET."""
        return self.operating_points[mosfet_name]

    def kcl_residual(self) -> float:
        """Max KCL residual (A) over all nodes -- a correctness self-check."""
        system = _MNASystem(self.circuit)
        x = system.pack(self.node_voltages, self.source_currents)
        residual, _ = system.residual_and_jacobian(x, source_scale=1.0, gmin=GMIN)
        return float(np.max(np.abs(residual[: system.n_nodes]))) if system.n_nodes else 0.0


class _MNASystem:
    """Assembles residual and Jacobian of the nonlinear MNA equations."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.node_names = circuit.nodes()
        self.n_nodes = len(self.node_names)
        self.n_sources = len(circuit.vsources)
        self.size = self.n_nodes + self.n_sources
        self._index = {name: i for i, name in enumerate(self.node_names)}

    # ------------------------------------------------------------------
    def node_index(self, name: str) -> int | None:
        """Index of a node in the unknown vector; ``None`` for ground."""
        if name == GROUND:
            return None
        return self._index[name]

    def pack(
        self, voltages: dict[str, float], currents: dict[str, float]
    ) -> np.ndarray:
        x = np.zeros(self.size)
        for name, idx in self._index.items():
            x[idx] = voltages.get(name, 0.0)
        for k, source in enumerate(self.circuit.vsources):
            x[self.n_nodes + k] = currents.get(source.name, 0.0)
        return x

    def unpack(self, x: np.ndarray) -> tuple[dict[str, float], dict[str, float]]:
        voltages = {name: float(x[idx]) for name, idx in self._index.items()}
        currents = {
            source.name: float(x[self.n_nodes + k])
            for k, source in enumerate(self.circuit.vsources)
        }
        return voltages, currents

    # ------------------------------------------------------------------
    def residual_and_jacobian(
        self, x: np.ndarray, source_scale: float, gmin: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate ``f(x)`` and ``J(x)`` at the given point.

        ``source_scale`` multiplies every independent source value (used by
        the source-stepping continuation).  ``gmin`` is the shunt
        conductance to ground at each node.
        """
        circuit = self.circuit
        n = self.n_nodes
        f = np.zeros(self.size)
        jac = np.zeros((self.size, self.size))

        def volt(idx: int | None) -> float:
            return 0.0 if idx is None else float(x[idx])

        # gmin shunts keep floating subcircuits well-conditioned.  Sliced
        # elementwise ops are bit-identical to the former per-node loop.
        if n:
            f[:n] += gmin * x[:n]
            diag = np.arange(n)
            jac[diag, diag] += gmin

        for res in circuit.resistors:
            i1, i2 = self.node_index(res.node1), self.node_index(res.node2)
            g = res.conductance
            current = g * (volt(i1) - volt(i2))
            if i1 is not None:
                f[i1] += current
                jac[i1, i1] += g
                if i2 is not None:
                    jac[i1, i2] -= g
            if i2 is not None:
                f[i2] -= current
                jac[i2, i2] += g
                if i1 is not None:
                    jac[i2, i1] -= g

        for src in circuit.isources:
            ip, in_ = self.node_index(src.pos), self.node_index(src.neg)
            value = src.dc * source_scale
            if ip is not None:
                f[ip] += value
            if in_ is not None:
                f[in_] -= value

        for mosfet in circuit.mosfets:
            id_, ig, is_ = (
                self.node_index(mosfet.drain),
                self.node_index(mosfet.gate),
                self.node_index(mosfet.source),
            )
            vd, vg, vs = volt(id_), volt(ig), volt(is_)
            ids = mosfet.ids(vd, vg, vs)
            gm, gds = mosfet.conductances(vd, vg, vs)
            # Current i_ds leaves the drain node and enters the source node.
            if id_ is not None:
                f[id_] += ids
                jac[id_, id_] += gds
                if ig is not None:
                    jac[id_, ig] += gm
                if is_ is not None:
                    jac[id_, is_] -= gm + gds
            if is_ is not None:
                f[is_] -= ids
                jac[is_, is_] += gm + gds
                if id_ is not None:
                    jac[is_, id_] -= gds
                if ig is not None:
                    jac[is_, ig] -= gm

        for k, src in enumerate(circuit.vsources):
            row = n + k
            ip, in_ = self.node_index(src.pos), self.node_index(src.neg)
            branch_current = float(x[row])
            # Branch current flows out of the positive node.
            if ip is not None:
                f[ip] += branch_current
                jac[ip, row] += 1.0
            if in_ is not None:
                f[in_] -= branch_current
                jac[in_, row] -= 1.0
            f[row] = volt(ip) - volt(in_) - src.dc * source_scale
            if ip is not None:
                jac[row, ip] += 1.0
            if in_ is not None:
                jac[row, in_] -= 1.0

        return f, jac


def _newton(
    system: _MNASystem,
    x0: np.ndarray,
    source_scale: float,
    gmin: float,
    max_iterations: int = 150,
    abstol: float = 1e-10,
    reltol: float = 1e-9,
) -> tuple[np.ndarray, int]:
    """Damped Newton iteration; returns the solution and iteration count."""
    x = x0.copy()
    for iteration in range(1, max_iterations + 1):
        f, jac = system.residual_and_jacobian(x, source_scale, gmin)
        try:
            dx = np.linalg.solve(jac, -f)
        except np.linalg.LinAlgError:
            dx = np.linalg.lstsq(jac, -f, rcond=None)[0]
        # Voltage-step damping: scale the whole update so no node moves
        # more than MAX_STEP volts in one iteration.
        v_step = np.max(np.abs(dx[: system.n_nodes])) if system.n_nodes else 0.0
        if v_step > MAX_STEP:
            dx *= MAX_STEP / v_step
        x += dx
        node_residual = (
            float(np.max(np.abs(f[: system.n_nodes]))) if system.n_nodes else 0.0
        )
        if node_residual < abstol and float(np.max(np.abs(dx), initial=0.0)) < reltol:
            return x, iteration
    raise ConvergenceError(
        f"Newton failed after {max_iterations} iterations "
        f"(source_scale={source_scale}, gmin={gmin})"
    )


def _default_guess(system: _MNASystem) -> np.ndarray:
    """Heuristic starting point: source nodes pinned, others at mid-rail."""
    circuit = system.circuit
    supply = max((abs(src.dc) for src in circuit.vsources), default=1.0)
    x = np.full(system.size, 0.0)
    x[: system.n_nodes] = supply / 2.0
    for src in circuit.vsources:
        ip = system.node_index(src.pos)
        in_ = system.node_index(src.neg)
        if ip is not None and in_ is None:
            x[ip] = src.dc
        elif ip is None and in_ is not None:
            x[in_] = -src.dc
    return x


def solve_dc(
    circuit: Circuit,
    initial_guess: dict[str, float] | None = None,
    max_iterations: int = 150,
) -> DCSolution:
    """Solve the DC operating point of ``circuit``.

    Parameters
    ----------
    circuit:
        The netlist to solve.
    initial_guess:
        Optional mapping from node name to starting voltage; unknown nodes
        fall back to the built-in heuristic.
    max_iterations:
        Newton iteration cap per continuation stage.

    Raises
    ------
    ConvergenceError
        If plain Newton, gmin stepping and source stepping all fail.
    """
    system = _MNASystem(circuit)
    x0 = _initial_point(system, initial_guess)
    return _solve_with_continuation(system, x0, max_iterations)


def _initial_point(
    system: _MNASystem, initial_guess: dict[str, float] | None
) -> np.ndarray:
    """Starting vector: heuristic guess overridden by the caller's hints."""
    x0 = _default_guess(system)
    if initial_guess:
        for name, value in initial_guess.items():
            idx = system.node_index(name)
            if idx is not None:
                x0[idx] = value
    return x0


def _solve_with_continuation(
    system: _MNASystem,
    x0: np.ndarray,
    max_iterations: int,
    skip_plain_newton: bool = False,
) -> DCSolution:
    """Run the stacked continuation strategies from ``x0``.

    ``skip_plain_newton`` lets the batched solver hand over candidates whose
    plain-Newton stage already (provably, bit-identically) failed without
    paying for a second identical failure.
    """
    circuit = system.circuit
    total_iterations = 0

    # Strategy 1: plain damped Newton.
    if not skip_plain_newton:
        try:
            x, iters = _newton(system, x0, 1.0, GMIN, max_iterations)
            return _finalize(system, x, iters, "newton")
        except ConvergenceError:
            pass

    # Strategy 2: gmin stepping.
    x = x0.copy()
    try:
        for exponent in range(3, 13):
            gmin = 10.0 ** (-exponent)
            x, iters = _newton(system, x, 1.0, gmin, max_iterations)
            total_iterations += iters
        return _finalize(system, x, total_iterations, "gmin-stepping")
    except ConvergenceError:
        pass

    # Strategy 3: source stepping.
    x = np.zeros(system.size)
    total_iterations = 0
    try:
        for scale in np.linspace(0.1, 1.0, 10):
            x, iters = _newton(system, x, float(scale), GMIN, max_iterations)
            total_iterations += iters
        return _finalize(system, x, total_iterations, "source-stepping")
    except ConvergenceError as exc:
        raise ConvergenceError(
            f"DC solve failed for circuit {circuit.name!r} with all strategies"
        ) from exc


def solve_dc_many(  # checks: hot-path
    circuits: list,
    initial_guess: dict[str, float] | Sequence[dict[str, float] | None] | None = None,
    max_iterations: int = 150,
) -> list:
    """Solve the DC operating point of many structurally similar circuits.

    The bulk path of the batched evaluation backend: circuits that share
    one MNA structure (same nodes and element connectivity -- exactly what
    one topology's ``build`` produces over a population of width vectors,
    including the same population rebuilt at several PVT corners) run the
    plain-Newton stage *together*, with the residual/Jacobian assembly
    vectorized over the candidate axis and one stacked ``np.linalg.solve``
    per iteration.  Candidates of one group may differ in MOSFET widths,
    MOSFET technology parameters (corner-skewed ``vt0``/``kp``/``ut``) and
    voltage-source DC values (corner-scaled supplies); every per-candidate
    floating-point operation is elementwise-identical to the scalar path,
    so the returned solutions are bit-identical to ``solve_dc`` run one
    candidate at a time (the parity tests pin this).

    ``initial_guess`` is either one mapping shared by every candidate or a
    sequence of per-candidate mappings aligned with ``circuits`` (the
    corner path uses this: each corner pins the supply node at its own
    scaled rail).

    Failures are isolated per candidate: a design whose plain Newton stage
    diverges falls back to the scalar continuation strategies, and if those
    fail too its slot holds the :class:`ConvergenceError` instead of a
    :class:`DCSolution` -- one bad design never aborts the batch.

    Returns a list aligned with ``circuits`` whose entries are either
    :class:`DCSolution` or :class:`ConvergenceError`.
    """
    guesses = _per_candidate_guesses(initial_guess, len(circuits))
    results: list = [None] * len(circuits)
    groups: dict = {}
    for index, circuit in enumerate(circuits):
        groups.setdefault(_structure_key(circuit), []).append(index)
    for indices in groups.values():
        batch = [circuits[i] for i in indices]
        batch_guesses = [guesses[i] for i in indices]
        for i, outcome in zip(indices, _solve_batch(batch, batch_guesses, max_iterations), strict=True):
            results[i] = outcome
    return results


def _per_candidate_guesses(initial_guess, count: int) -> list:
    """Normalize the ``initial_guess`` argument to one entry per circuit."""
    if initial_guess is None or isinstance(initial_guess, dict):
        return [initial_guess] * count
    guesses = list(initial_guess)
    if len(guesses) != count:
        raise ValueError(
            f"initial_guess sequence has {len(guesses)} entries for {count} circuits"
        )
    return guesses


def _structure_key(circuit: Circuit):
    """Hashable MNA-structure signature.

    Everything the vectorized assembly cannot express per candidate goes
    into the key; widths, MOSFET technology parameters and voltage-source
    DC values are deliberately *excluded* so one population evaluated at
    several PVT corners still forms a single batch (the corner axis stacks
    into the candidate axis).  Device polarity stays in the key: the
    assembly treats it as a per-slot scalar.
    """
    return (
        tuple(circuit.nodes()),
        tuple((r.node1, r.node2, r.resistance) for r in circuit.resistors),
        tuple((s.pos, s.neg, s.dc) for s in circuit.isources),
        tuple((s.pos, s.neg) for s in circuit.vsources),
        tuple(
            (m.name, m.drain, m.gate, m.source, m.tech.polarity, m.length)
            for m in circuit.mosfets
        ),
    )


class _ArrayTech:
    """Per-candidate technology parameters for one MOSFET slot.

    Duck-types the :class:`~repro.devices.TechParams` fields the EKV DC
    path reads (``vt0``/``n_slope``/``kp``/``ut``/``lambda_l`` plus
    :meth:`spec_current`) with numpy arrays over the candidate axis, so
    :class:`~repro.devices.EKVModel` evaluates a whole corner-mixed batch
    in one broadcasted sweep.  Elementwise ufuncs make each candidate's
    result bit-identical to the scalar-tech evaluation.
    """

    __slots__ = ("vt0", "n_slope", "kp", "ut", "lambda_l")

    def __init__(self, vt0, n_slope, kp, ut, lambda_l):
        self.vt0 = vt0
        self.n_slope = n_slope
        self.kp = kp
        self.ut = ut
        self.lambda_l = lambda_l

    @classmethod
    def from_techs(cls, techs) -> _ArrayTech:
        return cls(
            vt0=np.array([t.vt0 for t in techs]),
            n_slope=np.array([t.n_slope for t in techs]),
            kp=np.array([t.kp for t in techs]),
            ut=np.array([t.ut for t in techs]),
            lambda_l=np.array([t.lambda_l for t in techs]),
        )

    def take(self, indices: np.ndarray) -> _ArrayTech:
        return _ArrayTech(
            self.vt0[indices],
            self.n_slope[indices],
            self.kp[indices],
            self.ut[indices],
            self.lambda_l[indices],
        )

    def spec_current(self, width, length):
        # Mirrors TechParams.spec_current arithmetic without the scalar
        # validation (widths were validated when the circuits were built).
        return 2.0 * self.n_slope * self.kp * (width / length) * self.ut**2


class _BatchStamps:
    """Per-candidate element data of one structure-sharing batch.

    Holds, for each MOSFET slot, the width vector and the evaluation model
    (a plain shared :class:`EKVModel` when every candidate uses the same
    technology parameters -- the pre-corner fast path -- or an
    :class:`_ArrayTech`-backed model when the batch mixes corners), and for
    each voltage source its DC value (scalar when shared, array when
    corner-scaled supplies differ).
    """

    __slots__ = ("slot_widths", "slot_models", "slot_polarity", "vsource_dc")

    def __init__(self, circuits: list):
        first = circuits[0]
        self.slot_widths = [
            np.array([circuit.mosfets[slot].width for circuit in circuits])
            for slot in range(len(first.mosfets))
        ]
        self.slot_models = []
        self.slot_polarity = []
        for slot, mosfet in enumerate(first.mosfets):
            self.slot_polarity.append(mosfet.tech.polarity)
            techs = [circuit.mosfets[slot].tech for circuit in circuits]
            if all(tech == techs[0] for tech in techs[1:]):
                self.slot_models.append(mosfet.model)
            else:
                self.slot_models.append(EKVModel(_ArrayTech.from_techs(techs)))
        self.vsource_dc = []
        for k, source in enumerate(first.vsources):
            values = [circuit.vsources[k].dc for circuit in circuits]
            if all(value == values[0] for value in values[1:]):
                self.vsource_dc.append(source.dc)
            else:
                self.vsource_dc.append(np.array(values))

    def take(self, indices: np.ndarray) -> _BatchStamps:
        subset = _BatchStamps.__new__(_BatchStamps)
        subset.slot_widths = [w[indices] for w in self.slot_widths]
        subset.slot_polarity = self.slot_polarity
        subset.slot_models = [
            EKVModel(model.tech.take(indices))
            if isinstance(model.tech, _ArrayTech)
            else model
            for model in self.slot_models
        ]
        subset.vsource_dc = [
            dc[indices] if isinstance(dc, np.ndarray) else dc for dc in self.vsource_dc
        ]
        return subset


def _solve_batch(circuits: list, guesses: list, max_iterations: int) -> list:
    """Solve one structure-sharing group; see :func:`solve_dc_many`."""
    system = _MNASystem(circuits[0])
    stamps = _BatchStamps(circuits)
    # Per-candidate starting points: the heuristic guess reads the
    # candidate's own source values (corner-scaled supplies differ), so
    # each x0 is exactly what the scalar solve_dc would start from.  The
    # pre-corner common case -- every candidate shares the source values
    # and the caller's guess -- keeps the old one-x0-tiled fast path
    # (bit-identical: _default_guess depends only on sources and indices).
    uniform_sources = all(
        not isinstance(dc, np.ndarray) for dc in stamps.vsource_dc
    )
    first_guess = guesses[0]
    uniform_guesses = all(
        guess is first_guess or guess == first_guess for guess in guesses[1:]
    )
    if uniform_sources and uniform_guesses:
        x0s = np.tile(_initial_point(system, first_guess), (len(circuits), 1))
    else:
        x0s = _initial_points_batch(system, stamps, guesses, len(circuits))
    pattern = _structure_pattern(system)
    xs, iters, converged = _newton_batch(
        system, stamps, x0s, 1.0, GMIN, max_iterations, pattern=pattern
    )
    outcomes: list = []
    for j, circuit in enumerate(circuits):
        # _finalize extracts operating points from the candidate's *own*
        # MOSFET instances, so rebuild the (cheap) per-candidate system.
        if converged[j]:
            outcomes.append(_finalize(_MNASystem(circuit), xs[j], int(iters[j]), "newton"))
            continue
        try:
            outcomes.append(
                _solve_with_continuation(
                    _MNASystem(circuit), x0s[j].copy(), max_iterations, skip_plain_newton=True
                )
            )
        except ConvergenceError as error:
            outcomes.append(error)
    return outcomes


def _initial_points_batch(
    system: _MNASystem, stamps: _BatchStamps, guesses: list, batch: int
) -> np.ndarray:
    """Per-candidate starting points without per-candidate systems.

    Mirrors ``_default_guess`` + ``_initial_point`` arithmetic using the
    group's shared node indexing and the per-candidate source DC values
    already collected in ``stamps`` (each candidate's row is bit-identical
    to what the scalar path computes for that candidate's own circuit).
    """
    n = system.n_nodes
    if stamps.vsource_dc:
        dc_rows = np.stack(
            [
                np.broadcast_to(np.asarray(dc, dtype=float), (batch,))
                for dc in stamps.vsource_dc
            ]
        )
        supply = np.max(np.abs(dc_rows), axis=0)
    else:
        supply = np.ones(batch)
    x0s = np.zeros((batch, system.size))
    x0s[:, :n] = (supply / 2.0)[:, None]
    for k, src in enumerate(system.circuit.vsources):
        ip = system.node_index(src.pos)
        in_ = system.node_index(src.neg)
        dc = np.broadcast_to(np.asarray(stamps.vsource_dc[k], dtype=float), (batch,))
        if ip is not None and in_ is None:
            x0s[:, ip] = dc
        elif ip is None and in_ is not None:
            x0s[:, in_] = -dc
    for j, guess in enumerate(guesses):
        if guess:
            for name, value in guess.items():
                idx = system.node_index(name)
                if idx is not None:
                    x0s[j, idx] = value
    return x0s


def _residual_and_jacobian_batch(
    system: _MNASystem,
    stamps: _BatchStamps,
    x: np.ndarray,
    source_scale: float,
    gmin: float,
    out: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized counterpart of ``_MNASystem.residual_and_jacobian``.

    ``x`` has shape ``(P, size)`` -- one unknown vector per candidate --
    and ``stamps`` carries the per-candidate widths, technology parameters
    and source values.  Every stamp mirrors the scalar assembly operation
    for operation; because numpy ufuncs are elementwise, each candidate's
    row is bit-identical to what the scalar assembly produces for that
    candidate alone.

    ``out`` optionally supplies preallocated ``(f, jac)`` buffers of shape
    ``(P, size)`` / ``(P, size, size)``; they are zero-filled before
    assembly, so reuse across Newton iterations is bit-identical to fresh
    allocation.
    """
    circuit = system.circuit
    n = system.n_nodes
    batch = x.shape[0]
    if out is None:
        f = np.zeros((batch, system.size))
        jac = np.zeros((batch, system.size, system.size))
    else:
        f, jac = out
        f[:] = 0.0
        jac[:] = 0.0

    def volt(idx: int | None):
        return 0.0 if idx is None else x[:, idx]

    # gmin shunts keep floating subcircuits well-conditioned.
    if n:
        f[:, :n] += gmin * x[:, :n]
        diag = np.arange(n)
        jac[:, diag, diag] += gmin

    for res in circuit.resistors:
        i1, i2 = system.node_index(res.node1), system.node_index(res.node2)
        g = res.conductance
        current = g * (volt(i1) - volt(i2))
        if i1 is not None:
            f[:, i1] += current
            jac[:, i1, i1] += g
            if i2 is not None:
                jac[:, i1, i2] -= g
        if i2 is not None:
            f[:, i2] -= current
            jac[:, i2, i2] += g
            if i1 is not None:
                jac[:, i2, i1] -= g

    for src in circuit.isources:
        ip, in_ = system.node_index(src.pos), system.node_index(src.neg)
        value = src.dc * source_scale
        if ip is not None:
            f[:, ip] += value
        if in_ is not None:
            f[:, in_] -= value

    for slot, mosfet in enumerate(circuit.mosfets):
        id_, ig, is_ = (
            system.node_index(mosfet.drain),
            system.node_index(mosfet.gate),
            system.node_index(mosfet.source),
        )
        vd, vg, vs = volt(id_), volt(ig), volt(is_)
        widths = stamps.slot_widths[slot]
        model = stamps.slot_models[slot]
        pol = stamps.slot_polarity[slot]
        # Mirrors MOSFET.ids / MOSFET.conductances with width (and, for
        # corner-mixed batches, tech-parameter) vectors.
        vgs = pol * (vg - vs)
        vds = pol * (vd - vs)
        ids = pol * model.drain_current(vgs, vds, widths, mosfet.length)
        gm = model.transconductance(vgs, vds, widths, mosfet.length)
        gds = model.output_conductance(vgs, vds, widths, mosfet.length)
        # Current i_ds leaves the drain node and enters the source node.
        if id_ is not None:
            f[:, id_] += ids
            jac[:, id_, id_] += gds
            if ig is not None:
                jac[:, id_, ig] += gm
            if is_ is not None:
                jac[:, id_, is_] -= gm + gds
        if is_ is not None:
            f[:, is_] -= ids
            jac[:, is_, is_] += gm + gds
            if id_ is not None:
                jac[:, is_, id_] -= gds
            if ig is not None:
                jac[:, is_, ig] -= gm

    for k, src in enumerate(circuit.vsources):
        row = n + k
        ip, in_ = system.node_index(src.pos), system.node_index(src.neg)
        branch_current = x[:, row]
        # Branch current flows out of the positive node.
        if ip is not None:
            f[:, ip] += branch_current
            jac[:, ip, row] += 1.0
        if in_ is not None:
            f[:, in_] -= branch_current
            jac[:, in_, row] -= 1.0
        # ``dc`` is a scalar when the batch shares the value, an array over
        # candidates when supplies are corner-scaled.
        f[:, row] = volt(ip) - volt(in_) - stamps.vsource_dc[k] * source_scale
        if ip is not None:
            jac[:, row, ip] += 1.0
        if in_ is not None:
            jac[:, row, in_] -= 1.0

    return f, jac


def _jacobian_coords(
    system: _MNASystem, cap_pairs: Sequence[tuple[int | None, int | None]] = ()
) -> tuple[np.ndarray, np.ndarray]:
    """Structural ``(row, col)`` coordinates of every Jacobian entry.

    The symbolic input of :func:`repro.spice.linsolve.factorize_structure`:
    walks the same element lists as the assembly and records which matrix
    entries any iterate can touch — a superset of every single iterate's
    numeric nonzeros, shared by the whole structure-key group (all
    candidates, Newton iterations and, with ``cap_pairs``, every
    transient time step).  Duplicates are fine; the pattern deduplicates.
    """
    n = system.n_nodes
    rows: list[int] = list(range(n))  # gmin shunt diagonal
    cols: list[int] = list(range(n))

    def entry(r: int | None, c: int | None) -> None:
        if r is not None and c is not None:
            rows.append(r)
            cols.append(c)

    def admittance(i1: int | None, i2: int | None) -> None:
        entry(i1, i1)
        entry(i1, i2)
        entry(i2, i1)
        entry(i2, i2)

    circuit = system.circuit
    for res in circuit.resistors:
        admittance(system.node_index(res.node1), system.node_index(res.node2))
    for i1, i2 in cap_pairs:
        admittance(i1, i2)
    for mosfet in circuit.mosfets:
        id_, ig, is_ = (
            system.node_index(mosfet.drain),
            system.node_index(mosfet.gate),
            system.node_index(mosfet.source),
        )
        for r in (id_, is_):
            for c in (id_, ig, is_):
                entry(r, c)
    for k, src in enumerate(circuit.vsources):
        row = n + k
        ip, in_ = system.node_index(src.pos), system.node_index(src.neg)
        entry(ip, row)
        entry(row, ip)
        entry(in_, row)
        entry(row, in_)
    return np.asarray(rows, dtype=np.intp), np.asarray(cols, dtype=np.intp)


def _structure_pattern(
    system: _MNASystem, cap_pairs: Sequence[tuple[int | None, int | None]] = ()
) -> linsolve.StructurePattern:
    """Symbolic solve pattern of one structure-key group (built once)."""
    rows, cols = _jacobian_coords(system, cap_pairs)
    return linsolve.factorize_structure(rows, cols, system.size)


def _solve_newton_steps(  # checks: hot-path
    jac: np.ndarray,
    f: np.ndarray,
    pattern: linsolve.StructurePattern | None = None,
) -> np.ndarray:
    """Stacked ``J dx = -f`` through the pluggable linsolve layer.

    The dense backend reproduces the historical arithmetic bit for bit
    (one stacked ``np.linalg.solve`` with the scalar path's per-item
    lstsq fallback); structures at or above the sparse threshold ride
    SuperLU via the group's precomputed symbolic ``pattern``.
    """
    return linsolve.solve_stacked(jac, -f, pattern=pattern)


def _newton_batch(  # checks: hot-path
    system: _MNASystem,
    stamps: _BatchStamps,
    x0s: np.ndarray,
    source_scale: float,
    gmin: float,
    max_iterations: int = 150,
    abstol: float = 1e-10,
    reltol: float = 1e-9,
    pattern: linsolve.StructurePattern | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Damped Newton over one candidate group; per-candidate convergence.

    ``x0s`` has shape ``(batch, size)`` -- one starting point per candidate.
    Candidates freeze the moment their own convergence criterion fires, so
    each trajectory reproduces the scalar ``_newton`` iteration for that
    candidate exactly.  Returns ``(solutions, iterations, converged)``.

    ``pattern`` is the group's symbolic solve structure (built once by
    the caller); every iteration's stacked solve reuses it.
    """
    n = system.n_nodes
    batch = x0s.shape[0]
    x = np.array(x0s, copy=True)
    solutions = np.array(x, copy=True)
    iterations = np.zeros(batch, dtype=int)
    converged = np.zeros(batch, dtype=bool)
    active = np.arange(batch)
    # Preallocated per-iteration workspace.  Assembly zero-fills the
    # sliced views, a gathered stamp subset carries the same values, and
    # the all-zero residual placeholder never changes -- so buffer reuse
    # is bit-identical to the former fresh allocation every iteration.
    active_stamps = stamps
    f_buf = np.zeros((batch, system.size))
    jac_buf = np.zeros((batch, system.size, system.size))
    zero_residual = np.zeros(batch)

    for iteration in range(1, max_iterations + 1):
        m = active.size
        f, jac = _residual_and_jacobian_batch(
            system, active_stamps, x[active], source_scale, gmin,
            out=(f_buf[:m], jac_buf[:m]),
        )
        dx = _solve_newton_steps(jac, f, pattern)
        # Voltage-step damping: scale each candidate's update so no node
        # moves more than MAX_STEP volts in one iteration.
        if n:
            v_step = np.max(np.abs(dx[:, :n]), axis=1)
            over = v_step > MAX_STEP
            if np.any(over):
                dx[over] *= (MAX_STEP / v_step[over])[:, None]
        x[active] += dx
        node_residual = (
            np.max(np.abs(f[:, :n]), axis=1) if n else zero_residual[:m]
        )
        done = (node_residual < abstol) & (np.max(np.abs(dx), axis=1) < reltol)
        if np.any(done):
            newly = active[done]
            solutions[newly] = x[newly]
            iterations[newly] = iteration
            converged[newly] = True
            active = active[~done]
            if active.size == 0:
                break
            # Re-gather stamps only when the active set shrinks.
            active_stamps = stamps.take(active)
    return solutions, iterations, converged


def _finalize(system: _MNASystem, x: np.ndarray, iterations: int, strategy: str) -> DCSolution:
    voltages, currents = system.unpack(x)

    def volt(node: str) -> float:
        return 0.0 if node == GROUND else voltages[node]

    ops = {
        mosfet.name: mosfet.operating_point(
            volt(mosfet.drain), volt(mosfet.gate), volt(mosfet.source)
        )
        for mosfet in system.circuit.mosfets
    }
    return DCSolution(
        circuit=system.circuit,
        node_voltages=voltages,
        source_currents=currents,
        iterations=iterations,
        strategy=strategy,
        operating_points=ops,
    )
