"""Extraction of the paper's three performance metrics from an AC response.

The paper evaluates OTAs on gain, 3 dB bandwidth, and unity-gain frequency
(UGF).  These are extracted from the magnitude response on the log-frequency
grid with log-log interpolation at the crossings, which is accurate for the
single- and two-pole responses of the studied topologies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .ac import ACResult

__all__ = ["PerformanceMetrics", "extract_metrics", "crossing_frequency"]


@dataclass(frozen=True)
class PerformanceMetrics:
    """Gain / bandwidth / UGF triple, the paper's specification vector.

    Attributes
    ----------
    gain_db:
        Low-frequency (DC) gain in dB.
    f3db_hz:
        Frequency where the magnitude drops 3 dB below the DC gain, in Hz
        (``nan`` if the response never drops within the analyzed band).
    ugf_hz:
        Unity-gain frequency in Hz (``nan`` if the gain never crosses 0 dB
        within the analyzed band, e.g. for sub-unity-gain designs).
    """

    gain_db: float
    f3db_hz: float
    ugf_hz: float

    def as_array(self) -> np.ndarray:
        return np.array([self.gain_db, self.f3db_hz, self.ugf_hz])

    @property
    def gain_linear(self) -> float:
        return 10.0 ** (self.gain_db / 20.0)

    def is_valid(self) -> bool:
        """True when all three metrics were resolvable on the grid."""
        return all(math.isfinite(v) for v in (self.gain_db, self.f3db_hz, self.ugf_hz))


def crossing_frequency(
    frequencies: np.ndarray, magnitude_db: np.ndarray, level_db: float
) -> float:
    """First downward crossing of ``level_db``, log-log interpolated (Hz).

    Returns ``nan`` when the response never crosses the level from above
    within the grid.
    """
    freqs = np.asarray(frequencies, dtype=float)
    mags = np.asarray(magnitude_db, dtype=float)
    if freqs.shape != mags.shape or freqs.ndim != 1:
        raise ValueError("frequencies and magnitude_db must be 1-D and equal length")
    # Vectorized sign-change scan (this runs once per metric per candidate
    # on the Stage IV hot path): a crossing is a grid interval whose left
    # edge is at-or-above the level and whose right edge is below.
    above = mags >= level_db
    crossings = np.nonzero(above[:-1] & ~above[1:])[0]
    if crossings.size == 0:
        return float("nan")
    i = int(crossings[0])
    # Linear interpolation in (log f, dB) space.
    log_f1, log_f2 = np.log10(freqs[i]), np.log10(freqs[i + 1])
    m1, m2 = mags[i], mags[i + 1]
    if m1 == m2:
        return float(freqs[i])
    frac = (m1 - level_db) / (m1 - m2)
    return float(10.0 ** (log_f1 + frac * (log_f2 - log_f1)))


def extract_metrics(result: ACResult, output_node: str) -> PerformanceMetrics:
    """Compute gain, f3dB and UGF of ``output_node``'s response."""
    magnitude_db = result.magnitude_db(output_node)
    gain_db = float(magnitude_db[0])
    f3db = crossing_frequency(result.frequencies, magnitude_db, gain_db - 3.0)
    ugf = crossing_frequency(result.frequencies, magnitude_db, 0.0)
    return PerformanceMetrics(gain_db=gain_db, f3db_hz=f3db, ugf_hz=ugf)
