"""Extraction of performance metrics from AC and transient responses.

The paper evaluates OTAs on gain, 3 dB bandwidth, and unity-gain frequency
(UGF).  These are extracted from the magnitude response on the log-frequency
grid with log-log interpolation at the crossings, which is accurate for the
single- and two-pole responses of the studied topologies.

The transient extension adds the three time-domain metrics real OTA
sizing flows specify on the step response (:mod:`repro.spice.tran`):
slew rate, settling time into a tolerance band, and overshoot.  They
live as *optional* fields on :class:`PerformanceMetrics` -- ``None``
whenever no transient analysis ran, so the AC-only flow's metric objects
(equality, arrays, JSON) stay bit-identical to the pre-transient stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from .ac import ACResult

__all__ = [
    "PerformanceMetrics",
    "extract_metrics",
    "extract_tran_metrics",
    "crossing_frequency",
    "TRAN_METRIC_NAMES",
    "TRAN_METRIC_DIRECTIONS",
]

#: Spec direction of each transient metric: ``"min"`` targets are floors
#: (slew rate -- more is better), ``"max"`` targets are ceilings
#: (settling time, overshoot -- less is better).  The single source of
#: truth for every layer that judges or ranks transient targets.
TRAN_METRIC_DIRECTIONS = {
    "slew_v_per_s": "min",
    "settling_time_s": "max",
    "overshoot_frac": "max",
}

#: The transient metric field names, in reporting order.
TRAN_METRIC_NAMES = tuple(TRAN_METRIC_DIRECTIONS)


@dataclass(frozen=True)
class PerformanceMetrics:
    """Gain / bandwidth / UGF triple, the paper's specification vector,
    optionally extended with step-response (transient) metrics.

    Attributes
    ----------
    gain_db:
        Low-frequency (DC) gain in dB.
    f3db_hz:
        Frequency where the magnitude drops 3 dB below the DC gain, in Hz
        (``nan`` if the response never drops within the analyzed band).
    ugf_hz:
        Unity-gain frequency in Hz (``nan`` if the gain never crosses 0 dB
        within the analyzed band, e.g. for sub-unity-gain designs).
    slew_v_per_s:
        Peak output slew rate of the step response in V/s (``None`` when
        no transient analysis ran).
    settling_time_s:
        Time after which the output stays inside the settling tolerance
        band around its final value, in s (``None`` without transient).
    overshoot_frac:
        Peak excursion beyond the final value as a fraction of the output
        step (``None`` without transient; 0.0 for monotone responses).
    """

    gain_db: float
    f3db_hz: float
    ugf_hz: float
    slew_v_per_s: float | None = None
    settling_time_s: float | None = None
    overshoot_frac: float | None = None

    def as_array(self) -> np.ndarray:
        """The AC triple as an array (shape pinned by the parity tests;
        transient fields are reported through :meth:`tran_as_array`)."""
        return np.array([self.gain_db, self.f3db_hz, self.ugf_hz])

    def tran_as_array(self) -> np.ndarray:
        """The transient triple as an array (``None`` maps to ``nan``)."""
        return np.array(
            [
                float("nan") if value is None else value
                for value in (self.slew_v_per_s, self.settling_time_s, self.overshoot_frac)
            ]
        )

    @property
    def has_tran(self) -> bool:
        """True when any transient metric was measured."""
        return any(
            getattr(self, name) is not None for name in TRAN_METRIC_NAMES
        )

    @property
    def gain_linear(self) -> float:
        return 10.0 ** (self.gain_db / 20.0)

    def is_valid(self) -> bool:
        """True when all three AC metrics were resolvable on the grid."""
        return all(math.isfinite(v) for v in (self.gain_db, self.f3db_hz, self.ugf_hz))


def crossing_frequency(
    frequencies: np.ndarray, magnitude_db: np.ndarray, level_db: float
) -> float:
    """First downward crossing of ``level_db``, log-log interpolated (Hz).

    Returns ``nan`` when the response never crosses the level from above
    within the grid.
    """
    freqs = np.asarray(frequencies, dtype=float)
    mags = np.asarray(magnitude_db, dtype=float)
    if freqs.shape != mags.shape or freqs.ndim != 1:
        raise ValueError("frequencies and magnitude_db must be 1-D and equal length")
    # Vectorized sign-change scan (this runs once per metric per candidate
    # on the Stage IV hot path): a crossing is a grid interval whose left
    # edge is at-or-above the level and whose right edge is below, OR one
    # that lands grid-exactly on the level from strictly above (the second
    # term keeps a crossing whose exact hit is the *final* sample, which
    # the right-edge-below test alone misses).
    down = ((mags[:-1] >= level_db) & (mags[1:] < level_db)) | (
        (mags[:-1] > level_db) & (mags[1:] == level_db)
    )
    crossings = np.nonzero(down)[0]
    if crossings.size == 0:
        return float("nan")
    i = int(crossings[0])
    # Linear interpolation in (log f, dB) space.  Both predicate branches
    # guarantee m1 > m2, so the interpolation is always well-defined: an
    # exact hit on the left edge gives frac = 0 (returns freqs[i]), one on
    # the right edge gives frac = 1 (returns freqs[i + 1]).
    log_f1, log_f2 = np.log10(freqs[i]), np.log10(freqs[i + 1])
    m1, m2 = mags[i], mags[i + 1]
    frac = (m1 - level_db) / (m1 - m2)
    return float(10.0 ** (log_f1 + frac * (log_f2 - log_f1)))


def extract_metrics(result: ACResult, output_node: str) -> PerformanceMetrics:
    """Compute gain, f3dB and UGF of ``output_node``'s response."""
    magnitude_db = result.magnitude_db(output_node)
    gain_db = float(magnitude_db[0])
    f3db = crossing_frequency(result.frequencies, magnitude_db, gain_db - 3.0)
    ugf = crossing_frequency(result.frequencies, magnitude_db, 0.0)
    return PerformanceMetrics(gain_db=gain_db, f3db_hz=f3db, ugf_hz=ugf)


def extract_tran_metrics(
    tran,
    output_node: str,
    base: PerformanceMetrics | None = None,
    settle_tol: float = 0.02,
) -> PerformanceMetrics:
    """Step-response metrics of ``output_node`` from a transient result.

    Definitions (``v`` is the output waveform, ``v0 = v(0)`` the pre-step
    value, ``vf`` the final sample, ``delta = vf - v0`` the output step):

    * **slew rate**: the peak ``|dv/dt|`` over the waveform's finite
      differences in V/s, *excluding* the first interval: the input step
      at ``t = 0+`` feeds through the compensation/load capacitances as a
      discontinuity, so the first finite difference measures the input
      edge (damped by the backward-Euler startup step), not the
      amplifier.  On the golden designs it inflates slew by 1--3 %;
    * **settling time**: the earliest time from which every later sample
      stays within ``settle_tol * |delta|`` of ``vf`` (0.0 when the
      response never leaves the band, including the degenerate
      ``delta = 0`` case);
    * **overshoot**: the peak excursion *beyond* ``vf`` in the direction
      of the step, as a fraction of ``|delta|`` (0.0 for monotone
      responses).

    A truncated simulation (output still moving at ``t_stop``) settles
    against its own final sample, which conservatively reports a settling
    time near ``t_stop``.

    When ``base`` is given, its AC metrics are carried over and the
    transient fields are filled in; otherwise the AC fields are ``nan``.
    """
    if settle_tol <= 0:
        raise ValueError(f"settle_tol must be positive, got {settle_tol}")
    v = np.asarray(tran.voltage(output_node), dtype=float)
    times = np.asarray(tran.times, dtype=float)
    rates = np.abs(np.diff(v) / np.diff(times))
    # Skip the t = 0+ feedthrough interval (see the docstring) whenever a
    # later interval exists; a two-sample waveform keeps its only rate.
    slew = float(np.max(rates[1:])) if rates.size > 1 else float(np.max(rates))
    v_final = float(v[-1])
    delta = v_final - float(v[0])
    band = settle_tol * abs(delta)
    outside = np.nonzero(np.abs(v - v_final) > band)[0]
    settling = float(times[outside[-1] + 1]) if outside.size else 0.0
    if delta == 0.0:
        overshoot = 0.0
    elif delta > 0.0:
        overshoot = max(0.0, (float(np.max(v)) - v_final) / abs(delta))
    else:
        overshoot = max(0.0, (v_final - float(np.min(v))) / abs(delta))
    if base is None:
        base = PerformanceMetrics(float("nan"), float("nan"), float("nan"))
    return replace(
        base,
        slew_v_per_s=slew,
        settling_time_s=settling,
        overshoot_frac=overshoot,
    )
