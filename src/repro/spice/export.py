"""Export a :class:`~repro.spice.netlist.Circuit` as a SPICE deck.

The sizing flow's end product is "a fully sized netlist" (Fig. 3); this
module writes it in standard SPICE card format so the design can be handed
to any external simulator or layout tool.  The exporter emits:

* ``.param``-free flat cards (one element per line),
* MOSFETs as 4-terminal ``M<name>`` cards with bulk tied to source and
  explicit ``W=``/``L=``,
* a ``.model`` card per referenced device type (level-1 placeholders
  carrying the EKV parameter set as a comment, since the EKV model used
  here has no exact SPICE level),
* DC values for every independent source (AC magnitudes as ``AC <mag>``).

A tiny parser (:func:`parse_netlist`) reads the same dialect back, which
makes round-trip tests possible and gives users a text-file entry point to
the library.
"""

from __future__ import annotations


from ..devices import NMOS_65NM, PMOS_65NM, Corner, TechParams
from .netlist import Circuit

__all__ = ["to_spice", "parse_netlist"]

_TECH_BY_MODEL_NAME = {
    NMOS_65NM.name: NMOS_65NM,
    PMOS_65NM.name: PMOS_65NM,
}

#: Header comment prefix recording the PVT corner a deck was exported at.
_CORNER_PREFIX = "* corner:"


def to_spice(circuit: Circuit, title: str = "") -> str:
    """Render ``circuit`` as a SPICE deck string.

    Corner-built circuits (``circuit.corner`` set by
    ``OTATopology.build_circuit``) carry their PVT context in a structured
    ``* corner: ...`` header line, so an exported worst-case deck is
    self-describing; :func:`parse_netlist` restores the annotation.
    """
    lines = [f"* {title or circuit.name}"]
    if circuit.corner is not None:
        lines.append(f"{_CORNER_PREFIX} {circuit.corner.label()}")
    models: dict[str, TechParams] = {}
    for device in circuit.mosfets:
        models[device.tech.name] = device.tech
        lines.append(
            f"M{device.name} {device.drain} {device.gate} {device.source} "
            f"{device.source} {device.tech.name} W={device.width:.6g} L={device.length:.6g}"
        )
    for res in circuit.resistors:
        lines.append(f"R{res.name} {res.node1} {res.node2} {res.resistance:.6g}")
    for cap in circuit.capacitors:
        lines.append(f"C{cap.name} {cap.node1} {cap.node2} {cap.capacitance:.6g}")
    for src in circuit.vsources:
        card = f"V{src.name} {src.pos} {src.neg} DC {src.dc:.6g}"
        if src.ac:
            card += f" AC {src.ac:.6g}"
        lines.append(card)
    for src in circuit.isources:
        card = f"I{src.name} {src.pos} {src.neg} DC {src.dc:.6g}"
        if src.ac:
            card += f" AC {src.ac:.6g}"
        lines.append(card)
    for name, tech in sorted(models.items()):
        kind = "NMOS" if tech.is_nmos else "PMOS"
        lines.append(
            f".model {name} {kind} "
            f"* EKV: vt0={tech.vt0} n={tech.n_slope} kp={tech.kp} lambda_l={tech.lambda_l}"
        )
    lines.append(".end")
    return "\n".join(lines) + "\n"


def parse_netlist(text: str, name: str = "imported") -> Circuit:
    """Parse the dialect written by :func:`to_spice` back into a Circuit.

    Supported cards: ``M`` (4-terminal MOSFET with ``W=``/``L=``), ``R``,
    ``C``, ``V``/``I`` (``DC <v> [AC <m>]``); comments (``*``) and ``.``
    directives other than ``.model`` references are skipped, except the
    structured ``* corner: ...`` header, which restores the circuit's PVT
    corner annotation.  Source cards carry their corner-scaled values in
    the deck itself, but MOSFET cards reference the *nominal* model name,
    so the restored corner is re-applied to every device's technology
    parameters — the parsed circuit simulates at the annotated corner,
    bit-identical to the exported one.  The header is located in a
    pre-pass, so it applies wherever it appears in the deck; comments
    that merely start with the prefix but don't match the structured
    format stay ordinary comments.
    """
    circuit = Circuit(name=name)
    lines = [raw.strip() for raw in text.splitlines()]
    for line in lines:
        if line.startswith(_CORNER_PREFIX):
            corner = _parse_corner(line[len(_CORNER_PREFIX):])
            if corner is not None:
                circuit.corner = corner
                break
    for line in lines:
        if not line or line.startswith("*") or line.lower().startswith((".end", ".model")):
            continue
        fields = line.split()
        card, label = fields[0][0].upper(), fields[0][1:]
        if card == "M":
            drain, gate, source, _bulk, model_name = fields[1:6]
            tech = _TECH_BY_MODEL_NAME.get(model_name)
            if tech is None:
                raise ValueError(f"unknown device model {model_name!r}")
            if circuit.corner is not None:
                # The deck names the nominal model; the corner header
                # carries the skew — reconstruct the skewed parameters.
                tech = circuit.corner.apply_tech(tech)
            geometry = {
                key.upper(): float(value)
                for key, _, value in (field.partition("=") for field in fields[6:])
                if value
            }
            circuit.add_mosfet(label, drain, gate, source, tech, geometry["W"], geometry["L"])
        elif card == "R":
            circuit.add_resistor(label, fields[1], fields[2], float(fields[3]))
        elif card == "C":
            circuit.add_capacitor(label, fields[1], fields[2], float(fields[3]))
        elif card in ("V", "I"):
            dc = 0.0
            ac = 0.0
            tokens = [f.upper() for f in fields[3:]]
            values = fields[3:]
            for i, token in enumerate(tokens):
                if token == "DC" and i + 1 < len(values):
                    dc = float(values[i + 1])
                elif token == "AC" and i + 1 < len(values):
                    ac = float(values[i + 1])
            if card == "V":
                circuit.add_vsource(label, fields[1], fields[2], dc, ac)
            else:
                circuit.add_isource(label, fields[1], fields[2], dc, ac)
        else:
            raise ValueError(f"unsupported SPICE card: {line!r}")
    return circuit


_CORNER_HEADER_KEYS = frozenset(
    {"vt0_scale", "kp_scale", "vdd_scale", "temperature_k"}
)


def _parse_corner(text: str):
    """Parse the ``Corner.label()`` format back into a :class:`Corner`.

    Returns ``None`` for anything that is not exactly the writer's
    ``<name> vt0_scale=... kp_scale=... vdd_scale=... temperature_k=...``
    shape, so ordinary comments that merely start with the corner prefix
    stay ordinary comments instead of raising or mis-annotating.
    """
    fields = text.split()
    if len(fields) != 1 + len(_CORNER_HEADER_KEYS):
        return None
    values: dict[str, float] = {}
    for field in fields[1:]:
        key, _, value = field.partition("=")
        if key not in _CORNER_HEADER_KEYS or key in values:
            return None
        try:
            values[key] = float(value)
        except ValueError:
            return None
    try:
        return Corner(name=fields[0], **values)
    except ValueError:
        return None
