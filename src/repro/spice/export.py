"""Export a :class:`~repro.spice.netlist.Circuit` as a SPICE deck.

The sizing flow's end product is "a fully sized netlist" (Fig. 3); this
module writes it in standard SPICE card format so the design can be handed
to any external simulator or layout tool.  The exporter emits:

* ``.param``-free flat cards (one element per line),
* MOSFETs as 4-terminal ``M<name>`` cards with bulk tied to source and
  explicit ``W=``/``L=``,
* a ``.model`` card per referenced device type (level-1 placeholders
  carrying the EKV parameter set as a comment, since the EKV model used
  here has no exact SPICE level),
* DC values for every independent source (AC magnitudes as ``AC <mag>``).

A tiny parser (:func:`parse_netlist`) reads the same dialect back, which
makes round-trip tests possible and gives users a text-file entry point to
the library.
"""

from __future__ import annotations


from ..devices import NMOS_65NM, PMOS_65NM, TechParams
from .netlist import Circuit

__all__ = ["to_spice", "parse_netlist"]

_TECH_BY_MODEL_NAME = {
    NMOS_65NM.name: NMOS_65NM,
    PMOS_65NM.name: PMOS_65NM,
}


def to_spice(circuit: Circuit, title: str = "") -> str:
    """Render ``circuit`` as a SPICE deck string."""
    lines = [f"* {title or circuit.name}"]
    models: dict[str, TechParams] = {}
    for device in circuit.mosfets:
        models[device.tech.name] = device.tech
        lines.append(
            f"M{device.name} {device.drain} {device.gate} {device.source} "
            f"{device.source} {device.tech.name} W={device.width:.6g} L={device.length:.6g}"
        )
    for res in circuit.resistors:
        lines.append(f"R{res.name} {res.node1} {res.node2} {res.resistance:.6g}")
    for cap in circuit.capacitors:
        lines.append(f"C{cap.name} {cap.node1} {cap.node2} {cap.capacitance:.6g}")
    for src in circuit.vsources:
        card = f"V{src.name} {src.pos} {src.neg} DC {src.dc:.6g}"
        if src.ac:
            card += f" AC {src.ac:.6g}"
        lines.append(card)
    for src in circuit.isources:
        card = f"I{src.name} {src.pos} {src.neg} DC {src.dc:.6g}"
        if src.ac:
            card += f" AC {src.ac:.6g}"
        lines.append(card)
    for name, tech in sorted(models.items()):
        kind = "NMOS" if tech.is_nmos else "PMOS"
        lines.append(
            f".model {name} {kind} "
            f"* EKV: vt0={tech.vt0} n={tech.n_slope} kp={tech.kp} lambda_l={tech.lambda_l}"
        )
    lines.append(".end")
    return "\n".join(lines) + "\n"


def parse_netlist(text: str, name: str = "imported") -> Circuit:
    """Parse the dialect written by :func:`to_spice` back into a Circuit.

    Supported cards: ``M`` (4-terminal MOSFET with ``W=``/``L=``), ``R``,
    ``C``, ``V``/``I`` (``DC <v> [AC <m>]``); comments (``*``) and ``.``
    directives other than ``.model`` references are skipped.
    """
    circuit = Circuit(name=name)
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("*") or line.lower().startswith((".end", ".model")):
            continue
        fields = line.split()
        card, label = fields[0][0].upper(), fields[0][1:]
        if card == "M":
            drain, gate, source, _bulk, model_name = fields[1:6]
            tech = _TECH_BY_MODEL_NAME.get(model_name)
            if tech is None:
                raise ValueError(f"unknown device model {model_name!r}")
            geometry = {
                key.upper(): float(value)
                for key, _, value in (field.partition("=") for field in fields[6:])
                if value
            }
            circuit.add_mosfet(label, drain, gate, source, tech, geometry["W"], geometry["L"])
        elif card == "R":
            circuit.add_resistor(label, fields[1], fields[2], float(fields[3]))
        elif card == "C":
            circuit.add_capacitor(label, fields[1], fields[2], float(fields[3]))
        elif card in ("V", "I"):
            dc = 0.0
            ac = 0.0
            tokens = [f.upper() for f in fields[3:]]
            values = fields[3:]
            for i, token in enumerate(tokens):
                if token == "DC" and i + 1 < len(values):
                    dc = float(values[i + 1])
                elif token == "AC" and i + 1 < len(values):
                    ac = float(values[i + 1])
            if card == "V":
                circuit.add_vsource(label, fields[1], fields[2], dc, ac)
            else:
                circuit.add_isource(label, fields[1], fields[2], dc, ac)
        else:
            raise ValueError(f"unsupported SPICE card: {line!r}")
    return circuit
