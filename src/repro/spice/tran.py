"""Nonlinear transient analysis (step response) on the MNA system.

This is the time-domain leg of the SPICE substrate: the serving stack's
slew-rate / settling-time / overshoot specs are measured on the step
response computed here.  The formulation reuses the DC machinery of
:mod:`repro.spice.dc` wholesale:

* the resistive part of the residual/Jacobian at every time point is the
  *same* EKV MNA assembly the DC solver stamps
  (:meth:`repro.spice.dc._MNASystem.residual_and_jacobian` in the scalar
  path, :func:`repro.spice.dc._residual_and_jacobian_batch` in the
  batched one), so device physics exists in exactly one place;
* capacitive elements -- explicit capacitors plus each MOSFET's
  operating-point ``Cgs``/``Cds`` (the same linearization the AC analysis
  stamps) -- are discretized with backward-Euler or trapezoidal
  companion models and solved with damped Newton at every time step.

The testbench is a *step*: the simulation starts from a converged DC
operating point (capacitor currents are zero -- a consistent initial
condition) and at ``t = 0+`` every independent source jumps by
``step_amplitude`` times its AC magnitude, so the transient excites
exactly the port the AC analysis drives (for the OTA testbenches: a
differential input step of ``step_amplitude`` volts).

:func:`run_tran_many` is the bulk path: solutions whose (stepped)
circuits share one MNA structure -- one topology's population of width
vectors, including the same population rebuilt at several PVT corners
(the corner-skewed technology parameters ride the
:class:`~repro.spice.dc._ArrayTech` path) -- integrate *together*, with
the per-step Newton iterations vectorized over the candidate axis and
one stacked ``np.linalg.solve`` per iteration.  Every per-candidate
floating-point operation is elementwise-identical to the scalar path, so
the returned waveforms are bit-identical to :func:`run_tran` run one
candidate at a time (pinned by the parity tests), and failures are
isolated per candidate: a design whose Newton diverges at some time step
holds a :class:`~repro.spice.dc.ConvergenceError` in its slot instead of
aborting the batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import linsolve
from .dc import (
    GMIN,
    MAX_STEP,
    ConvergenceError,
    DCSolution,
    _BatchStamps,
    _MNASystem,
    _residual_and_jacobian_batch,
    _solve_newton_steps,
    _structure_key,
    _structure_pattern,
)
from .netlist import GROUND, Circuit

__all__ = ["TranResult", "run_tran", "run_tran_many", "step_sources"]

#: Supported integration methods: backward-Euler and trapezoidal.
METHODS = ("be", "trap")

#: Newton iteration cap per time step (steps are small, so this is ample).
MAX_TRAN_ITERATIONS = 50

#: Default differential step amplitude (V).  Small enough that the OTA
#: stays near its linearization (settling is well defined), large enough
#: that the output excursion dominates float noise.
DEFAULT_STEP_AMPLITUDE = 1e-3


@dataclass
class TranResult:
    """Step response of every node voltage.

    ``waveforms`` has shape ``(n_times, n_nodes)`` in the order of
    ``node_names``; ground is implicit (always 0).  ``times[0]`` is 0 and
    holds the pre-step DC operating point.
    """

    times: np.ndarray
    node_names: list[str]
    waveforms: np.ndarray
    method: str
    step_amplitude: float
    newton_iterations: int

    def __post_init__(self) -> None:
        self._node_index = {name: i for i, name in enumerate(self.node_names)}

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of ``node`` versus time."""
        if node == GROUND:
            return np.zeros_like(self.times)
        try:
            idx = self._node_index[node]
        except KeyError:
            raise ValueError(f"{node!r} is not a node of this transient result") from None
        return self.waveforms[:, idx]


def step_sources(circuit: Circuit, amplitude: float) -> Circuit:
    """The post-step netlist: every source jumps by ``amplitude * ac``.

    Supplies and bias sources carry ``ac = 0`` and stay put; the stimulus
    sources (the OTA testbenches drive ``ac = +-0.5`` on the differential
    inputs) step by their share of the amplitude.  The copy leaves the
    original circuit untouched.
    """
    stepped = circuit.copy()
    for source in stepped.vsources:
        source.dc = source.dc + amplitude * source.ac
    for source in stepped.isources:
        source.dc = source.dc + amplitude * source.ac
    return stepped


# ----------------------------------------------------------------------
# Capacitive elements (companion-model data)
# ----------------------------------------------------------------------
def _cap_elements(system: _MNASystem, solution: DCSolution) -> list:
    """Capacitive two-terminal elements as ``(i1, i2, c)`` index triples.

    Explicit capacitors keep their netlist value; each MOSFET contributes
    its operating-point ``Cgs`` (gate-source) and ``Cds`` (drain-source),
    the same linearization the AC analysis stamps.  Order is fixed
    (capacitors, then per-MOSFET gs/ds) so the scalar and batched paths
    stamp identically.
    """
    circuit = solution.circuit
    elements = []
    for cap in circuit.capacitors:
        elements.append(
            (system.node_index(cap.node1), system.node_index(cap.node2), cap.capacitance)
        )
    for mosfet in circuit.mosfets:
        small = solution.op(mosfet.name).small_signal
        gate = system.node_index(mosfet.gate)
        drain = system.node_index(mosfet.drain)
        source = system.node_index(mosfet.source)
        elements.append((gate, source, small.cgs))
        elements.append((drain, source, small.cds))
    return elements


def _cap_elements_batch(system: _MNASystem, solutions: list) -> list:
    """Batched counterpart of :func:`_cap_elements`: ``c`` is a vector
    over the candidate axis (same element order as the scalar path)."""
    per_candidate = [_cap_elements(system, solution) for solution in solutions]
    elements = []
    for e, (i1, i2, _) in enumerate(per_candidate[0]):
        values = np.array([caps[e][2] for caps in per_candidate])
        elements.append((i1, i2, values))
    return elements


def _dv(x: np.ndarray, i1: int | None, i2: int | None):
    """Branch voltage ``v(i1) - v(i2)`` with ground as implicit zero.

    Works on a flat unknown vector (scalar path) and on a ``(P, size)``
    stack (batched path, where it returns a per-candidate vector).
    """
    v1 = 0.0 if i1 is None else x[..., i1]
    v2 = 0.0 if i2 is None else x[..., i2]
    return v1 - v2


def _step_coef(method: str, dt: float, step: int) -> float:
    """Companion-model conductance factor of one time step.

    The trapezoidal rule takes its *first* step with backward-Euler: the
    source step at ``t = 0+`` makes the capacitor currents jump, so the
    zero-current steady-state history would otherwise seed the trap
    recursion with the pre-step value (the classic trap startup
    artifact).  The history update formula is the same for both
    coefficients, so the BE step also initializes ``hist`` correctly.
    """
    if method == "be" or (method == "trap" and step == 1):
        return 1.0 / dt
    if method == "trap":
        return 2.0 / dt
    raise ValueError(f"unknown integration method {method!r} (known: {', '.join(METHODS)})")


# ----------------------------------------------------------------------
# Scalar path
# ----------------------------------------------------------------------
def _tran_residual(
    system: _MNASystem,
    caps: list,
    x: np.ndarray,
    x_prev: np.ndarray,
    hist: np.ndarray,
    coef: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Residual/Jacobian of one time step: DC stamps + cap companions.

    The companion current of element ``e`` is
    ``i = coef * C * (dv - dv_prev) - hist[e]`` where ``hist`` is zero
    for backward-Euler and the previous step's capacitor current for the
    trapezoidal rule.
    """
    f, jac = system.residual_and_jacobian(x, source_scale=1.0, gmin=GMIN)
    for e, (i1, i2, c) in enumerate(caps):
        g = coef * c
        current = g * (_dv(x, i1, i2) - _dv(x_prev, i1, i2)) - hist[e]
        if i1 is not None:
            f[i1] += current
            jac[i1, i1] += g
            if i2 is not None:
                jac[i1, i2] -= g
        if i2 is not None:
            f[i2] -= current
            jac[i2, i2] += g
            if i1 is not None:
                jac[i2, i1] -= g
    return f, jac


def _tran_newton(
    system: _MNASystem,
    caps: list,
    x_prev: np.ndarray,
    hist: np.ndarray,
    coef: float,
    max_iterations: int,
    abstol: float = 1e-10,
    reltol: float = 1e-9,
    pattern: linsolve.StructurePattern | None = None,
) -> tuple[np.ndarray, int]:
    """Damped Newton for one time step (mirrors :func:`repro.spice.dc._newton`).

    ``pattern`` is the circuit's symbolic solve structure, built once by
    :func:`run_tran` and reused across every time step's iterations; the
    dense backend keeps the historical bit-exact arithmetic.
    """
    x = x_prev.copy()
    for iteration in range(1, max_iterations + 1):
        f, jac = _tran_residual(system, caps, x, x_prev, hist, coef)
        dx = _solve_newton_steps(jac, f, pattern)
        v_step = np.max(np.abs(dx[: system.n_nodes])) if system.n_nodes else 0.0
        if v_step > MAX_STEP:
            dx *= MAX_STEP / v_step
        x += dx
        node_residual = (
            float(np.max(np.abs(f[: system.n_nodes]))) if system.n_nodes else 0.0
        )
        if node_residual < abstol and float(np.max(np.abs(dx), initial=0.0)) < reltol:
            return x, iteration
    raise ConvergenceError(
        f"transient Newton failed after {max_iterations} iterations"
    )


def run_tran(
    solution: DCSolution,
    t_stop: float,
    n_steps: int = 160,
    method: str = "trap",
    step_amplitude: float = DEFAULT_STEP_AMPLITUDE,
    max_newton_iterations: int = MAX_TRAN_ITERATIONS,
) -> TranResult:
    """Integrate the step response of a solved circuit over ``[0, t_stop]``.

    Parameters
    ----------
    solution:
        Converged DC operating point (:func:`repro.spice.dc.solve_dc`);
        it is the initial condition and carries the per-device
        linearized capacitances.
    t_stop:
        Simulation end time (s).
    n_steps:
        Number of uniform time steps (``n_steps + 1`` samples including
        ``t = 0``).
    method:
        ``"trap"`` (trapezoidal, second order, the default) or ``"be"``
        (backward-Euler, first order, heavily damped).
    step_amplitude:
        Source step scale: every source jumps by ``step_amplitude * ac``
        at ``t = 0+`` (see :func:`step_sources`).
    max_newton_iterations:
        Newton cap per time step.

    Raises
    ------
    ConvergenceError
        If any time step's Newton iteration fails to converge.
    """
    dt, times = _grid(method, t_stop, n_steps)
    stepped = step_sources(solution.circuit, step_amplitude)
    system = _MNASystem(stepped)
    caps = _cap_elements(system, solution)
    # Symbolic solve structure: DC stamps plus companion-model entries,
    # computed once and reused by every time step's Newton iterations.
    pattern = _structure_pattern(system, [(i1, i2) for i1, i2, _ in caps])
    x = system.pack(solution.node_voltages, solution.source_currents)
    waveforms = np.empty((n_steps + 1, system.n_nodes))
    waveforms[0] = x[: system.n_nodes]
    # Starting from DC steady state, every capacitor current is zero.
    hist = np.zeros(len(caps))
    total_iterations = 0
    for step in range(1, n_steps + 1):
        coef = _step_coef(method, dt, step)
        x_new, iterations = _tran_newton(
            system, caps, x, hist, coef, max_newton_iterations, pattern=pattern
        )
        total_iterations += iterations
        if method == "trap":
            for e, (i1, i2, c) in enumerate(caps):
                hist[e] = coef * c * (_dv(x_new, i1, i2) - _dv(x, i1, i2)) - hist[e]
        x = x_new
        waveforms[step] = x[: system.n_nodes]
    return TranResult(
        times=times,
        node_names=system.node_names,
        waveforms=waveforms,
        method=method,
        step_amplitude=step_amplitude,
        newton_iterations=total_iterations,
    )


def _grid(method: str, t_stop: float, n_steps: int) -> tuple[float, np.ndarray]:
    """Validate the request and build ``(dt, time grid)``."""
    if method not in METHODS:
        raise ValueError(
            f"unknown integration method {method!r} (known: {', '.join(METHODS)})"
        )
    if t_stop <= 0:
        raise ValueError(f"t_stop must be positive, got {t_stop}")
    if n_steps < 1:
        raise ValueError(f"n_steps must be at least 1, got {n_steps}")
    dt = t_stop / n_steps
    return dt, np.linspace(0.0, t_stop, n_steps + 1)


# ----------------------------------------------------------------------
# Batched path
# ----------------------------------------------------------------------
def _tran_structure_key(circuit: Circuit):
    """Transient grouping key: DC structure plus capacitor connectivity.

    Capacitors are open circuits at DC and deliberately absent from
    :func:`repro.spice.dc._structure_key`, but the companion-model stamps
    align capacitor *slots* across a batch, so circuits differing in
    capacitor count or connectivity must never share a group.
    Capacitance values stay out of the key: they are per-candidate data
    (``_cap_elements_batch`` vectorizes them), exactly like widths.
    """
    return (
        _structure_key(circuit),
        tuple((cap.node1, cap.node2) for cap in circuit.capacitors),
    )


def run_tran_many(  # checks: hot-path
    solutions: list,
    t_stop: float,
    n_steps: int = 160,
    method: str = "trap",
    step_amplitude: float = DEFAULT_STEP_AMPLITUDE,
    max_newton_iterations: int = MAX_TRAN_ITERATIONS,
) -> list:
    """Integrate the step responses of many operating points together.

    The bulk path of the transient engine: solutions whose stepped
    circuits share one MNA structure (one topology's candidate
    population, corner-mixed batches included -- the structure key is the
    corner-agnostic one of :func:`repro.spice.dc.solve_dc_many`) run every
    time step's Newton iteration *together*, with vectorized assembly and
    one stacked linear solve per iteration.  Waveforms are bit-identical
    to :func:`run_tran` per candidate (pinned by the parity tests).

    Returns a list aligned with ``solutions`` whose entries are either
    :class:`TranResult` or :class:`ConvergenceError` (per-candidate
    failure isolation: one diverging design never aborts the batch).
    """
    dt, times = _grid(method, t_stop, n_steps)
    results: list = [None] * len(solutions)
    stepped = [step_sources(solution.circuit, step_amplitude) for solution in solutions]
    groups: dict = {}
    for index, circuit in enumerate(stepped):
        groups.setdefault(_tran_structure_key(circuit), []).append(index)
    for indices in groups.values():
        batch_solutions = [solutions[i] for i in indices]
        batch_stepped = [stepped[i] for i in indices]
        outcomes = _tran_batch(
            batch_solutions,
            batch_stepped,
            times,
            dt,
            method,
            step_amplitude,
            max_newton_iterations,
        )
        for i, outcome in zip(indices, outcomes, strict=True):
            results[i] = outcome
    return results


def _stamp_caps_batch(  # checks: hot-path
    f: np.ndarray,
    jac: np.ndarray,
    caps: list,
    x: np.ndarray,
    x_prev: np.ndarray,
    hist: np.ndarray,
    coef: float,
) -> None:
    """Vectorized counterpart of the capacitor stamps in :func:`_tran_residual`.

    ``x``/``x_prev`` have shape ``(P, size)``, ``hist`` is ``(P, E)`` and
    every element's capacitance is a per-candidate vector; each
    candidate's row mirrors the scalar stamps operation for operation.
    """
    for e, (i1, i2, c) in enumerate(caps):
        g = coef * c
        current = g * (_dv(x, i1, i2) - _dv(x_prev, i1, i2)) - hist[:, e]
        if i1 is not None:
            f[:, i1] += current
            jac[:, i1, i1] += g
            if i2 is not None:
                jac[:, i1, i2] -= g
        if i2 is not None:
            f[:, i2] -= current
            jac[:, i2, i2] += g
            if i1 is not None:
                jac[:, i2, i1] -= g


def _tran_newton_batch(  # checks: hot-path
    system: _MNASystem,
    stamps: _BatchStamps,
    caps: list,
    x_prev: np.ndarray,
    hist: np.ndarray,
    coef: float,
    max_iterations: int,
    abstol: float = 1e-10,
    reltol: float = 1e-9,
    work: tuple[np.ndarray, np.ndarray] | None = None,
    pattern: linsolve.StructurePattern | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One time step's damped Newton over a candidate batch.

    Mirrors :func:`repro.spice.dc._newton_batch`: candidates freeze the
    moment their own convergence criterion fires, so each trajectory
    reproduces the scalar :func:`_tran_newton` iteration exactly.
    Returns ``(solutions, iterations, converged)``.

    ``work`` optionally carries preallocated ``(f, jac)`` buffers with
    leading dimension >= ``batch`` (the time-step driver shares one pair
    across every step); assembly zero-fills the sliced views, so reuse
    is bit-identical to fresh allocation.
    """
    n = system.n_nodes
    batch = x_prev.shape[0]
    x = np.array(x_prev, copy=True)
    solutions = np.array(x, copy=True)
    iterations = np.zeros(batch, dtype=int)
    converged = np.zeros(batch, dtype=bool)
    active = np.arange(batch)
    # Preallocated per-iteration workspace; stamp/cap subsets are only
    # re-gathered when the active set shrinks (gathered values are
    # identical, so this is bit-identical to gathering every iteration).
    active_stamps = stamps
    active_caps = caps
    if work is None:
        f_buf = np.zeros((batch, system.size))
        jac_buf = np.zeros((batch, system.size, system.size))
    else:
        f_buf, jac_buf = work
    zero_residual = np.zeros(batch)

    for iteration in range(1, max_iterations + 1):
        m = active.size
        f, jac = _residual_and_jacobian_batch(
            system, active_stamps, x[active], 1.0, GMIN,
            out=(f_buf[:m], jac_buf[:m]),
        )
        _stamp_caps_batch(
            f, jac, active_caps, x[active], x_prev[active], hist[active], coef
        )
        dx = _solve_newton_steps(jac, f, pattern)
        if n:
            v_step = np.max(np.abs(dx[:, :n]), axis=1)
            over = v_step > MAX_STEP
            if np.any(over):
                dx[over] *= (MAX_STEP / v_step[over])[:, None]
        x[active] += dx
        node_residual = (
            np.max(np.abs(f[:, :n]), axis=1) if n else zero_residual[:m]
        )
        done = (node_residual < abstol) & (np.max(np.abs(dx), axis=1) < reltol)
        if np.any(done):
            newly = active[done]
            solutions[newly] = x[newly]
            iterations[newly] = iteration
            converged[newly] = True
            active = active[~done]
            if active.size == 0:
                break
            active_stamps = stamps.take(active)
            active_caps = [(i1, i2, c[active]) for i1, i2, c in caps]
    return solutions, iterations, converged


def _tran_batch(  # checks: hot-path
    solutions: list,
    stepped: list,
    times: np.ndarray,
    dt: float,
    method: str,
    step_amplitude: float,
    max_newton_iterations: int,
) -> list:
    """Integrate one structure-sharing group; see :func:`run_tran_many`."""
    system = _MNASystem(stepped[0])
    stamps = _BatchStamps(stepped)
    caps = _cap_elements_batch(system, solutions)
    # One symbolic solve pattern for the whole group: structure is shared
    # across candidates, time steps and Newton iterations alike.
    pattern = _structure_pattern(system, [(i1, i2) for i1, i2, _ in caps])
    batch = len(solutions)
    n_steps = len(times) - 1
    x = np.stack(
        [
            system.pack(solution.node_voltages, solution.source_currents)
            for solution in solutions
        ]
    )
    waveforms = np.empty((batch, n_steps + 1, system.n_nodes))
    waveforms[:, 0, :] = x[:, : system.n_nodes]
    hist = np.zeros((batch, len(caps)))
    newton_totals = np.zeros(batch, dtype=int)
    alive = np.ones(batch, dtype=bool)
    # Hoisted out of the time-step loop: the stamp/cap subsets change
    # only when a candidate diverges, and the Newton work buffers are
    # shared across every step (zero-filled per iteration inside the
    # solver, so reuse is bit-identical to fresh allocation).
    active = np.nonzero(alive)[0]
    active_stamps = stamps
    active_caps = caps
    f_buf = np.zeros((batch, system.size))
    jac_buf = np.zeros((batch, system.size, system.size))

    for step in range(1, n_steps + 1):
        if active.size == 0:
            break
        coef = _step_coef(method, dt, step)
        x_new, iterations, converged = _tran_newton_batch(
            system,
            active_stamps,
            active_caps,
            x[active],
            hist[active],
            coef,
            max_newton_iterations,
            work=(f_buf, jac_buf),
            pattern=pattern,
        )
        newton_totals[active] += iterations
        diverged = active[~converged]
        survivors = active[converged]
        if method == "trap":
            for e, (i1, i2, c) in enumerate(caps):
                dv_new = _dv(x_new, i1, i2)
                dv_old = _dv(x[active], i1, i2)
                updated = coef * c[active] * (dv_new - dv_old) - hist[active, e]
                hist[survivors, e] = updated[converged]
        x[survivors] = x_new[converged]
        waveforms[survivors, step, :] = x_new[converged][:, : system.n_nodes]
        if diverged.size:
            alive[diverged] = False
            active = survivors
            if active.size:
                active_stamps = stamps.take(active)
                active_caps = [(i1, i2, c[active]) for i1, i2, c in caps]

    outcomes: list = []
    for j in range(batch):
        if alive[j]:
            outcomes.append(
                TranResult(
                    times=times,
                    node_names=system.node_names,
                    waveforms=waveforms[j].copy(),
                    method=method,
                    step_amplitude=step_amplitude,
                    newton_iterations=int(newton_totals[j]),
                )
            )
        else:
            outcomes.append(
                ConvergenceError(
                    f"transient Newton failed after {max_newton_iterations} iterations"
                )
            )
    return outcomes
