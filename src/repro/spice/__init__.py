"""SPICE substrate: netlists, DC operating point, AC/transient analyses, sweeps."""

from .ac import ACResult, default_frequency_grid, run_ac, run_ac_many
from .dc import ConvergenceError, DCSolution, solve_dc, solve_dc_many
from .export import parse_netlist, to_spice
from .linsolve import (
    SPARSE_MIN_SIZE,
    StructurePattern,
    backend_mode,
    factorize_structure,
    pattern_from_matrices,
    solve_stacked,
    use_backend,
)
from .metrics import (
    TRAN_METRIC_DIRECTIONS,
    TRAN_METRIC_NAMES,
    PerformanceMetrics,
    crossing_frequency,
    extract_metrics,
    extract_tran_metrics,
)
from .netlist import GROUND, Capacitor, Circuit, ISource, Resistor, VSource
from .tran import TranResult, run_tran, run_tran_many, step_sources
from .sweep import (
    CharacterizationResult,
    ICMRResult,
    characterize_device,
    dc_transfer_sweep,
    icmr_sweep,
)

__all__ = [
    "ACResult",
    "default_frequency_grid",
    "run_ac",
    "run_ac_many",
    "ConvergenceError",
    "SPARSE_MIN_SIZE",
    "StructurePattern",
    "backend_mode",
    "factorize_structure",
    "pattern_from_matrices",
    "solve_stacked",
    "use_backend",
    "parse_netlist",
    "to_spice",
    "DCSolution",
    "solve_dc",
    "solve_dc_many",
    "PerformanceMetrics",
    "TRAN_METRIC_NAMES",
    "TRAN_METRIC_DIRECTIONS",
    "crossing_frequency",
    "extract_metrics",
    "extract_tran_metrics",
    "TranResult",
    "run_tran",
    "run_tran_many",
    "step_sources",
    "GROUND",
    "Capacitor",
    "Circuit",
    "ISource",
    "Resistor",
    "VSource",
    "CharacterizationResult",
    "ICMRResult",
    "characterize_device",
    "dc_transfer_sweep",
    "icmr_sweep",
]
