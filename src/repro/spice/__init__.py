"""SPICE substrate: netlists, DC operating point, AC analysis, sweeps."""

from .ac import ACResult, default_frequency_grid, run_ac, run_ac_many
from .dc import ConvergenceError, DCSolution, solve_dc, solve_dc_many
from .export import parse_netlist, to_spice
from .metrics import PerformanceMetrics, crossing_frequency, extract_metrics
from .netlist import GROUND, Capacitor, Circuit, ISource, Resistor, VSource
from .sweep import (
    CharacterizationResult,
    ICMRResult,
    characterize_device,
    dc_transfer_sweep,
    icmr_sweep,
)

__all__ = [
    "ACResult",
    "default_frequency_grid",
    "run_ac",
    "run_ac_many",
    "ConvergenceError",
    "parse_netlist",
    "to_spice",
    "DCSolution",
    "solve_dc",
    "solve_dc_many",
    "PerformanceMetrics",
    "crossing_frequency",
    "extract_metrics",
    "GROUND",
    "Capacitor",
    "Circuit",
    "ISource",
    "Resistor",
    "VSource",
    "CharacterizationResult",
    "ICMRResult",
    "characterize_device",
    "dc_transfer_sweep",
    "icmr_sweep",
]
