"""Circuit (netlist) representation for the SPICE substrate.

The paper's flow needs three simulator capabilities, all provided by this
package against this :class:`Circuit` container:

* a nonlinear DC operating-point solve (:mod:`repro.spice.dc`),
* a small-signal AC analysis (:mod:`repro.spice.ac`), and
* DC sweeps for LUT characterization and ICMR extraction
  (:mod:`repro.spice.sweep`).

Supported elements are exactly what the three OTA topologies and the LUT
characterization bench require: MOSFETs, resistors, capacitors, independent
voltage sources (with optional AC magnitude) and independent current
sources.  Node ``"0"`` (alias ``"gnd"``) is ground.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices import MOSFET, Corner, TechParams

__all__ = ["Circuit", "Resistor", "Capacitor", "VSource", "ISource", "GROUND"]

GROUND = "0"
_GROUND_ALIASES = frozenset({"0", "gnd", "GND", "vss", "VSS"})


def canonical_node(name: str) -> str:
    """Normalize ground aliases to :data:`GROUND`; other names unchanged."""
    return GROUND if name in _GROUND_ALIASES else name


@dataclass
class Resistor:
    """Linear resistor between ``node1`` and ``node2``."""

    name: str
    node1: str
    node2: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"{self.name}: resistance must be positive")
        self.node1 = canonical_node(self.node1)
        self.node2 = canonical_node(self.node2)

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclass
class Capacitor:
    """Linear capacitor between ``node1`` and ``node2`` (open in DC)."""

    name: str
    node1: str
    node2: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError(f"{self.name}: capacitance must be non-negative")
        self.node1 = canonical_node(self.node1)
        self.node2 = canonical_node(self.node2)


@dataclass
class VSource:
    """Independent voltage source from ``pos`` to ``neg``.

    ``dc`` is the operating-point value; ``ac`` the small-signal magnitude
    used by the AC analysis (0 for supplies and bias sources, nonzero for
    the stimulus).
    """

    name: str
    pos: str
    neg: str
    dc: float
    ac: float = 0.0

    def __post_init__(self) -> None:
        self.pos = canonical_node(self.pos)
        self.neg = canonical_node(self.neg)


@dataclass
class ISource:
    """Independent current source pushing ``dc`` amps from ``pos`` to ``neg``
    through the source (i.e. pulling current out of node ``pos``)."""

    name: str
    pos: str
    neg: str
    dc: float
    ac: float = 0.0

    def __post_init__(self) -> None:
        self.pos = canonical_node(self.pos)
        self.neg = canonical_node(self.neg)


@dataclass
class Circuit:
    """A flat netlist: nodes are referenced by name, ground is ``"0"``."""

    name: str = "circuit"
    mosfets: list[MOSFET] = field(default_factory=list)
    resistors: list[Resistor] = field(default_factory=list)
    capacitors: list[Capacitor] = field(default_factory=list)
    vsources: list[VSource] = field(default_factory=list)
    isources: list[ISource] = field(default_factory=list)
    #: PVT corner this netlist was built at (``None`` = nominal); metadata
    #: only — the elements already carry the corner-skewed values.  Set by
    #: ``OTATopology.build_circuit`` and surfaced in the SPICE export header.
    corner: Corner | None = None

    # ------------------------------------------------------------------
    # Element construction helpers
    # ------------------------------------------------------------------
    def add_mosfet(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        tech: TechParams,
        width: float,
        length: float,
    ) -> MOSFET:
        """Create, register and return a MOSFET instance."""
        self._check_unique(name)
        device = MOSFET(
            name=name,
            drain=canonical_node(drain),
            gate=canonical_node(gate),
            source=canonical_node(source),
            tech=tech,
            width=width,
            length=length,
        )
        self.mosfets.append(device)
        return device

    def add_resistor(self, name: str, node1: str, node2: str, resistance: float) -> Resistor:
        self._check_unique(name)
        element = Resistor(name, node1, node2, resistance)
        self.resistors.append(element)
        return element

    def add_capacitor(self, name: str, node1: str, node2: str, capacitance: float) -> Capacitor:
        self._check_unique(name)
        element = Capacitor(name, node1, node2, capacitance)
        self.capacitors.append(element)
        return element

    def add_vsource(
        self, name: str, pos: str, neg: str, dc: float, ac: float = 0.0
    ) -> VSource:
        self._check_unique(name)
        element = VSource(name, pos, neg, dc, ac)
        self.vsources.append(element)
        return element

    def add_isource(
        self, name: str, pos: str, neg: str, dc: float, ac: float = 0.0
    ) -> ISource:
        self._check_unique(name)
        element = ISource(name, pos, neg, dc, ac)
        self.isources.append(element)
        return element

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def element_names(self) -> set[str]:
        names: set[str] = set()
        for group in (
            self.mosfets,
            self.resistors,
            self.capacitors,
            self.vsources,
            self.isources,
        ):
            names.update(element.name for element in group)
        return names

    def _check_unique(self, name: str) -> None:
        if name in self.element_names():
            raise ValueError(f"duplicate element name {name!r} in circuit {self.name!r}")

    def nodes(self) -> list[str]:
        """All non-ground node names, in deterministic (insertion) order."""
        seen: dict[str, None] = {}

        def visit(node: str) -> None:
            if node != GROUND and node not in seen:
                seen[node] = None

        for mosfet in self.mosfets:
            for node in (mosfet.drain, mosfet.gate, mosfet.source):
                visit(node)
        for res in self.resistors:
            visit(res.node1)
            visit(res.node2)
        for cap in self.capacitors:
            visit(cap.node1)
            visit(cap.node2)
        for src in self.vsources:
            visit(src.pos)
            visit(src.neg)
        for src in self.isources:
            visit(src.pos)
            visit(src.neg)
        return list(seen)

    def mosfet(self, name: str) -> MOSFET:
        """Look up a MOSFET by name."""
        for device in self.mosfets:
            if device.name == name:
                return device
        raise KeyError(f"no MOSFET named {name!r} in circuit {self.name!r}")

    def vsource(self, name: str) -> VSource:
        """Look up a voltage source by name."""
        for source in self.vsources:
            if source.name == name:
                return source
        raise KeyError(f"no voltage source named {name!r} in circuit {self.name!r}")

    def set_widths(self, widths: dict[str, float]) -> None:
        """Update device widths in place (used by sweeps and optimizers)."""
        for device in self.mosfets:
            if device.name in widths:
                new_width = widths[device.name]
                if new_width <= 0:
                    raise ValueError(
                        f"{device.name}: width must be positive, got {new_width}"
                    )
                device.width = new_width

    def copy(self) -> Circuit:
        """Deep-enough copy: shared immutable tech params, fresh elements."""
        dup = Circuit(name=self.name, corner=self.corner)
        for m in self.mosfets:
            dup.add_mosfet(m.name, m.drain, m.gate, m.source, m.tech, m.width, m.length)
        for r in self.resistors:
            dup.add_resistor(r.name, r.node1, r.node2, r.resistance)
        for c in self.capacitors:
            dup.add_capacitor(c.name, c.node1, c.node2, c.capacitance)
        for v in self.vsources:
            dup.add_vsource(v.name, v.pos, v.neg, v.dc, v.ac)
        for i in self.isources:
            dup.add_isource(i.name, i.pos, i.neg, i.dc, i.ac)
        return dup
