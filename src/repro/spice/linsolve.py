"""Pluggable linear-solve layer for the stacked MNA kernels.

Every analysis engine (DC Newton, the AC ``Y(jw)`` sweep, transient time
stepping) bottoms out in the same operation: solve a stack of square MNA
systems that share one sparsity *structure* while only the matrix
*values* differ — across candidates, Newton iterations, time steps and
the whole frequency grid.  This module owns that operation behind two
entry points so the engines never touch a LAPACK/SuperLU call directly:

* :func:`factorize_structure` turns the structural ``(row, col)`` stamp
  coordinates of one structure-key group into a :class:`StructurePattern`
  — the symbolic CSR/CSC skeleton (sorted indices, column pointers, and
  a flat gather map from the dense stamp buffers) computed **once** per
  group and reused for every solve in it;
* :func:`solve_stacked` solves ``A x = b`` over arbitrary leading stack
  dimensions, choosing a backend:

  - **dense** — exactly today's arithmetic: one stacked
    ``np.linalg.solve`` with the per-item ``lstsq`` fallback on singular
    batches.  This is the bit-identity reference; routing a hot path
    through the layer with the dense backend changes *no* bits.
  - **sparse** — per-item SuperLU on a CSC matrix whose symbolic pattern
    comes from the :class:`StructurePattern`; only the ``O(nnz)`` value
    gather and the numeric factorization run per matrix.  Dense LU is
    ``O(size^3)`` per item while MNA matrices hold a handful of entries
    per row, so past a few dozen unknowns SuperLU wins by integer
    factors (pinned by the node-count scaling bench).

The default ``auto`` mode picks sparse only when a pattern is supplied
*and* the system has at least :data:`SPARSE_MIN_SIZE` unknowns: below
that, LAPACK on a tiny dense matrix beats SuperLU's setup cost, so the
paper's 5T/CM/2S-scale topologies keep their existing dense path (and
its bit-exact outputs) untouched.

Backend selection is process-global and test-controllable through
:func:`use_backend`; the sparse backend degrades to dense when SciPy is
absent (the layer adds no hard dependency).

Singular systems fall back per item to ``np.linalg.lstsq`` in *both*
backends — SuperLU raises on an exactly singular factor, and the sparse
path reuses the dense backend's per-item recovery so the two backends
agree on fallback semantics (pinned by the parity suite).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - exercised implicitly on scipy-less installs
    from scipy.sparse import csc_matrix as _csc_matrix
    from scipy.sparse.linalg import splu as _splu

    HAVE_SPARSE = True
except ImportError:  # pragma: no cover
    _csc_matrix = None
    _splu = None
    HAVE_SPARSE = False

__all__ = [
    "HAVE_SPARSE",
    "SPARSE_MIN_SIZE",
    "StructurePattern",
    "backend_mode",
    "factorize_structure",
    "pattern_from_matrices",
    "solve_stacked",
    "use_backend",
]

#: ``auto`` switches to the sparse backend at this many MNA unknowns.
#: Chosen from the node-count scaling bench: below ~64 unknowns LAPACK's
#: dense factorization of the whole stack beats per-item SuperLU setup;
#: above it the O(size^3) dense cost takes over.  Every paper-scale
#: topology (5T/CM/2S/FC/TELE, 11-23 unknowns) stays dense under auto.
SPARSE_MIN_SIZE = 64

_MODES = ("auto", "dense", "sparse")


class StructurePattern:
    """Symbolic sparsity pattern of one MNA structure.

    Holds the deduplicated, CSC-ordered coordinates of every Jacobian
    entry the assembly can touch for the structure (a superset of any
    single iterate's numeric nonzeros — entries may hold explicit zeros,
    which SuperLU accepts).  Building it costs one sort per structure
    group; every subsequent solve only gathers values through ``flat``.
    """

    __slots__ = ("size", "nnz", "indices", "indptr", "flat")

    def __init__(self, rows: np.ndarray, cols: np.ndarray, size: int):
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same shape")
        if rows.size and (
            rows.min() < 0 or cols.min() < 0 or rows.max() >= size or cols.max() >= size
        ):
            raise ValueError(f"coordinates out of range for size {size}")
        # Deduplicate (stamps touch diagonals repeatedly) and sort into
        # CSC order: by column, rows ascending within each column.
        flat_cm = np.unique(cols * size + rows)
        self.size = int(size)
        self.nnz = int(flat_cm.size)
        self.indices = (flat_cm % size).astype(np.int32)  # row of each entry
        counts = np.bincount(flat_cm // size, minlength=size)
        self.indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int32)
        #: Row-major flat index of each CSC entry into a dense (size, size)
        #: matrix: ``dense.ravel()[flat]`` is the CSC data array.
        self.flat = (flat_cm % size) * size + flat_cm // size


def factorize_structure(rows, cols, size: int) -> StructurePattern:
    """Build the reusable symbolic pattern of one structure-key group.

    ``rows``/``cols`` are the structural stamp coordinates (duplicates
    welcome — assembly touches diagonals once per element); the returned
    pattern is shared by every matrix of the group across Newton
    iterations, time steps, and the whole AC frequency grid.
    """
    return StructurePattern(np.asarray(rows), np.asarray(cols), size)


def pattern_from_matrices(*stacks: np.ndarray) -> StructurePattern:
    """Pattern from the union of nonzeros over already-stacked matrices.

    Used by the AC path, where the chunk's ``G`` and ``C`` matrices are
    in hand and every ``Y(jw) = G + jw C`` nonzero lies inside
    ``nonzero(G) | nonzero(C)`` for *every* frequency — so the union mask
    is a valid structural superset for the whole grid.
    """
    if not stacks:
        raise ValueError("need at least one matrix stack")
    size = stacks[0].shape[-1]
    mask = np.zeros((size, size), dtype=bool)
    for stack in stacks:
        flat = stack.reshape(-1, size, size)
        mask |= (flat != 0).any(axis=0)
    rows, cols = np.nonzero(mask)
    return StructurePattern(rows, cols, size)


@dataclass
class _Config:
    mode: str = "auto"
    sparse_min_size: int = SPARSE_MIN_SIZE


_CONFIG = _Config()


def backend_mode() -> str:
    """Current backend mode: ``auto`` (default), ``dense`` or ``sparse``."""
    return _CONFIG.mode


@contextmanager
def use_backend(mode: str | None = None, sparse_min_size: int | None = None):
    """Temporarily override backend selection (benches and parity tests).

    ``mode="sparse"`` forces the sparse backend for every solve that has
    a pattern regardless of size (how the parity suite exercises sparse
    arithmetic on the small paper topologies); ``mode="dense"`` pins the
    bit-identity reference.  Solves without a pattern are always dense.
    """
    if mode is not None and mode not in _MODES:
        raise ValueError(f"unknown linsolve mode {mode!r} (known: {', '.join(_MODES)})")
    previous = (_CONFIG.mode, _CONFIG.sparse_min_size)
    if mode is not None:
        _CONFIG.mode = mode
    if sparse_min_size is not None:
        _CONFIG.sparse_min_size = int(sparse_min_size)
    try:
        yield
    finally:
        _CONFIG.mode, _CONFIG.sparse_min_size = previous


def _use_sparse(pattern: StructurePattern | None, size: int) -> bool:
    if pattern is None or not HAVE_SPARSE or _CONFIG.mode == "dense":
        return False
    if _CONFIG.mode == "sparse":
        return True
    return size >= _CONFIG.sparse_min_size


def solve_stacked(
    jac: np.ndarray,
    rhs: np.ndarray,
    pattern: StructurePattern | None = None,
) -> np.ndarray:
    """Solve ``jac @ x = rhs`` over arbitrary leading stack dimensions.

    ``jac`` has shape ``(..., size, size)`` and ``rhs`` the matching
    ``(..., size)``; real and complex systems are both supported.  The
    dense backend reproduces the historical hot-path arithmetic bit for
    bit (one stacked ``np.linalg.solve``, per-item ``solve``-then-
    ``lstsq`` recovery on a singular batch); the sparse backend gathers
    each item's values through ``pattern`` and factorizes with SuperLU,
    falling back to the same per-item dense recovery on exactly singular
    factors.
    """
    size = jac.shape[-1]
    if _use_sparse(pattern, size):
        return _solve_sparse(jac, rhs, pattern)
    return _solve_dense(jac, rhs)


def _solve_dense(jac: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    try:
        return np.linalg.solve(jac, rhs[..., None])[..., 0]
    except np.linalg.LinAlgError:
        size = jac.shape[-1]
        flat_jac = jac.reshape(-1, size, size)
        flat_rhs = rhs.reshape(-1, size)
        out = np.empty_like(flat_rhs)
        for k in range(flat_jac.shape[0]):
            out[k] = _solve_item_dense(flat_jac[k], flat_rhs[k])
        return out.reshape(rhs.shape)


def _solve_item_dense(jac: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """One item's solve with the scalar path's lstsq recovery."""
    try:
        return np.linalg.solve(jac, rhs)
    except np.linalg.LinAlgError:
        return np.linalg.lstsq(jac, rhs, rcond=None)[0]


def _solve_sparse(
    jac: np.ndarray, rhs: np.ndarray, pattern: StructurePattern
) -> np.ndarray:
    size = jac.shape[-1]
    if pattern.size != size:
        raise ValueError(
            f"pattern is for size {pattern.size}, got a size-{size} system"
        )
    flat_jac = np.ascontiguousarray(jac).reshape(-1, size * size)
    flat_rhs = rhs.reshape(-1, size)
    dtype = np.result_type(jac.dtype, rhs.dtype)
    out = np.empty((flat_rhs.shape[0], size), dtype=dtype)
    # Symbolic work (dedup/sort/column pointers) was paid once in the
    # pattern; per item only the value gather and numeric factorization
    # remain.  The per-item Python loop is the intended shape here: each
    # iteration is one SuperLU factorization, not a dense LAPACK call.
    for k in range(flat_jac.shape[0]):
        values = flat_jac[k, pattern.flat].astype(dtype, copy=False)
        matrix = _csc_matrix(
            (values, pattern.indices, pattern.indptr), shape=(size, size)
        )
        try:
            out[k] = _splu(matrix).solve(flat_rhs[k].astype(dtype, copy=False))
        except RuntimeError:
            # SuperLU raises on an exactly singular factor; recover with
            # the same per-item dense path the dense backend uses.
            out[k] = _solve_item_dense(flat_jac[k].reshape(size, size), flat_rhs[k])
    return out.reshape(rhs.shape[:-1] + (size,)).astype(dtype, copy=False)
