"""Engineering-notation formatting and parsing of device parameter values.

The paper's sequences carry device parameters as short engineering-notation
strings such as ``2.5mS``, ``567uS``, ``541aF`` or ``0.7aF`` (Fig. 4 and the
BPE example in Sec. III-C).  This module renders SI values into that format
with three significant digits and parses them back.  We use ASCII ``u`` for
micro (the paper prints a Greek mu).
"""

from __future__ import annotations

import math
import re

__all__ = [
    "format_engineering",
    "parse_engineering",
    "format_conductance",
    "format_capacitance",
    "format_current",
    "VALUE_PATTERN",
]

#: SI prefixes from atto to giga, keyed by decimal exponent.
_PREFIXES = {
    -18: "a",
    -15: "f",
    -12: "p",
    -9: "n",
    -6: "u",
    -3: "m",
    0: "",
    3: "k",
    6: "M",
    9: "G",
}
_PREFIX_EXPONENTS = {v: k for k, v in _PREFIXES.items()}

#: Regex matching one engineering-notation value with unit, e.g. ``2.5mS``.
VALUE_PATTERN = re.compile(
    r"(?P<mantissa>-?\d+(?:\.\d+)?)(?P<prefix>[afpnumkMG]?)(?P<unit>[SFAV]|Hz|dB)"
)


def format_engineering(value: float, unit: str, digits: int = 3) -> str:
    """Render ``value`` with an SI prefix and ``digits`` significant digits.

    >>> format_engineering(2.5e-3, "S")
    '2.50mS'
    >>> format_engineering(5.41e-13, "F")
    '541fF'
    """
    if not math.isfinite(value):
        raise ValueError(f"cannot format non-finite value {value!r}")
    if value == 0.0:
        return f"0{unit}"
    sign = "-" if value < 0 else ""
    magnitude = abs(value)
    exponent = int(math.floor(math.log10(magnitude) / 3.0) * 3)
    exponent = max(min(exponent, 9), -18)
    mantissa = magnitude / 10.0**exponent
    # Keep the mantissa in [1, 1000); rounding can push e.g. 999.7 -> 1000,
    # in which case the exponent bumps and the mantissa is re-rounded (a
    # second pass never cascades because the new mantissa is ~1).
    mantissa_str = _round_significant(mantissa, digits)
    if float(mantissa_str) >= 1000.0 and exponent < 9:
        exponent += 3
        mantissa_str = _round_significant(magnitude / 10.0**exponent, digits)
    if float(mantissa_str) >= 1.0:
        # Rounding a sub-1 mantissa up to 1.0 changes its digit budget.
        mantissa_str = _round_significant(float(mantissa_str), digits)
    return f"{sign}{mantissa_str}{_PREFIXES[exponent]}{unit}"


def _round_significant(mantissa: float, digits: int) -> str:
    """Format a mantissa to ``digits`` significant digits.

    Normally the mantissa is in [1, 1000); values below 1 occur when the
    exponent clamps at the smallest prefix (e.g. ``0.700aF``, which also
    appears in the paper's Fig. 4 example).
    """
    if mantissa >= 100.0:
        decimals = max(digits - 3, 0)
    elif mantissa >= 10.0:
        decimals = max(digits - 2, 0)
    elif mantissa >= 1.0:
        decimals = max(digits - 1, 0)
    else:
        decimals = digits
    return f"{mantissa:.{decimals}f}"


def parse_engineering(text: str) -> tuple[float, str]:
    """Parse one engineering-notation value; returns ``(value, unit)``.

    >>> parse_engineering("2.50mS")
    (0.0025, 'S')
    """
    match = VALUE_PATTERN.fullmatch(text.strip())
    if match is None:
        raise ValueError(f"not an engineering-notation value: {text!r}")
    mantissa = float(match.group("mantissa"))
    prefix = match.group("prefix")
    exponent = _PREFIX_EXPONENTS.get(prefix, 0)
    return mantissa * 10.0**exponent, match.group("unit")


def parse_value(text: str) -> float:
    """Parse an engineering-notation value, discarding the unit."""
    value, _ = parse_engineering(text)
    return value


def format_conductance(value: float) -> str:
    """Conductance/transconductance in siemens, e.g. ``101uS``."""
    return format_engineering(value, "S")


def format_capacitance(value: float) -> str:
    """Capacitance in farads, e.g. ``541aF``."""
    return format_engineering(value, "F")


def format_current(value: float) -> str:
    """Current in amperes, e.g. ``16.0uA``."""
    return format_engineering(value, "A")
