"""Character-level tokenization (CLT) and the shared vocabulary.

CLT is the paper's baseline tokenizer (Sec. III-C): every character of a
DP-SFG sequence is one token.  It is simple but produces long sequences;
the restricted BPE in :mod:`repro.nlp.bpe` compresses them (the paper
reports 3.77x).

The :class:`Vocabulary` maps tokens to integer ids with the four special
tokens every sequence model needs (pad / begin / end / unknown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

__all__ = ["PAD", "BOS", "EOS", "UNK", "SPECIAL_TOKENS", "Vocabulary", "char_tokenize", "char_detokenize"]

PAD = "<pad>"
BOS = "<bos>"
EOS = "<eos>"
UNK = "<unk>"
SPECIAL_TOKENS = (PAD, BOS, EOS, UNK)


def char_tokenize(text: str) -> list[str]:
    """Character-level tokenization: each character is one token."""
    return list(text)


def char_detokenize(tokens: Sequence[str]) -> str:
    """Inverse of :func:`char_tokenize` (specials are dropped)."""
    return "".join(token for token in tokens if token not in SPECIAL_TOKENS)


@dataclass
class Vocabulary:
    """Bidirectional token <-> id mapping with special tokens first."""

    token_to_id: dict[str, int] = field(default_factory=dict)
    id_to_token: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.id_to_token:
            for token in SPECIAL_TOKENS:
                self._add(token)

    def _add(self, token: str) -> int:
        if token in self.token_to_id:
            return self.token_to_id[token]
        index = len(self.id_to_token)
        self.token_to_id[token] = index
        self.id_to_token.append(token)
        return index

    @classmethod
    def from_tokens(cls, tokens: Iterable[str]) -> Vocabulary:
        """Build a vocabulary from an iterable of tokens (deduplicated,
        insertion ordered, specials first)."""
        vocab = cls()
        for token in tokens:
            vocab._add(token)
        return vocab

    def add(self, token: str) -> int:
        """Register a token (idempotent); returns its id."""
        return self._add(token)

    def __len__(self) -> int:
        return len(self.id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    @property
    def pad_id(self) -> int:
        return self.token_to_id[PAD]

    @property
    def bos_id(self) -> int:
        return self.token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self.token_to_id[EOS]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[UNK]

    def encode(self, tokens: Sequence[str], add_bos: bool = False, add_eos: bool = False) -> list[int]:
        """Token strings -> ids, mapping unknown tokens to ``<unk>``."""
        ids = [self.token_to_id.get(token, self.unk_id) for token in tokens]
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: Sequence[int], strip_special: bool = True) -> list[str]:
        """Ids -> token strings; out-of-range ids raise ``IndexError``."""
        tokens = [self.id_to_token[i] for i in ids]
        if strip_special:
            tokens = [t for t in tokens if t not in SPECIAL_TOKENS]
        return tokens

    def decode_to_text(self, ids: Sequence[int]) -> str:
        """Ids -> concatenated surface text (specials stripped)."""
        return "".join(self.decode(ids))
