"""Restricted byte-pair encoding (Sec. III-C).

Standard BPE iteratively merges the most frequent adjacent token pair.  The
paper *restricts* the merges so the transformer can still predict numeric
values digit by digit:

* identifier-like text merges freely -- ``gmP1``, ``gdsM0``, unit suffixes
  like ``mS``/``aF`` become single tokens;
* **purely numeric strings stay character-level**: for ``2.5mS`` the tokens
  ``2``, ``.``, ``5`` are kept separate while ``mS`` is merged.

The distinction between a *value* digit run and an *identifier* digit (the
``1`` in ``P1``) is lexical: device names end in an uppercase letter plus
index (``M0``, ``P1``), so a digit run preceded by an uppercase letter is
identifier-like and may merge, while any other digit run (after an
operator, after the lowercase Laplace ``s`` of ``s541aF``, or at a span
start) is a numeric literal and is protected.  Whitespace is ordinary
mergeable text (as in GPT-style BPE), which lets the constant symbolic
path block of a topology collapse into a handful of long tokens.

Implementation notes: sequences are segmented once into *spans* (maximal
runs between whitespace, split into protected/unprotected parts); BPE
training and encoding operate on the multiset of distinct unprotected spans,
which is small because all the variability of a dataset lives in the
protected numeric spans.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from .tokenizer import Vocabulary

__all__ = ["Segment", "segment_text", "RestrictedBPE"]

#: A numeric literal: digit run (with optional decimal part / leading sign)
#: not preceded by an uppercase letter (device index), digit or dot.
_NUMBER = re.compile(r"(?<![A-Z0-9.])-?\d+(?:\.\d+)?")


@dataclass(frozen=True)
class Segment:
    """One segment of a sequence: ``protected`` segments never merge."""

    text: str
    protected: bool


def segment_text(text: str) -> list[Segment]:
    """Split ``text`` into numeric (protected) and free segments.

    Concatenating the segment texts reproduces the input exactly, which is
    what makes BPE decoding lossless.
    """
    segments: list[Segment] = []
    cursor = 0
    for match in _NUMBER.finditer(text):
        if match.start() > cursor:
            segments.append(Segment(text[cursor : match.start()], protected=False))
        segments.append(Segment(match.group(0), protected=True))
        cursor = match.end()
    if cursor < len(text):
        segments.append(Segment(text[cursor:], protected=False))
    return segments


class RestrictedBPE:
    """Trainable restricted byte-pair encoder.

    Usage::

        bpe = RestrictedBPE(num_merges=200)
        bpe.train(corpus_lines)
        tokens = bpe.encode("32 gmP1 -16 1/(gdsM0+...)")
        assert bpe.decode(tokens) == "32 gmP1 -16 1/(gdsM0+...)"
    """

    def __init__(self, num_merges: int = 200):
        if num_merges < 0:
            raise ValueError("num_merges must be non-negative")
        self.num_merges = num_merges
        self.merges: list[tuple[str, str]] = []
        self._merge_ranks: dict[tuple[str, str], int] = {}
        self._span_cache: dict[str, tuple[str, ...]] = {}

    @classmethod
    def from_merges(
        cls,
        merges: Iterable[Sequence[str]],
        num_merges: int | None = None,
    ) -> RestrictedBPE:
        """Reconstruct a trained encoder from a saved merge list.

        The inverse of persisting :attr:`merges`: ranks are rebuilt from
        list order, so ``from_merges(bpe.merges)`` encodes identically to
        the original ``bpe``.
        """
        merge_pairs = [tuple(pair) for pair in merges]
        for pair in merge_pairs:
            if len(pair) != 2 or not all(isinstance(part, str) for part in pair):
                raise ValueError(f"each merge must be a pair of strings, got {pair!r}")
        bpe = cls(num_merges=len(merge_pairs) if num_merges is None else num_merges)
        bpe.merges = merge_pairs
        bpe._merge_ranks = {pair: rank for rank, pair in enumerate(merge_pairs)}
        return bpe

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, corpus: Iterable[str]) -> None:
        """Learn merges from a corpus of sequence lines."""
        span_counts: Counter[str] = Counter()
        for line in corpus:
            for segment in segment_text(line):
                if not segment.protected and len(segment.text) > 1:
                    span_counts[segment.text] += 1

        # Work on distinct spans with multiplicities (classic BPE trick).
        span_tokens: dict[str, list[str]] = {span: list(span) for span in span_counts}

        self.merges = []
        for _ in range(self.num_merges):
            pair_counts: Counter[tuple[str, str]] = Counter()
            for span, tokens in span_tokens.items():
                weight = span_counts[span]
                for left, right in zip(tokens, tokens[1:], strict=False):
                    pair_counts[(left, right)] += weight
            if not pair_counts:
                break
            # Deterministic tie-break: highest count, then lexicographic.
            best_pair, best_count = max(
                pair_counts.items(), key=lambda item: (item[1], item[0])
            )
            if best_count < 2:
                break
            self.merges.append(best_pair)
            for span in span_tokens:
                span_tokens[span] = _apply_merge(span_tokens[span], best_pair)

        self._merge_ranks = {pair: rank for rank, pair in enumerate(self.merges)}
        self._span_cache = {}

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def _encode_span(self, span: str) -> tuple[str, ...]:
        cached = self._span_cache.get(span)
        if cached is not None:
            return cached
        tokens = list(span)
        while len(tokens) > 1:
            ranked = [
                (self._merge_ranks[pair], pair)
                for pair in zip(tokens, tokens[1:], strict=False)
                if pair in self._merge_ranks
            ]
            if not ranked:
                break
            _, pair = min(ranked)
            tokens = _apply_merge(tokens, pair)
        result = tuple(tokens)
        self._span_cache[span] = result
        return result

    def encode(self, text: str) -> list[str]:
        """Tokenize ``text`` with the learned merges.

        Protected segments (numbers, whitespace runs) are emitted as
        character-level tokens; free segments get the learned merges.
        """
        tokens: list[str] = []
        for segment in segment_text(text):
            if segment.protected:
                tokens.extend(segment.text)
            else:
                tokens.extend(self._encode_span(segment.text))
        return tokens

    @staticmethod
    def decode(tokens: Sequence[str]) -> str:
        """Concatenate tokens back into text (BPE merges are lossless)."""
        return "".join(tokens)

    def build_vocabulary(self, corpus: Iterable[str]) -> Vocabulary:
        """Vocabulary of every token the encoder emits on ``corpus``."""
        seen: dict[str, None] = {}
        for line in corpus:
            for token in self.encode(line):
                seen.setdefault(token, None)
        return Vocabulary.from_tokens(sorted(seen))

    def compression_ratio(self, corpus: Iterable[str]) -> float:
        """Mean CLT-length / BPE-length over the corpus (paper: 3.77x)."""
        total_chars = 0
        total_tokens = 0
        for line in corpus:
            total_chars += len(line)
            total_tokens += len(self.encode(line))
        if total_tokens == 0:
            return 1.0
        return total_chars / total_tokens


def _apply_merge(tokens: list[str], pair: tuple[str, str]) -> list[str]:
    """Replace every adjacent occurrence of ``pair`` with its concatenation."""
    merged: list[str] = []
    i = 0
    while i < len(tokens):
        if i + 1 < len(tokens) and tokens[i] == pair[0] and tokens[i + 1] == pair[1]:
            merged.append(tokens[i] + tokens[i + 1])
            i += 2
        else:
            merged.append(tokens[i])
            i += 1
    return merged
