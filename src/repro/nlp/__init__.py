"""Tokenization: engineering-notation values, CLT, restricted BPE."""

from .bpe import RestrictedBPE, Segment, segment_text
from .numformat import (
    format_capacitance,
    format_conductance,
    format_current,
    format_engineering,
    parse_engineering,
    parse_value,
)
from .tokenizer import BOS, EOS, PAD, UNK, Vocabulary, char_detokenize, char_tokenize

__all__ = [
    "RestrictedBPE",
    "Segment",
    "segment_text",
    "format_capacitance",
    "format_conductance",
    "format_current",
    "format_engineering",
    "parse_engineering",
    "parse_value",
    "BOS",
    "EOS",
    "PAD",
    "UNK",
    "Vocabulary",
    "char_detokenize",
    "char_tokenize",
]
