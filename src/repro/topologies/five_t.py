"""Five-transistor OTA (Fig. 6(a), Tables II/III).

Schematic (Table II's roles):

* M1/M2 -- PMOS active current-mirror load (M1 diode-connected), matched,
  required to operate in strong inversion;
* M3/M4 -- NMOS differential pair, matched, required in weak inversion;
* M5   -- NMOS tail current source, gate at a fixed bias voltage.

Nodes: ``d1`` (M1/M3 drains), ``out`` (M2/M4 drains, loaded by CL),
``tail`` (DP sources / M5 drain).  Inputs drive the DP gates differentially
(``ac = +-0.5`` so the differential input magnitude is 1).
"""

from __future__ import annotations

from collections.abc import Mapping

from ..devices import NMOS_65NM, PMOS_65NM
from ..spice import Circuit
from .base import DeviceGroup, OTATopology
from .registry import register

__all__ = ["FiveTransistorOTA"]


@register
class FiveTransistorOTA(OTATopology):
    """The 5T-OTA of Fig. 6(a)."""

    name = "5T-OTA"
    #: Tail gate bias: moderate inversion for the tail device.
    tail_bias = 0.48

    _GROUPS = (
        DeviceGroup(
            name="M1",
            devices=("M1", "M2"),
            role="Active load",
            tech=PMOS_65NM,
            region="strong",
            width_bounds=(0.7e-6, 2.5e-6),
        ),
        DeviceGroup(
            name="M3",
            devices=("M3", "M4"),
            role="DP",
            tech=NMOS_65NM,
            region="weak",
            width_bounds=(5e-6, 50e-6),
        ),
        DeviceGroup(
            name="M5",
            devices=("M5",),
            role="Tail MOS",
            tech=NMOS_65NM,
            region=None,
            width_bounds=(0.7e-6, 12e-6),
        ),
    )

    @property
    def groups(self) -> tuple[DeviceGroup, ...]:
        return self._GROUPS

    def build(self, widths: Mapping[str, float], vcm: float | None = None) -> Circuit:
        per_device = self.expand_widths(widths)
        vcm_value = self.vcm if vcm is None else vcm
        circuit = Circuit(name=self.name)
        circuit.add_vsource("VDD", "vdd", "0", self.vdd, ac=0.0)
        circuit.add_vsource("VINP", "inp", "0", vcm_value, ac=+0.5)
        circuit.add_vsource("VINN", "inn", "0", vcm_value, ac=-0.5)
        circuit.add_vsource("VB1", "vb1", "0", self.tail_bias, ac=0.0)

        length = self.length
        circuit.add_mosfet("M1", "d1", "d1", "vdd", PMOS_65NM, per_device["M1"], length)
        circuit.add_mosfet("M2", "out", "d1", "vdd", PMOS_65NM, per_device["M2"], length)
        circuit.add_mosfet("M3", "d1", "inp", "tail", NMOS_65NM, per_device["M3"], length)
        circuit.add_mosfet("M4", "out", "inn", "tail", NMOS_65NM, per_device["M4"], length)
        circuit.add_mosfet("M5", "tail", "vb1", "0", NMOS_65NM, per_device["M5"], length)
        circuit.add_capacitor("CL", "out", "0", self.load_capacitance)
        return circuit

    def initial_guess(self) -> dict[str, float]:
        return {
            "vdd": self.vdd,
            "inp": self.vcm,
            "inn": self.vcm,
            "vb1": self.tail_bias,
            "d1": 0.55,
            "out": 0.55,
            "tail": 0.20,
        }
