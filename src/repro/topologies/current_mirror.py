"""Current-mirror OTA (Fig. 6(b), Tables IV/V).

Nine devices in five matched groups (Table IV's roles):

* M1/M2 -- PMOS diode-connected mirror loads of the input branches
  (strong inversion);
* M3/M4 -- NMOS differential pair (weak inversion);
* M5   -- NMOS tail;
* M6/M7 -- PMOS mirror outputs copying the branch currents (M6 feeds the
  folding mirror, M7 feeds the output; strong inversion);
* M8/M9 -- NMOS folding mirror (M8 diode-connected; strong inversion).

The current-mirror gain ``K = W(M6)/W(M1)`` is a free design ratio, which
is how this topology reaches higher UGF than the 5T-OTA at the same tail
current -- the shape Table I/V report.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..devices import NMOS_65NM, PMOS_65NM
from ..spice import Circuit
from .base import DeviceGroup, OTATopology
from .registry import register

__all__ = ["CurrentMirrorOTA"]


@register
class CurrentMirrorOTA(OTATopology):
    """The CM-OTA of Fig. 6(b)."""

    name = "CM-OTA"
    tail_bias = 0.48

    _GROUPS = (
        DeviceGroup(
            name="M1",
            devices=("M1", "M2"),
            role="Matched CM load",
            tech=PMOS_65NM,
            region="strong",
            width_bounds=(0.7e-6, 2.5e-6),
        ),
        DeviceGroup(
            name="M3",
            devices=("M3", "M4"),
            role="DP",
            tech=NMOS_65NM,
            region="weak",
            width_bounds=(5e-6, 50e-6),
        ),
        DeviceGroup(
            name="M5",
            devices=("M5",),
            role="Tail MOS",
            tech=NMOS_65NM,
            region=None,
            width_bounds=(0.7e-6, 12e-6),
        ),
        DeviceGroup(
            name="M6",
            devices=("M6", "M7"),
            role="Matched CM load",
            tech=PMOS_65NM,
            region="strong",
            width_bounds=(0.7e-6, 5e-6),
        ),
        DeviceGroup(
            name="M8",
            devices=("M8", "M9"),
            role="Matched CM load",
            tech=NMOS_65NM,
            region="strong",
            width_bounds=(0.7e-6, 2e-6),
        ),
    )

    @property
    def groups(self) -> tuple[DeviceGroup, ...]:
        return self._GROUPS

    def build(self, widths: Mapping[str, float], vcm: float | None = None) -> Circuit:
        per_device = self.expand_widths(widths)
        vcm_value = self.vcm if vcm is None else vcm
        circuit = Circuit(name=self.name)
        circuit.add_vsource("VDD", "vdd", "0", self.vdd, ac=0.0)
        circuit.add_vsource("VINP", "inp", "0", vcm_value, ac=+0.5)
        circuit.add_vsource("VINN", "inn", "0", vcm_value, ac=-0.5)
        circuit.add_vsource("VB1", "vb1", "0", self.tail_bias, ac=0.0)

        length = self.length
        # Input branches with diode-connected PMOS loads.
        circuit.add_mosfet("M1", "a", "a", "vdd", PMOS_65NM, per_device["M1"], length)
        circuit.add_mosfet("M2", "b", "b", "vdd", PMOS_65NM, per_device["M2"], length)
        circuit.add_mosfet("M3", "a", "inp", "tail", NMOS_65NM, per_device["M3"], length)
        circuit.add_mosfet("M4", "b", "inn", "tail", NMOS_65NM, per_device["M4"], length)
        circuit.add_mosfet("M5", "tail", "vb1", "0", NMOS_65NM, per_device["M5"], length)
        # Mirror outputs: M6 copies branch A into the folding mirror M8/M9;
        # M7 copies branch B straight to the output.
        circuit.add_mosfet("M6", "c", "a", "vdd", PMOS_65NM, per_device["M6"], length)
        circuit.add_mosfet("M7", "out", "b", "vdd", PMOS_65NM, per_device["M7"], length)
        circuit.add_mosfet("M8", "c", "c", "0", NMOS_65NM, per_device["M8"], length)
        circuit.add_mosfet("M9", "out", "c", "0", NMOS_65NM, per_device["M9"], length)
        circuit.add_capacitor("CL", "out", "0", self.load_capacitance)
        return circuit

    def initial_guess(self) -> dict[str, float]:
        return {
            "vdd": self.vdd,
            "inp": self.vcm,
            "inn": self.vcm,
            "vb1": self.tail_bias,
            "a": 0.50,
            "b": 0.50,
            "c": 0.55,
            "out": 0.60,
            "tail": 0.20,
        }
