"""Base class for the OTA topologies of Fig. 6.

Every topology knows how to

* build a fully sized :class:`~repro.spice.netlist.Circuit` from a width
  vector (one width per *matched device group*, enforcing the paper's
  matching constraints for current mirrors and differential pairs),
* measure its performance metrics (gain / 3 dB BW / UGF) through the SPICE
  substrate, and
* produce its symbolic DP-SFG and path inventory (Stage I of the flow).

Widths are always expressed per device *group*: the paper enforces matching
between e.g. M1/M2 and M3/M4, so the free design variables are the group
widths, and the representative device of each group names the group.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..devices import TechParams
from ..dpsfg import DPSFG, build_dpsfg, enumerate_paths, PathInventory
from ..spice import (
    Circuit,
    ConvergenceError,
    DCSolution,
    PerformanceMetrics,
    extract_metrics,
    run_ac,
    run_ac_many,
    solve_dc,
    solve_dc_many,
)

__all__ = ["DeviceGroup", "OTATopology", "MeasurementResult", "MeasureOutcome"]


@dataclass(frozen=True)
class DeviceGroup:
    """A set of matched devices sharing one width.

    ``region`` is the inversion region the paper's data generation enforces
    for this group (``"weak"`` for differential pairs, ``"strong"`` for
    current mirrors, ``None`` for unconstrained devices like tails, which
    only need to stay saturated).
    """

    name: str
    devices: tuple[str, ...]
    role: str
    tech: TechParams
    region: Optional[str] = None
    width_bounds: tuple[float, float] = (0.7e-6, 50e-6)

    def __post_init__(self) -> None:
        if self.name not in self.devices:
            raise ValueError(f"group name {self.name!r} must be one of its devices")
        low, high = self.width_bounds
        if not (0 < low < high):
            raise ValueError(f"invalid width bounds {self.width_bounds}")


@dataclass
class MeasurementResult:
    """Everything one 'SPICE run' of a sized design yields."""

    circuit: Circuit
    dc: DCSolution
    metrics: PerformanceMetrics
    device_params: dict[str, dict[str, float]]

    def all_saturated(self) -> bool:
        return all(op.saturated for op in self.dc.operating_points.values())


@dataclass
class MeasureOutcome:
    """One candidate's slot in a bulk :meth:`OTATopology.measure_many` call.

    A failed candidate (non-convergent DC, unbuildable width vector) holds
    ``result=None`` and a diagnostic ``error`` string instead of aborting
    the batch -- the per-candidate isolation population-based solvers rely
    on.
    """

    widths: dict[str, float]
    result: Optional[MeasurementResult] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.result is not None


class OTATopology(ABC):
    """Abstract OTA topology: subclasses define groups and netlist shape."""

    #: Human-readable topology name, e.g. ``"5T-OTA"``.
    name: str = "OTA"
    #: Load capacitance (the paper fixes ``CL = 500 fF``).
    load_capacitance: float = 500e-15
    #: Channel length for all devices (the paper fixes ``L = 180 nm``).
    length: float = 180e-9
    #: Supply voltage.
    vdd: float = 1.2
    #: Default input common-mode voltage.
    vcm: float = 0.6
    #: Names of the differential input voltage sources.
    input_sources: tuple[str, str] = ("VINP", "VINN")
    #: Circuit node observed as the OTA output.
    output_node: str = "out"
    #: Inversion-coefficient thresholds for the region filters.  The paper
    #: enforces weak inversion for differential pairs and strong inversion
    #: for current mirrors; the exact IC cutoffs are calibration knobs of
    #: our substrate (classic EKV boundaries are 1 and 10 -- we accept
    #: upper-moderate mirrors at IC > 5 so the 0.7 um minimum width of the
    #: sweep box remains usable at the paper's bias currents).
    weak_ic_max: float = 1.0
    strong_ic_min: float = 5.0

    def __init__(self) -> None:
        self._symbolic_cache: Optional[DPSFG] = None
        self._inventory_cache: Optional[PathInventory] = None

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def groups(self) -> tuple[DeviceGroup, ...]:
        """Matched device groups, in schematic order."""

    @abstractmethod
    def build(self, widths: Mapping[str, float], vcm: Optional[float] = None) -> Circuit:
        """Construct the sized netlist from per-group widths."""

    def initial_guess(self) -> dict[str, float]:
        """Node-voltage starting point for the DC solver (override freely)."""
        return {}

    # ------------------------------------------------------------------
    # Common helpers
    # ------------------------------------------------------------------
    @property
    def group_names(self) -> tuple[str, ...]:
        return tuple(group.name for group in self.groups)

    def group(self, name: str) -> DeviceGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(f"no device group {name!r} in {self.name}")

    def device_to_group(self) -> dict[str, str]:
        """Map every device name to its group's representative name."""
        mapping: dict[str, str] = {}
        for group in self.groups:
            for device in group.devices:
                mapping[device] = group.name
        return mapping

    def validate_widths(self, widths: Mapping[str, float]) -> dict[str, float]:
        """Check a width vector covers every group and respects bounds."""
        checked: dict[str, float] = {}
        for group in self.groups:
            if group.name not in widths:
                raise KeyError(f"missing width for group {group.name!r}")
            value = float(widths[group.name])
            if value <= 0:
                raise ValueError(f"group {group.name!r}: width must be positive")
            checked[group.name] = value
        return checked

    def expand_widths(self, widths: Mapping[str, float]) -> dict[str, float]:
        """Per-group widths -> per-device widths (matching constraints)."""
        checked = self.validate_widths(widths)
        expanded: dict[str, float] = {}
        for group in self.groups:
            for device in group.devices:
                expanded[device] = checked[group.name]
        return expanded

    def nominal_widths(self) -> dict[str, float]:
        """Geometric-mean width per group (a sane starting design)."""
        return {
            group.name: float(np.sqrt(group.width_bounds[0] * group.width_bounds[1]))
            for group in self.groups
        }

    # ------------------------------------------------------------------
    # Measurement (one "SPICE simulation" of the paper's flow)
    # ------------------------------------------------------------------
    def measure(
        self,
        widths: Mapping[str, float],
        vcm: Optional[float] = None,
        frequencies: Optional[np.ndarray] = None,
    ) -> MeasurementResult:
        """Build, solve DC, run AC and extract the paper's three metrics."""
        circuit = self.build(widths, vcm=vcm)
        dc = solve_dc(circuit, initial_guess=self.initial_guess())
        ac = run_ac(dc, frequencies=frequencies)
        return self._package_measurement(circuit, dc, ac)

    def _package_measurement(
        self, circuit: Circuit, dc: DCSolution, ac
    ) -> MeasurementResult:
        """Metrics + per-device small-signal bundle of one solved design."""
        metrics = extract_metrics(ac, self.output_node)
        device_params = {
            name: {
                "gm": op.small_signal.gm,
                "gds": op.small_signal.gds,
                "cds": op.small_signal.cds,
                "cgs": op.small_signal.cgs,
                "id": abs(op.small_signal.id),
            }
            for name, op in dc.operating_points.items()
        }
        return MeasurementResult(circuit=circuit, dc=dc, metrics=metrics, device_params=device_params)

    def measure_many(
        self,
        widths_list: list,
        vcm: Optional[float] = None,
        frequencies: Optional[np.ndarray] = None,
    ) -> list[MeasureOutcome]:
        """Measure a whole population of width vectors in one bulk pass.

        The batched counterpart of :meth:`measure`: the per-candidate DC
        Newton solves share one vectorized assembly
        (:func:`repro.spice.solve_dc_many`) and the small-signal AC solves
        collapse into one stacked complex MNA factorization over
        population x frequency grid (:func:`repro.spice.run_ac_many`).
        Metrics are bit-identical to calling :meth:`measure` per candidate.

        Failures are isolated per candidate: a design whose DC solve does
        not converge (or whose width vector cannot be built) yields a
        ``MeasureOutcome`` with ``ok=False`` instead of raising, so one bad
        design never aborts a population evaluation.
        """
        outcomes = [MeasureOutcome(widths=dict(widths)) for widths in widths_list]
        buildable: list[int] = []
        circuits: list[Circuit] = []
        for index, widths in enumerate(widths_list):
            try:
                circuits.append(self.build(widths, vcm=vcm))
            except (KeyError, ValueError) as error:
                outcomes[index].error = str(error)
                continue
            buildable.append(index)

        solutions = solve_dc_many(circuits, initial_guess=self.initial_guess())
        solved: list[tuple[int, Circuit, DCSolution]] = []
        for index, circuit, solution in zip(buildable, circuits, solutions):
            if isinstance(solution, ConvergenceError):
                outcomes[index].error = str(solution)
            else:
                solved.append((index, circuit, solution))

        ac_results = run_ac_many([dc for _, _, dc in solved], frequencies=frequencies)
        for (index, circuit, dc), ac in zip(solved, ac_results):
            outcomes[index].result = self._package_measurement(circuit, dc, ac)
        return outcomes

    def regions_ok(self, dc: DCSolution) -> bool:
        """Check the paper's region-of-operation constraints (Sec. IV-A)."""
        for group in self.groups:
            for device in group.devices:
                op = dc.op(device)
                if not op.saturated:
                    return False
                if group.region == "weak" and op.inversion_coefficient >= self.weak_ic_max:
                    return False
                if group.region == "strong" and op.inversion_coefficient <= self.strong_ic_min:
                    return False
        return True

    # ------------------------------------------------------------------
    # DP-SFG (Stage I)
    # ------------------------------------------------------------------
    def symbolic_dpsfg(self) -> DPSFG:
        """Topology-level DP-SFG with symbolic device parameters.

        The graph structure depends only on connectivity, never on widths,
        so it is cached; the encoder sequences for every design of one
        topology share it (Sec. IV-A: the encoder paths 'maintain
        consistency across all designs within a specific topology').
        """
        if self._symbolic_cache is None:
            circuit = self.build(self.nominal_widths())
            self._symbolic_cache = build_dpsfg(circuit, self.output_node)
        return self._symbolic_cache

    def path_inventory(self) -> PathInventory:
        """Cached forward-path/cycle inventory of the symbolic DP-SFG."""
        if self._inventory_cache is None:
            self._inventory_cache = enumerate_paths(self.symbolic_dpsfg())
        return self._inventory_cache
