"""Base class for the OTA topologies of Fig. 6.

Every topology knows how to

* build a fully sized :class:`~repro.spice.netlist.Circuit` from a width
  vector (one width per *matched device group*, enforcing the paper's
  matching constraints for current mirrors and differential pairs),
* measure its performance metrics (gain / 3 dB BW / UGF) through the SPICE
  substrate, and
* produce its symbolic DP-SFG and path inventory (Stage I of the flow).

Widths are always expressed per device *group*: the paper enforces matching
between e.g. M1/M2 and M3/M4, so the free design variables are the group
widths, and the representative device of each group names the group.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from ..devices import VDD, Corner, CornerLike, TechParams, resolve_corner, resolve_corners
from ..dpsfg import DPSFG, build_dpsfg, enumerate_paths, PathInventory
from ..spice import (
    TRAN_METRIC_DIRECTIONS,
    Circuit,
    ConvergenceError,
    DCSolution,
    PerformanceMetrics,
    TranResult,
    extract_metrics,
    extract_tran_metrics,
    run_ac,
    run_ac_many,
    run_tran,
    run_tran_many,
    solve_dc,
    solve_dc_many,
)

__all__ = [
    "DeviceGroup",
    "OTATopology",
    "MeasurementResult",
    "MeasureOutcome",
    "CornerSweep",
    "binding_corner",
    "resolve_analyses",
    "DEFAULT_ANALYSES",
    "TRAN_ANALYSES",
]

#: The pre-transient measurement pipeline (operating point + AC sweep).
DEFAULT_ANALYSES = ("dc", "ac")

#: The full pipeline including the step-response transient.
TRAN_ANALYSES = ("dc", "ac", "tran")


def resolve_analyses(analyses) -> tuple[str, ...]:
    """Normalize an analyses selector to its canonical tuple.

    ``None`` (and anything equivalent to the default) resolves to
    :data:`DEFAULT_ANALYSES`; adding ``"tran"`` resolves to
    :data:`TRAN_ANALYSES`.  ``"dc"`` and ``"ac"`` are always implied --
    the operating point anchors every other analysis and the AC sweep
    produces the paper's specification metrics -- so the selector really
    toggles the transient leg.  Unknown names are rejected loudly.
    """
    if analyses is None:
        return DEFAULT_ANALYSES
    requested = set(analyses)
    unknown = requested - set(TRAN_ANALYSES)
    if unknown:
        raise ValueError(
            f"unknown analyses {sorted(unknown)} (known: {', '.join(TRAN_ANALYSES)})"
        )
    return TRAN_ANALYSES if "tran" in requested else DEFAULT_ANALYSES


@dataclass(frozen=True)
class DeviceGroup:
    """A set of matched devices sharing one width.

    ``region`` is the inversion region the paper's data generation enforces
    for this group (``"weak"`` for differential pairs, ``"strong"`` for
    current mirrors, ``None`` for unconstrained devices like tails, which
    only need to stay saturated).
    """

    name: str
    devices: tuple[str, ...]
    role: str
    tech: TechParams
    region: str | None = None
    width_bounds: tuple[float, float] = (0.7e-6, 50e-6)

    def __post_init__(self) -> None:
        if self.name not in self.devices:
            raise ValueError(f"group name {self.name!r} must be one of its devices")
        low, high = self.width_bounds
        if not (0 < low < high):
            raise ValueError(f"invalid width bounds {self.width_bounds}")


@dataclass
class MeasurementResult:
    """Everything one 'SPICE run' of a sized design yields.

    ``tran`` holds the step-response waveforms when the transient
    analysis was part of the run (``analyses`` included ``"tran"``); its
    metrics are merged into :attr:`metrics` as the optional transient
    fields.
    """

    circuit: Circuit
    dc: DCSolution
    metrics: PerformanceMetrics
    device_params: dict[str, dict[str, float]]
    tran: TranResult | None = None

    def all_saturated(self) -> bool:
        return all(op.saturated for op in self.dc.operating_points.values())


@dataclass
class MeasureOutcome:
    """One candidate's slot in a bulk :meth:`OTATopology.measure_many` call.

    A failed candidate (non-convergent DC, unbuildable width vector) holds
    ``result=None`` and a diagnostic ``error`` string instead of aborting
    the batch -- the per-candidate isolation population-based solvers rely
    on.
    """

    widths: dict[str, float]
    result: MeasurementResult | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class CornerSweep:
    """One candidate's per-corner outcomes in a multi-corner bulk call.

    Produced by :meth:`OTATopology.measure_many` (and the evaluation
    backends) when a ``corners=`` axis is requested: ``outcomes[j]`` is the
    candidate's :class:`MeasureOutcome` at ``corners[j]``, with the same
    per-(candidate, corner) failure isolation the flat path gives per
    candidate -- a design that converges at TT but not at SS holds a
    failed outcome in the SS slot only.
    """

    widths: dict[str, float]
    corners: tuple[Corner, ...]
    outcomes: tuple[MeasureOutcome, ...]

    @property
    def ok(self) -> bool:
        """True when every corner simulated successfully."""
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def n_ok(self) -> int:
        """Number of corners that simulated successfully."""
        return sum(1 for outcome in self.outcomes if outcome.ok)

    def outcome(self, corner_name: str) -> MeasureOutcome:
        """The outcome at the named corner."""
        for corner, outcome in zip(self.corners, self.outcomes, strict=True):
            if corner.name == corner_name:
                return outcome
        raise KeyError(f"no corner named {corner_name!r} in this sweep")

    def metrics_by_corner(self) -> dict[str, PerformanceMetrics]:
        """Per-corner metrics of the converged corners, keyed by name."""
        return {
            corner.name: outcome.result.metrics
            for corner, outcome in zip(self.corners, self.outcomes, strict=True)
            if outcome.ok
        }

    def worst_corner(self, spec) -> tuple[str, PerformanceMetrics]:
        """The binding corner against ``spec``.

        Ranked by (clamped total shortfall, signed total shortfall): a
        failing corner always outranks a passing one by its miss, and when
        every corner passes (all clamped shortfalls are 0) the signed
        tie-break picks the corner with the *least margin* -- the one that
        actually binds the worst-case guarantee.  Remaining ties resolve
        to the first corner in sweep order, so the result is
        deterministic.  Requires :attr:`ok` (every corner converged).
        """
        if not self.ok:
            raise ValueError("worst_corner needs every corner to have converged")
        return binding_corner(spec, self.metrics_by_corner())


def binding_corner(
    spec, metrics_by_corner: Mapping[str, PerformanceMetrics]
) -> tuple[str, PerformanceMetrics]:
    """The binding corner of a per-corner metrics map against ``spec``.

    The ranking behind :meth:`CornerSweep.worst_corner`, reusable wherever
    per-corner metrics exist without a sweep (e.g. re-ranking a cached
    response against a near-duplicate request's own spec): maximal
    (clamped shortfall, signed shortfall), ties to the first entry in
    mapping order.
    """
    if not metrics_by_corner:
        raise ValueError("binding_corner needs at least one corner's metrics")
    worst_name: str | None = None
    worst_metrics: PerformanceMetrics | None = None
    worst_key: tuple[float, float] | None = None
    for name, metrics in metrics_by_corner.items():
        key = (
            float(sum(spec.miss_fractions(metrics).values())),
            _signed_shortfall(spec, metrics),
        )
        if worst_key is None or key > worst_key:
            worst_name, worst_metrics, worst_key = name, metrics, key
    assert worst_name is not None and worst_metrics is not None
    return worst_name, worst_metrics


def _signed_shortfall(spec, metrics) -> float:
    """Total *signed* relative shortfall (negative = margin; NaN counts 1).

    The unclamped counterpart of ``DesignSpec.miss_fractions``: passing
    metrics contribute their negative margin instead of 0, which is what
    lets :meth:`CornerSweep.worst_corner` rank passing corners by how
    little headroom they leave.  Transient targets (when the spec sets
    them) contribute with their own direction: minimum targets like the
    AC triple, maximum targets (settling, overshoot) by relative excess.
    """
    total = 0.0
    for attr in ("gain_db", "f3db_hz", "ugf_hz"):
        target = getattr(spec, attr)
        value = getattr(metrics, attr)
        total += 1.0 if value != value else (target - value) / target
    for attr, direction in TRAN_METRIC_DIRECTIONS.items():
        target = getattr(spec, attr, None)
        if target is None:
            continue
        value = getattr(metrics, attr, None)
        if value is None or value != value:
            total += 1.0
        elif direction == "min":
            total += (target - value) / target
        else:
            total += (value - target) / target
    return total


class OTATopology(ABC):
    """Abstract OTA topology: subclasses define groups and netlist shape."""

    #: Human-readable topology name, e.g. ``"5T-OTA"``.
    name: str = "OTA"
    #: Load capacitance (the paper fixes ``CL = 500 fF``).
    load_capacitance: float = 500e-15
    #: Channel length for all devices (the paper fixes ``L = 180 nm``).
    length: float = 180e-9
    #: Nominal supply voltage -- the single supply knob of the stack
    #: (shared with :func:`repro.topologies.build_active_inductor`); PVT
    #: corners scale it through :meth:`supply_voltage`.
    vdd: float = VDD
    #: Name of the voltage source driving the supply rail; corner supply
    #: scaling rewrites this source's DC value.
    supply_source: str = "VDD"
    #: Name of the supply rail *node*; corner-aware initial guesses re-pin
    #: this entry at the scaled rail.  Override together with
    #: :attr:`supply_source` when a subclass wires its supply differently.
    supply_node: str = "vdd"
    #: Default input common-mode voltage.
    vcm: float = 0.6
    #: Names of the differential input voltage sources.
    input_sources: tuple[str, str] = ("VINP", "VINN")
    #: Circuit node observed as the OTA output.
    output_node: str = "out"
    #: Step-response (transient) testbench knobs: simulation window,
    #: number of uniform time steps, differential step amplitude (scaled
    #: by each source's AC magnitude), integration method and settling
    #: tolerance band.  The window must comfortably cover the topology's
    #: open-loop settling (~5 time constants at the slowest expected
    #: f3dB); subclasses with slower dominant poles override it.
    tran_t_stop: float = 400e-9
    tran_steps: int = 160
    tran_step_v: float = 1e-3
    tran_method: str = "trap"
    tran_settle_tol: float = 0.02
    #: Inversion-coefficient thresholds for the region filters.  The paper
    #: enforces weak inversion for differential pairs and strong inversion
    #: for current mirrors; the exact IC cutoffs are calibration knobs of
    #: our substrate (classic EKV boundaries are 1 and 10 -- we accept
    #: upper-moderate mirrors at IC > 5 so the 0.7 um minimum width of the
    #: sweep box remains usable at the paper's bias currents).
    weak_ic_max: float = 1.0
    strong_ic_min: float = 5.0

    def __init__(self) -> None:
        self._symbolic_cache: DPSFG | None = None
        self._inventory_cache: PathInventory | None = None

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def groups(self) -> tuple[DeviceGroup, ...]:
        """Matched device groups, in schematic order."""

    @abstractmethod
    def build(self, widths: Mapping[str, float], vcm: float | None = None) -> Circuit:
        """Construct the sized netlist from per-group widths."""

    def initial_guess(self) -> dict[str, float]:
        """Node-voltage starting point for the DC solver (override freely)."""
        return {}

    # ------------------------------------------------------------------
    # Common helpers
    # ------------------------------------------------------------------
    @property
    def group_names(self) -> tuple[str, ...]:
        return tuple(group.name for group in self.groups)

    def group(self, name: str) -> DeviceGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(f"no device group {name!r} in {self.name}")

    def device_to_group(self) -> dict[str, str]:
        """Map every device name to its group's representative name."""
        mapping: dict[str, str] = {}
        for group in self.groups:
            for device in group.devices:
                mapping[device] = group.name
        return mapping

    def validate_widths(self, widths: Mapping[str, float]) -> dict[str, float]:
        """Check a width vector covers every group and respects bounds."""
        checked: dict[str, float] = {}
        for group in self.groups:
            if group.name not in widths:
                raise KeyError(f"missing width for group {group.name!r}")
            value = float(widths[group.name])
            if value <= 0:
                raise ValueError(f"group {group.name!r}: width must be positive")
            checked[group.name] = value
        return checked

    def expand_widths(self, widths: Mapping[str, float]) -> dict[str, float]:
        """Per-group widths -> per-device widths (matching constraints)."""
        checked = self.validate_widths(widths)
        expanded: dict[str, float] = {}
        for group in self.groups:
            for device in group.devices:
                expanded[device] = checked[group.name]
        return expanded

    def nominal_widths(self) -> dict[str, float]:
        """Geometric-mean width per group (a sane starting design)."""
        return {
            group.name: float(np.sqrt(group.width_bounds[0] * group.width_bounds[1]))
            for group in self.groups
        }

    # ------------------------------------------------------------------
    # Corner-aware circuit construction
    # ------------------------------------------------------------------
    def supply_voltage(self, corner: CornerLike = None) -> float:
        """The supply rail at ``corner`` (nominal :attr:`vdd` by default)."""
        return resolve_corner(corner).supply(self.vdd)

    def build_circuit(
        self,
        widths: Mapping[str, float],
        vcm: float | None = None,
        corner: CornerLike = None,
    ) -> Circuit:
        """Construct the sized netlist at a PVT corner.

        The nominal corner (default) is the identity: it returns exactly
        what :meth:`build` produces, bit-identical to the pre-corner path.
        A skewed corner rebuilds every MOSFET with corner-skewed
        :class:`~repro.devices.TechParams` and rescales the DC value of
        the :attr:`supply_source` voltage source.
        """
        resolved = resolve_corner(corner)
        circuit = self.build(widths, vcm=vcm)
        if resolved.is_nominal:
            return circuit
        return self._apply_corner(circuit, resolved)

    def _apply_corner(self, circuit: Circuit, corner: Corner) -> Circuit:
        """Rewrite a nominal netlist in place for a skewed corner."""
        circuit.corner = corner
        for slot, device in enumerate(circuit.mosfets):
            circuit.mosfets[slot] = device.with_tech(corner.apply_tech(device.tech))
        if corner.vdd_scale != 1.0:
            supply = circuit.vsource(self.supply_source)
            supply.dc = corner.supply(supply.dc)
        return circuit

    def initial_guess_for(self, corner: CornerLike = None) -> dict[str, float]:
        """DC starting point at ``corner``: :meth:`initial_guess` with the
        :attr:`supply_node` entry re-pinned at the corner's scaled rail."""
        guess = dict(self.initial_guess())
        resolved = resolve_corner(corner)
        if resolved.vdd_scale != 1.0 and self.supply_node in guess:
            guess[self.supply_node] = resolved.supply(self.vdd)
        return guess

    # ------------------------------------------------------------------
    # Measurement (one "SPICE simulation" of the paper's flow)
    # ------------------------------------------------------------------
    def measure(
        self,
        widths: Mapping[str, float],
        vcm: float | None = None,
        frequencies: np.ndarray | None = None,
        corner: CornerLike = None,
        analyses: Sequence[str] | None = None,
    ) -> MeasurementResult:
        """Build, solve DC, run AC and extract the paper's three metrics.

        ``corner`` selects the PVT evaluation context (preset name,
        :class:`~repro.devices.Corner` or override mapping); the default
        nominal corner is bit-identical to the pre-corner flow.

        ``analyses`` selects the measurement pipeline (see
        :func:`resolve_analyses`): the default ``("dc", "ac")`` is
        bit-identical to the pre-transient flow; adding ``"tran"``
        additionally integrates the step-response testbench
        (:func:`repro.spice.run_tran` with this topology's ``tran_*``
        knobs) and fills the transient metric fields.
        """
        resolved_analyses = resolve_analyses(analyses)
        circuit = self.build_circuit(widths, vcm=vcm, corner=corner)
        dc = solve_dc(circuit, initial_guess=self.initial_guess_for(corner))
        ac = run_ac(dc, frequencies=frequencies)
        tran = self._run_tran(dc) if "tran" in resolved_analyses else None
        return self._package_measurement(circuit, dc, ac, tran=tran)

    def _run_tran(self, dc: DCSolution) -> TranResult:
        """One candidate's step-response integration (the scalar leg)."""
        return run_tran(
            dc,
            t_stop=self.tran_t_stop,
            n_steps=self.tran_steps,
            method=self.tran_method,
            step_amplitude=self.tran_step_v,
        )

    def _run_tran_many(self, solutions: list) -> list:
        """Bulk step-response integration; aligned TranResult/error slots."""
        return run_tran_many(
            solutions,
            t_stop=self.tran_t_stop,
            n_steps=self.tran_steps,
            method=self.tran_method,
            step_amplitude=self.tran_step_v,
        )

    def _package_measurement(
        self, circuit: Circuit, dc: DCSolution, ac, tran: TranResult | None = None
    ) -> MeasurementResult:
        """Metrics + per-device small-signal bundle of one solved design."""
        metrics = extract_metrics(ac, self.output_node)
        if tran is not None:
            metrics = extract_tran_metrics(
                tran, self.output_node, base=metrics, settle_tol=self.tran_settle_tol
            )
        device_params = {
            name: {
                "gm": op.small_signal.gm,
                "gds": op.small_signal.gds,
                "cds": op.small_signal.cds,
                "cgs": op.small_signal.cgs,
                "id": abs(op.small_signal.id),
            }
            for name, op in dc.operating_points.items()
        }
        return MeasurementResult(
            circuit=circuit, dc=dc, metrics=metrics, device_params=device_params, tran=tran
        )

    def measure_many(
        self,
        widths_list: list,
        vcm: float | None = None,
        frequencies: np.ndarray | None = None,
        corner: CornerLike = None,
        corners: Sequence[CornerLike] | None = None,
        analyses: Sequence[str] | None = None,
    ) -> list:
        """Measure a whole population of width vectors in one bulk pass.

        The batched counterpart of :meth:`measure`: the per-candidate DC
        Newton solves share one vectorized assembly
        (:func:`repro.spice.solve_dc_many`), the small-signal AC solves
        collapse into one stacked complex MNA factorization over
        population x frequency grid (:func:`repro.spice.run_ac_many`),
        and -- with ``"tran"`` in ``analyses`` -- the step-response
        integrations share one candidate-vectorized Newton per time step
        (:func:`repro.spice.run_tran_many`).  Metrics are bit-identical
        to calling :meth:`measure` per candidate.

        ``corner`` evaluates the whole population at one PVT corner
        (default nominal, bit-identical to the pre-corner path) and returns
        a flat ``list[MeasureOutcome]``.  ``corners`` adds a corner *axis*:
        every candidate is evaluated at every corner, the
        population x corner pairs stack into the same batched DC/AC solves
        (one Newton batch and one complex factorization per circuit
        structure), and the return value is a ``list[CornerSweep]`` aligned
        with ``widths_list``.

        Failures are isolated per candidate (per candidate-corner pair on
        the corner axis): a design whose DC solve does not converge,
        whose width vector cannot be built, or whose transient
        integration diverges yields an outcome with ``ok=False`` instead
        of raising, so one bad design never aborts a population
        evaluation.
        """
        resolved_analyses = resolve_analyses(analyses)
        if corners is not None:
            if corner is not None:
                raise ValueError("pass either corner= or corners=, not both")
            resolved_corners = resolve_corners(corners)
            if not resolved_corners:
                raise ValueError("corners must be non-empty (use corner=None for nominal)")
            return self._measure_corner_sweeps(
                widths_list,
                resolved_corners,
                vcm=vcm,
                frequencies=frequencies,
                analyses=resolved_analyses,
            )

        outcomes = [MeasureOutcome(widths=dict(widths)) for widths in widths_list]
        buildable: list[int] = []
        circuits: list[Circuit] = []
        for index, widths in enumerate(widths_list):
            try:
                circuits.append(self.build_circuit(widths, vcm=vcm, corner=corner))
            except (KeyError, ValueError) as error:
                outcomes[index].error = str(error)
                continue
            buildable.append(index)

        solutions = solve_dc_many(circuits, initial_guess=self.initial_guess_for(corner))
        solved: list[tuple[int, Circuit, DCSolution]] = []
        for index, circuit, solution in zip(buildable, circuits, solutions, strict=True):
            if isinstance(solution, ConvergenceError):
                outcomes[index].error = str(solution)
            else:
                solved.append((index, circuit, solution))

        ac_results = run_ac_many([dc for _, _, dc in solved], frequencies=frequencies)
        trans = self._tran_slots([dc for _, _, dc in solved], resolved_analyses)
        for (index, circuit, dc), ac, tran in zip(solved, ac_results, trans, strict=True):
            if isinstance(tran, ConvergenceError):
                outcomes[index].error = str(tran)
            else:
                outcomes[index].result = self._package_measurement(circuit, dc, ac, tran=tran)
        return outcomes

    def _tran_slots(self, solutions: list, analyses: tuple[str, ...]) -> list:
        """Per-candidate transient slots: ``TranResult``/error entries when
        the transient analysis is selected, ``None`` placeholders else."""
        if "tran" not in analyses:
            return [None] * len(solutions)
        return self._run_tran_many(solutions)

    def _measure_corner_sweeps(
        self,
        widths_list: list,
        corners: tuple[Corner, ...],
        vcm: float | None,
        frequencies: np.ndarray | None,
        analyses: tuple[str, ...] = DEFAULT_ANALYSES,
    ) -> list[CornerSweep]:
        """Bulk-evaluate population x corners; see :meth:`measure_many`.

        All candidate-corner pairs are built up front and handed to *one*
        ``solve_dc_many`` / ``run_ac_many`` (/ ``run_tran_many``) pass:
        the DC structure key is corner-agnostic, so the whole block
        factorizes together instead of once per corner (``bench_table8``'s
        corner-throughput mode pins the resulting >=2x over per-corner
        sequential evaluation); the corner-skewed technology parameters of
        a transient batch ride the same ``_ArrayTech`` path.
        """
        rows = [[MeasureOutcome(widths=dict(widths)) for _ in corners] for widths in widths_list]
        corner_guesses = [self.initial_guess_for(corner) for corner in corners]
        pair_slots: list[tuple[int, int]] = []
        circuits: list[Circuit] = []
        guesses: list[dict[str, float]] = []
        for i, widths in enumerate(widths_list):
            for j, corner in enumerate(corners):
                try:
                    circuit = self.build_circuit(widths, vcm=vcm, corner=corner)
                except (KeyError, ValueError) as error:
                    rows[i][j].error = str(error)
                    continue
                pair_slots.append((i, j))
                circuits.append(circuit)
                guesses.append(corner_guesses[j])

        solutions = solve_dc_many(circuits, initial_guess=guesses)
        solved: list[tuple[int, int, Circuit, DCSolution]] = []
        for (i, j), circuit, solution in zip(pair_slots, circuits, solutions, strict=True):
            if isinstance(solution, ConvergenceError):
                rows[i][j].error = str(solution)
            else:
                solved.append((i, j, circuit, solution))

        ac_results = run_ac_many([dc for _, _, _, dc in solved], frequencies=frequencies)
        trans = self._tran_slots([dc for _, _, _, dc in solved], analyses)
        for (i, j, circuit, dc), ac, tran in zip(solved, ac_results, trans, strict=True):
            if isinstance(tran, ConvergenceError):
                rows[i][j].error = str(tran)
            else:
                rows[i][j].result = self._package_measurement(circuit, dc, ac, tran=tran)
        return [
            CornerSweep(widths=dict(widths), corners=corners, outcomes=tuple(row))
            for widths, row in zip(widths_list, rows, strict=True)
        ]

    def regions_ok(self, dc: DCSolution) -> bool:
        """Check the paper's region-of-operation constraints (Sec. IV-A)."""
        for group in self.groups:
            for device in group.devices:
                op = dc.op(device)
                if not op.saturated:
                    return False
                if group.region == "weak" and op.inversion_coefficient >= self.weak_ic_max:
                    return False
                if group.region == "strong" and op.inversion_coefficient <= self.strong_ic_min:
                    return False
        return True

    # ------------------------------------------------------------------
    # DP-SFG (Stage I)
    # ------------------------------------------------------------------
    def symbolic_dpsfg(self) -> DPSFG:
        """Topology-level DP-SFG with symbolic device parameters.

        The graph structure depends only on connectivity, never on widths,
        so it is cached; the encoder sequences for every design of one
        topology share it (Sec. IV-A: the encoder paths 'maintain
        consistency across all designs within a specific topology').
        """
        if self._symbolic_cache is None:
            circuit = self.build(self.nominal_widths())
            self._symbolic_cache = build_dpsfg(circuit, self.output_node)
        return self._symbolic_cache

    def path_inventory(self) -> PathInventory:
        """Cached forward-path/cycle inventory of the symbolic DP-SFG."""
        if self._inventory_cache is None:
            self._inventory_cache = enumerate_paths(self.symbolic_dpsfg())
        return self._inventory_cache
