"""Pluggable topology registry.

Historically ``topology_by_name`` scanned a hardcoded tuple of the three
paper topologies, so adding a circuit meant editing the dispatch.  The
registry inverts the dependency: each topology module *declares* itself
with :func:`register` (usable as a class decorator), and everything else
— the training pipeline, the sizing engine, the CLI — resolves names
through the registry.  Third-party circuits register the same way::

    from repro.topologies import register, OTATopology

    @register
    class FoldedCascodeOTA(OTATopology):
        name = "FC-OTA"
        ...

or, for an arbitrary zero-argument factory under an explicit name::

    register(lambda: FoldedCascodeOTA(vdd=1.0), name="FC-OTA-1V")
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TypeVar

from .base import OTATopology

__all__ = ["register", "unregister", "topology_by_name", "available_topologies", "topology_factory"]

F = TypeVar("F", bound=Callable[[], OTATopology])

#: name -> zero-argument factory, in registration order.
_REGISTRY: dict[str, Callable[[], OTATopology]] = {}


def register(factory: F | None = None, *, name: str | None = None, replace: bool = False):
    """Register a topology factory (class or callable) under its name.

    Usable directly (``register(FiveTransistorOTA)``), as a decorator
    (``@register``), or with an explicit name for factories that don't
    carry a ``name`` attribute.  Duplicate names raise unless
    ``replace=True`` (useful for tests shadowing a stock topology).
    """
    if factory is None:  # @register(name=...) decorator form
        return lambda f: register(f, name=name, replace=replace)
    key = name or getattr(factory, "name", None)
    if not key or not isinstance(key, str):
        raise ValueError(
            "topology factory needs a 'name' attribute or an explicit name=..."
        )
    if not replace and key in _REGISTRY:
        raise ValueError(f"topology {key!r} is already registered")
    _REGISTRY[key] = factory
    return factory


def unregister(name: str) -> None:
    """Remove a registered topology (primarily for test isolation)."""
    _REGISTRY.pop(name, None)


def topology_factory(name: str) -> Callable[[], OTATopology]:
    """The registered factory for ``name``; raises ``KeyError`` if absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown topology {name!r} (registered: {known})") from None


def topology_by_name(name: str) -> OTATopology:
    """Instantiate a topology from its paper name (``"5T-OTA"`` etc.)."""
    return topology_factory(name)()


def available_topologies() -> tuple[str, ...]:
    """Registered topology names, in registration order."""
    return tuple(_REGISTRY)
