"""Telescopic-cascode OTA (ROADMAP "larger topologies"; not in Fig. 6).

The second large-topology scenario for the sparse MNA layer: nine
devices stacked five high between the rails — the classic
minimum-power route to cascode gain when the input common mode can be
fixed, and a deeper MNA system (nine non-ground nodes, six sources)
than any of the paper's three topologies.

Schematic (all four cascode devices sit in the *same* branch as the
differential pair — "telescopic" — unlike the folded-cascode's separate
output branch):

* M1/M2 -- NMOS differential pair (weak inversion, matched);
* M0    -- NMOS tail current source, gate at ``tail_bias``;
* M3/M4 -- NMOS cascodes directly on top of the DP drains;
* M5/M6 -- PMOS cascodes below the mirror loads;
* M7/M8 -- PMOS mirror loads at ``vdd``, gates self-biased from ``o1``
  (the drain of cascode M5), closing the cascoded-mirror loop.

Single-ended output at ``out`` (drains of M4/M6) into the 500 fF load.
With 1.2 V of supply and five stacked devices the headroom per device
is ~0.2 V, so the bias points deliberately run the stack in moderate
inversion — exactly the kind of tight-headroom design the sizing flow
should be able to explore.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..devices import NMOS_65NM, PMOS_65NM
from ..spice import Circuit
from .base import DeviceGroup, OTATopology
from .registry import register

__all__ = ["TelescopicOTA"]


@register
class TelescopicOTA(OTATopology):
    """Telescopic-cascode OTA: tight-headroom cascode stack."""

    name = "TELE-OTA"
    #: High output impedance into the 500 fF load: slow dominant pole,
    #: so settle over a longer window than the paper's single-stage OTAs.
    tran_t_stop = 4e-6
    tran_steps = 200
    tail_bias = 0.48
    #: Gate bias of the NMOS cascodes on top of the DP.
    ncasc_bias = 0.85
    #: Gate bias of the PMOS cascodes under the mirror loads; 0.45 V
    #: lifts their sources far enough below the rail that both the
    #: cascodes and the mirror loads clear Vds,sat in the ~0.2 V/device
    #: headroom the five-high stack allows.
    pcasc_bias = 0.45

    _GROUPS = (
        DeviceGroup(
            name="M1",
            devices=("M1", "M2"),
            role="DP",
            tech=NMOS_65NM,
            region="weak",
            width_bounds=(5e-6, 50e-6),
        ),
        DeviceGroup(
            name="M0",
            devices=("M0",),
            role="Tail MOS",
            tech=NMOS_65NM,
            region=None,
            width_bounds=(0.7e-6, 12e-6),
        ),
        DeviceGroup(
            name="M3",
            devices=("M3", "M4"),
            role="NMOS cascode",
            tech=NMOS_65NM,
            region=None,
            width_bounds=(0.7e-6, 12e-6),
        ),
        DeviceGroup(
            name="M5",
            devices=("M5", "M6"),
            role="PMOS cascode",
            tech=PMOS_65NM,
            region=None,
            width_bounds=(1e-6, 20e-6),
        ),
        DeviceGroup(
            name="M7",
            devices=("M7", "M8"),
            role="Mirror load",
            tech=PMOS_65NM,
            region=None,
            width_bounds=(1e-6, 20e-6),
        ),
    )

    @property
    def groups(self) -> tuple[DeviceGroup, ...]:
        return self._GROUPS

    def build(self, widths: Mapping[str, float], vcm: float | None = None) -> Circuit:
        per_device = self.expand_widths(widths)
        vcm_value = self.vcm if vcm is None else vcm
        circuit = Circuit(name=self.name)
        circuit.add_vsource("VDD", "vdd", "0", self.vdd, ac=0.0)
        circuit.add_vsource("VINP", "inp", "0", vcm_value, ac=+0.5)
        circuit.add_vsource("VINN", "inn", "0", vcm_value, ac=-0.5)
        circuit.add_vsource("VB1", "vb1", "0", self.tail_bias, ac=0.0)
        circuit.add_vsource("VBN", "vbn", "0", self.ncasc_bias, ac=0.0)
        circuit.add_vsource("VBP", "vbp", "0", self.pcasc_bias, ac=0.0)

        length = self.length
        # DP and tail.
        circuit.add_mosfet("M1", "d1", "inp", "tail", NMOS_65NM, per_device["M1"], length)
        circuit.add_mosfet("M2", "d2", "inn", "tail", NMOS_65NM, per_device["M2"], length)
        circuit.add_mosfet("M0", "tail", "vb1", "0", NMOS_65NM, per_device["M0"], length)
        # NMOS cascodes straight on top of the DP drains.
        circuit.add_mosfet("M3", "o1", "vbn", "d1", NMOS_65NM, per_device["M3"], length)
        circuit.add_mosfet("M4", "out", "vbn", "d2", NMOS_65NM, per_device["M4"], length)
        # PMOS cascodes and the self-biased mirror loads above them.
        circuit.add_mosfet("M5", "o1", "vbp", "s1", PMOS_65NM, per_device["M5"], length)
        circuit.add_mosfet("M6", "out", "vbp", "s2", PMOS_65NM, per_device["M6"], length)
        circuit.add_mosfet("M7", "s1", "o1", "vdd", PMOS_65NM, per_device["M7"], length)
        circuit.add_mosfet("M8", "s2", "o1", "vdd", PMOS_65NM, per_device["M8"], length)
        circuit.add_capacitor("CL", "out", "0", self.load_capacitance)
        return circuit

    def initial_guess(self) -> dict[str, float]:
        return {
            "vdd": self.vdd,
            "inp": self.vcm,
            "inn": self.vcm,
            "vb1": self.tail_bias,
            "vbn": self.ncasc_bias,
            "vbp": self.pcasc_bias,
            "tail": 0.20,
            "d1": 0.35,
            "d2": 0.35,
            "o1": 0.70,
            "out": 0.70,
            "s1": 0.95,
            "s2": 0.95,
        }
