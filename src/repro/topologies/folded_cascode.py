"""Folded-cascode OTA (ROADMAP "larger topologies"; not in the paper's Fig. 6).

The first of the two large-topology scenarios the sparse MNA layer
exists for: eleven devices, ten non-ground nodes and seven independent
sources — an MNA system roughly twice the 5T-OTA's, with the deep
cascode stack that makes single-stage gains of 50+ dB reachable where
the paper's three topologies top out around 30 dB.

Schematic (NMOS input, folded into a PMOS cascode with a wide-swing
NMOS cascode mirror as the load):

* M1/M2   -- NMOS differential pair (weak inversion, matched);
* M0      -- NMOS tail current source, gate at ``tail_bias``;
* M3/M4   -- PMOS folding current sources from ``vdd`` into the fold
  nodes ``x``/``y`` (they carry DP current plus branch current);
* M5/M6   -- PMOS cascodes from the fold nodes down to ``o1``/``out``;
* M7/M8   -- NMOS cascodes of the load mirror;
* M9/M10  -- NMOS mirror pair to ground, gates self-biased from ``o1``
  (the drain of cascode M7), which closes the wide-swing mirror loop.

Single-ended output at ``out`` (drains of M6/M8) into the 500 fF load.
The DP drains *fold* into the sources of the PMOS cascodes, so the
input common mode is decoupled from the output stack — the classic
reason to pay the extra branch current.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..devices import NMOS_65NM, PMOS_65NM
from ..spice import Circuit
from .base import DeviceGroup, OTATopology
from .registry import register

__all__ = ["FoldedCascodeOTA"]


@register
class FoldedCascodeOTA(OTATopology):
    """Folded-cascode OTA: the first sparse-solver-scale topology."""

    name = "FC-OTA"
    #: Single-stage but high output impedance into 500 fF: the dominant
    #: pole sits well below the 5T-OTA's, so the settling window is
    #: stretched accordingly.
    tran_t_stop = 4e-6
    tran_steps = 200
    tail_bias = 0.48
    #: Source-gate drop of the PMOS folding current sources, referenced
    #: to the rail (``v(vbf) = vdd - fold_drop``) so the fold current
    #: survives supply-scaled corners instead of cutting off when the
    #: rail sags below a ground-referenced bias.  0.50 V keeps the fold
    #: devices in moderate inversion (IC ~ 2.5) so their Vds,sat fits in
    #: the ~0.2 V the cascode stack leaves them.
    fold_drop = 0.50
    #: Rail-referenced gate drop of the PMOS cascodes
    #: (``v(vbp) = vdd - pcasc_drop``; keeps their Vsg supply-independent
    #: and leaves the fold sources enough Vds to saturate).
    pcasc_drop = 0.76
    #: Gate bias of the NMOS load-mirror cascodes (ground-referenced,
    #: like every NMOS bias); high enough that the mirror devices below
    #: them sit clearly past Vds,sat.
    ncasc_bias = 0.72

    _GROUPS = (
        DeviceGroup(
            name="M1",
            devices=("M1", "M2"),
            role="DP",
            tech=NMOS_65NM,
            region="weak",
            width_bounds=(5e-6, 50e-6),
        ),
        DeviceGroup(
            name="M0",
            devices=("M0",),
            role="Tail MOS",
            tech=NMOS_65NM,
            region=None,
            width_bounds=(0.7e-6, 12e-6),
        ),
        DeviceGroup(
            name="M3",
            devices=("M3", "M4"),
            role="Folding current source",
            tech=PMOS_65NM,
            region=None,
            width_bounds=(1e-6, 20e-6),
        ),
        DeviceGroup(
            name="M5",
            devices=("M5", "M6"),
            role="PMOS cascode",
            tech=PMOS_65NM,
            region=None,
            width_bounds=(1e-6, 20e-6),
        ),
        DeviceGroup(
            name="M7",
            devices=("M7", "M8"),
            role="NMOS cascode",
            tech=NMOS_65NM,
            region=None,
            width_bounds=(0.7e-6, 12e-6),
        ),
        DeviceGroup(
            name="M9",
            devices=("M9", "M10"),
            role="Mirror load",
            tech=NMOS_65NM,
            region=None,
            width_bounds=(0.7e-6, 12e-6),
        ),
    )

    @property
    def groups(self) -> tuple[DeviceGroup, ...]:
        return self._GROUPS

    def build(self, widths: Mapping[str, float], vcm: float | None = None) -> Circuit:
        per_device = self.expand_widths(widths)
        vcm_value = self.vcm if vcm is None else vcm
        circuit = Circuit(name=self.name)
        circuit.add_vsource("VDD", "vdd", "0", self.vdd, ac=0.0)
        circuit.add_vsource("VINP", "inp", "0", vcm_value, ac=+0.5)
        circuit.add_vsource("VINN", "inn", "0", vcm_value, ac=-0.5)
        circuit.add_vsource("VB1", "vb1", "0", self.tail_bias, ac=0.0)
        # PMOS biases are *rail-referenced*: v(gate) = vdd - drop.  They
        # are wired to ground (the DP-SFG builder requires grounded
        # sources) and re-pinned at the scaled rail by ``_apply_corner``,
        # which keeps the Vsg of the fold/cascode devices supply-independent.
        circuit.add_vsource("VBF", "vbf", "0", self.vdd - self.fold_drop, ac=0.0)
        circuit.add_vsource("VBP", "vbp", "0", self.vdd - self.pcasc_drop, ac=0.0)
        circuit.add_vsource("VBN", "vbn", "0", self.ncasc_bias, ac=0.0)

        length = self.length
        # Input pair folded at x/y; tail to ground.
        circuit.add_mosfet("M1", "x", "inp", "tail", NMOS_65NM, per_device["M1"], length)
        circuit.add_mosfet("M2", "y", "inn", "tail", NMOS_65NM, per_device["M2"], length)
        circuit.add_mosfet("M0", "tail", "vb1", "0", NMOS_65NM, per_device["M0"], length)
        # PMOS folding current sources and cascodes.
        circuit.add_mosfet("M3", "x", "vbf", "vdd", PMOS_65NM, per_device["M3"], length)
        circuit.add_mosfet("M4", "y", "vbf", "vdd", PMOS_65NM, per_device["M4"], length)
        circuit.add_mosfet("M5", "o1", "vbp", "x", PMOS_65NM, per_device["M5"], length)
        circuit.add_mosfet("M6", "out", "vbp", "y", PMOS_65NM, per_device["M6"], length)
        # Wide-swing NMOS cascode mirror load, self-biased from o1.
        circuit.add_mosfet("M7", "o1", "vbn", "m1", NMOS_65NM, per_device["M7"], length)
        circuit.add_mosfet("M8", "out", "vbn", "m2", NMOS_65NM, per_device["M8"], length)
        circuit.add_mosfet("M9", "m1", "o1", "0", NMOS_65NM, per_device["M9"], length)
        circuit.add_mosfet("M10", "m2", "o1", "0", NMOS_65NM, per_device["M10"], length)
        circuit.add_capacitor("CL", "out", "0", self.load_capacitance)
        return circuit

    def _apply_corner(self, circuit, corner):
        """Keep the PMOS biases rail-referenced at skewed corners: after
        the base rewrite scales the supply, re-pin each bias at the scaled
        rail minus its drop so the fold/cascode Vsg never collapses when
        the rail sags (the ss corner scales vdd by 0.90)."""
        circuit = super()._apply_corner(circuit, corner)
        if corner.vdd_scale != 1.0:
            rail = corner.supply(self.vdd)
            circuit.vsource("VBF").dc = rail - self.fold_drop
            circuit.vsource("VBP").dc = rail - self.pcasc_drop
        return circuit

    def initial_guess(self) -> dict[str, float]:
        return {
            "vdd": self.vdd,
            "inp": self.vcm,
            "inn": self.vcm,
            "vb1": self.tail_bias,
            "vbf": self.vdd - self.fold_drop,
            "vbp": self.vdd - self.pcasc_drop,
            "vbn": self.ncasc_bias,
            "tail": 0.20,
            "x": 1.00,
            "y": 1.00,
            "o1": 0.45,
            "out": 0.60,
            "m1": 0.25,
            "m2": 0.25,
        }
