"""The active-inductor running example of Fig. 2 / Fig. 4.

A source-follower gyrator: an NMOS with its drain at the supply (small-
signal ground), its source at node ``1`` (the port / output) and its gate at
node ``2``; a resistor ``G`` biases the gate from the supply and a capacitor
``C`` couples port and gate.  The port current is set by a DC bias sink and
the small-signal stimulus is a unit AC current ``Iin`` into node ``1``.

With this connectivity the driving-point impedances come out exactly as
Eq. (2) of the paper::

    z1 = 1 / (sC + sCds + sCgs + gds)        (node 1)
    z2 = 1 / (sC + sCgs + G)                 (node 2)

and the DP-SFG reproduces Fig. 2(b): a forward path ``Iin 1 I1 z1 V1 1
Vout``, a two-node cycle through the ``C``/``Cgs`` coupling with the ``+gm``
gate edge, and the ``-gm`` self-loop at node 1.
"""

from __future__ import annotations


from ..devices import VDD, CornerLike, NMOS_65NM, resolve_corner
from ..spice import Circuit

__all__ = ["build_active_inductor"]


def build_active_inductor(
    width: float = 10e-6,
    length: float = 180e-9,
    coupling_capacitance: float = 100e-15,
    gate_resistance: float = 10e3,
    bias_current: float = 50e-6,
    vdd: float | None = None,
    corner: CornerLike = None,
) -> Circuit:
    """Build the Fig. 2(a) active-inductor circuit.

    The element names are chosen so that symbolic DP-SFG sequences read like
    the paper's: the resistor is named ``G`` (its conductance parameter) and
    the coupling capacitor ``C``.

    The supply defaults to the technology's single nominal knob
    (:data:`repro.devices.VDD` -- the same value :class:`~repro.topologies.OTATopology`
    uses), scaled by ``corner``; an explicit ``vdd`` overrides it.  The
    corner also skews the device's technology parameters.
    """
    resolved = resolve_corner(corner)
    if vdd is None:
        vdd = resolved.supply(VDD)
    circuit = Circuit(name="active_inductor")
    if not resolved.is_nominal:
        circuit.corner = resolved
    circuit.add_vsource("VDD", "vdd", "0", vdd, ac=0.0)
    circuit.add_mosfet("M", "vdd", "2", "1", resolved.apply_tech(NMOS_65NM), width, length)
    circuit.add_resistor("G", "2", "vdd", gate_resistance)
    circuit.add_capacitor("C", "1", "2", coupling_capacitance)
    # DC bias sink pulling the follower current out of the port node.
    circuit.add_isource("Ibias", "1", "0", bias_current, ac=0.0)
    # Unit AC stimulus pushed INTO node 1 (the ISource convention pushes
    # the AC amplitude into its ``neg`` terminal).
    circuit.add_isource("Iin", "0", "1", 0.0, ac=1.0)
    return circuit
