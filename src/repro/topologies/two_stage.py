"""Two-stage OTA (Fig. 6(c), Tables VI/VII).

A 5T-OTA first stage followed by a common-source second stage (Table VI's
roles):

* M1/M2 -- first-stage PMOS active load (strong inversion);
* M3/M4 -- first-stage NMOS differential pair (weak inversion);
* M5   -- first-stage NMOS tail;
* M6   -- second-stage PMOS current source ("2nd stage tail MOS");
* M7   -- second-stage NMOS common-source amplifier.

The first-stage output ``o1`` (drain of M2/M4) drives the gate of M7; the
second stage drives ``out`` with the 500 fF load.  A Miller compensation
capacitor ``CC`` bridges ``o1`` and ``out``: pole splitting is what pushes
the dominant pole into the 10-320 kHz range Table I reports for this
topology while the UGF stays in the MHz range -- without it a two-stage
OTA's bandwidth would sit within an order of magnitude of the 5T-OTA's.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..devices import NMOS_65NM, PMOS_65NM
from ..spice import Circuit
from .base import DeviceGroup, OTATopology
from .registry import register

__all__ = ["TwoStageOTA"]


@register
class TwoStageOTA(OTATopology):
    """The 2S-OTA of Fig. 6(c)."""

    name = "2S-OTA"
    #: Step-response window: the Miller-compensated dominant pole sits in
    #: the 10-320 kHz range (Table I), ~30x slower than the single-stage
    #: OTAs, so settling needs a correspondingly longer window.
    tran_t_stop = 10e-6
    tran_steps = 200
    tail_bias = 0.48
    #: Gate bias of the second-stage PMOS current source (Vsg = 0.7 V).
    second_stage_bias = 0.50
    #: Miller compensation capacitance between ``o1`` and ``out``.
    compensation_capacitance = 2e-12

    _GROUPS = (
        DeviceGroup(
            name="M1",
            devices=("M1", "M2"),
            role="1st stage active load",
            tech=PMOS_65NM,
            region="strong",
            width_bounds=(0.7e-6, 2.5e-6),
        ),
        DeviceGroup(
            name="M3",
            devices=("M3", "M4"),
            role="1st stage DP",
            tech=NMOS_65NM,
            region="weak",
            width_bounds=(5e-6, 50e-6),
        ),
        DeviceGroup(
            name="M5",
            devices=("M5",),
            role="1st stage tail MOS",
            tech=NMOS_65NM,
            region=None,
            width_bounds=(0.7e-6, 12e-6),
        ),
        DeviceGroup(
            name="M6",
            devices=("M6",),
            role="2nd stage tail MOS",
            tech=PMOS_65NM,
            region=None,
            width_bounds=(0.7e-6, 20e-6),
        ),
        DeviceGroup(
            name="M7",
            devices=("M7",),
            role="2nd stage CS",
            tech=NMOS_65NM,
            region=None,
            width_bounds=(0.7e-6, 20e-6),
        ),
    )

    @property
    def groups(self) -> tuple[DeviceGroup, ...]:
        return self._GROUPS

    def build(self, widths: Mapping[str, float], vcm: float | None = None) -> Circuit:
        per_device = self.expand_widths(widths)
        vcm_value = self.vcm if vcm is None else vcm
        circuit = Circuit(name=self.name)
        circuit.add_vsource("VDD", "vdd", "0", self.vdd, ac=0.0)
        circuit.add_vsource("VINP", "inp", "0", vcm_value, ac=+0.5)
        circuit.add_vsource("VINN", "inn", "0", vcm_value, ac=-0.5)
        circuit.add_vsource("VB1", "vb1", "0", self.tail_bias, ac=0.0)
        circuit.add_vsource("VB2", "vb2", "0", self.second_stage_bias, ac=0.0)

        length = self.length
        # First stage: 5T-OTA with output at o1.
        circuit.add_mosfet("M1", "d1", "d1", "vdd", PMOS_65NM, per_device["M1"], length)
        circuit.add_mosfet("M2", "o1", "d1", "vdd", PMOS_65NM, per_device["M2"], length)
        circuit.add_mosfet("M3", "d1", "inp", "tail", NMOS_65NM, per_device["M3"], length)
        circuit.add_mosfet("M4", "o1", "inn", "tail", NMOS_65NM, per_device["M4"], length)
        circuit.add_mosfet("M5", "tail", "vb1", "0", NMOS_65NM, per_device["M5"], length)
        # Second stage: NMOS common source with PMOS current-source load.
        circuit.add_mosfet("M6", "out", "vb2", "vdd", PMOS_65NM, per_device["M6"], length)
        circuit.add_mosfet("M7", "out", "o1", "0", NMOS_65NM, per_device["M7"], length)
        circuit.add_capacitor("CC", "o1", "out", self.compensation_capacitance)
        circuit.add_capacitor("CL", "out", "0", self.load_capacitance)
        return circuit

    def initial_guess(self) -> dict[str, float]:
        return {
            "vdd": self.vdd,
            "inp": self.vcm,
            "inn": self.vcm,
            "vb1": self.tail_bias,
            "vb2": self.second_stage_bias,
            "d1": 0.55,
            "o1": 0.55,
            "out": 0.60,
            "tail": 0.20,
        }
