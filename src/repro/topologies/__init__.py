"""OTA topologies of Fig. 6, larger cascode OTAs, and the Fig. 2 example.

Topologies self-register with the pluggable registry (see
:mod:`repro.topologies.registry`); importing this package registers the
three paper circuits plus the folded-cascode and telescopic OTAs that
exercise the sparse MNA path.  New circuits only need a ``@register``
decorator — no dispatch table to edit.
"""

from .active_inductor import build_active_inductor
from .base import (
    DEFAULT_ANALYSES,
    TRAN_ANALYSES,
    CornerSweep,
    DeviceGroup,
    MeasureOutcome,
    MeasurementResult,
    OTATopology,
    binding_corner,
    resolve_analyses,
)
from .current_mirror import CurrentMirrorOTA
from .five_t import FiveTransistorOTA
from .folded_cascode import FoldedCascodeOTA
from .registry import (
    available_topologies,
    register,
    topology_by_name,
    topology_factory,
    unregister,
)
from .telescopic import TelescopicOTA
from .two_stage import TwoStageOTA

__all__ = [
    "build_active_inductor",
    "binding_corner",
    "resolve_analyses",
    "DEFAULT_ANALYSES",
    "TRAN_ANALYSES",
    "CornerSweep",
    "DeviceGroup",
    "MeasureOutcome",
    "MeasurementResult",
    "OTATopology",
    "CurrentMirrorOTA",
    "FiveTransistorOTA",
    "FoldedCascodeOTA",
    "TelescopicOTA",
    "TwoStageOTA",
    "ALL_TOPOLOGIES",
    "available_topologies",
    "register",
    "topology_by_name",
    "topology_factory",
    "unregister",
]

#: Factory classes for the three studied topologies, in paper order
#: (kept for back-compat; the registry is the source of truth).
ALL_TOPOLOGIES = (FiveTransistorOTA, CurrentMirrorOTA, TwoStageOTA)
