"""OTA topologies of Fig. 6 and the active-inductor example of Fig. 2."""

from .active_inductor import build_active_inductor
from .base import DeviceGroup, MeasurementResult, OTATopology
from .current_mirror import CurrentMirrorOTA
from .five_t import FiveTransistorOTA
from .two_stage import TwoStageOTA

__all__ = [
    "build_active_inductor",
    "DeviceGroup",
    "MeasurementResult",
    "OTATopology",
    "CurrentMirrorOTA",
    "FiveTransistorOTA",
    "TwoStageOTA",
    "ALL_TOPOLOGIES",
    "topology_by_name",
]

#: Factory functions for the three studied topologies, in paper order.
ALL_TOPOLOGIES = (FiveTransistorOTA, CurrentMirrorOTA, TwoStageOTA)


def topology_by_name(name: str) -> OTATopology:
    """Instantiate a topology from its paper name (``"5T-OTA"`` etc.)."""
    for factory in ALL_TOPOLOGIES:
        if factory.name == name:
            return factory()
    raise KeyError(f"unknown topology {name!r}")
