"""HTTP serving layer with dynamic micro-batching, backpressure, deadlines.

The engine is batched end to end, but library calls and the JSONL CLI
only benefit callers who already arrive in batches.  This package puts a
real service in front of :class:`~repro.service.SizingEngine`:

* :class:`MicroBatcher` — coalesces concurrent single requests into one
  ``size_batch`` call (flush on ``max_batch_size`` or ``max_wait_ms``),
  sheds expired work at dequeue time, and pushes back with a bounded
  queue.  Engine-free planning logic: the batch handler is opaque.
* :class:`SizingServer` / :func:`create_server` — stdlib
  ``ThreadingHTTPServer`` exposing ``POST /v1/size``, ``GET /stats``,
  ``GET /healthz`` and ``GET /topologies``.
* :mod:`repro.serve.protocol` — request validation and structured error
  payloads shared with the JSONL CLI, so both transports speak one
  schema.

``python -m repro serve --bundle ...`` runs it from the command line.
"""

from .app import SizingServer, create_server, serve_forever_in_thread
from .batcher import BatcherClosedError, MicroBatcher, QueueFullError, Ticket
from .protocol import RequestError, error_response, invalid_request_response
from .stats import ServeStats, aggregate_counter_payloads

__all__ = [
    "BatcherClosedError",
    "MicroBatcher",
    "QueueFullError",
    "RequestError",
    "ServeStats",
    "SizingServer",
    "Ticket",
    "aggregate_counter_payloads",
    "create_server",
    "error_response",
    "invalid_request_response",
    "serve_forever_in_thread",
]
