"""Dynamic micro-batching: coalesce concurrent requests into one batch.

The engine's ``size_batch`` is fast *per batch* — fused decode, stacked
Stage IV solves — but that only helps callers who already arrive in
batches.  The :class:`MicroBatcher` creates batches out of concurrent
*independent* requests, the same idea that powers model-serving stacks:

* callers ``submit()`` one request each and block on the returned
  :class:`Ticket`;
* a single dispatcher thread collects submissions into a batch, flushing
  when the batch reaches ``max_batch_size`` or when ``max_wait_ms`` has
  elapsed since the batch's *first* request arrived, whichever first;
* the whole batch goes through one ``handler(requests) -> responses``
  call, and every ticket resolves with its aligned response.

Backpressure is a bounded queue: when ``queue_depth`` submissions are
already waiting, ``submit`` raises :class:`QueueFullError` immediately
instead of letting latency grow without bound (the HTTP layer maps this
to 503 + ``Retry-After``).  Per-request deadlines are honored **at
dequeue time**: a request whose deadline passed while it sat in the
queue is resolved as expired without ever reaching the handler, so an
overloaded server sheds exactly the work whose answer nobody is waiting
for anymore (the HTTP layer maps this to 504).

The batcher holds *no engine state* — the handler is an opaque callable
and requests are opaque payloads.  That keeps the planning logic (when
to flush, what to shed) reusable when the engine moves behind a
multiprocess shard pool: only the handler changes.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Sequence
from typing import Generic, TypeVar

from .stats import ServeStats

__all__ = ["MicroBatcher", "Ticket", "QueueFullError", "BatcherClosedError"]

RequestT = TypeVar("RequestT")
ResponseT = TypeVar("ResponseT")


class QueueFullError(RuntimeError):
    """The bounded submission queue is at capacity (backpressure)."""


class BatcherClosedError(RuntimeError):
    """The batcher is shutting down and no longer accepts submissions."""


class Ticket(Generic[RequestT, ResponseT]):
    """One submission's future: wait on it for the aligned response.

    Exactly one of the terminal states holds after :meth:`wait` returns
    ``True``: ``response`` is set (served), ``expired`` is ``True`` (the
    deadline passed in the queue), or ``error`` is set (the batch
    handler raised).
    """

    __slots__ = ("request", "deadline", "enqueued_at", "response", "expired", "error", "_done")

    def __init__(self, request: RequestT, deadline: float | None, enqueued_at: float):
        self.request = request
        #: Absolute ``time.monotonic()`` deadline, or ``None``.
        self.deadline = deadline
        self.enqueued_at = enqueued_at
        self.response: ResponseT | None = None
        self.expired = False
        self.error: str | None = None
        self._done = threading.Event()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the ticket resolves; ``False`` on wait timeout."""
        return self._done.wait(timeout)

    def _resolve(self) -> None:
        self._done.set()


class MicroBatcher(Generic[RequestT, ResponseT]):
    """Single-dispatcher micro-batching queue over an opaque batch handler."""

    #: Idle poll interval of the dispatcher loop (also bounds how long a
    #: graceful close waits between "queue empty" checks).
    _IDLE_POLL_S = 0.05

    def __init__(
        self,
        handler: Callable[[list[RequestT]], Sequence[ResponseT]],
        *,
        max_batch_size: int = 16,
        max_wait_ms: float = 20.0,
        queue_depth: int = 256,
        concurrent_batches: int = 1,
        stats: ServeStats | None = None,
        name: str = "repro-serve-dispatcher",
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if concurrent_batches < 1:
            raise ValueError("concurrent_batches must be >= 1")
        self._handler = handler
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1e3
        #: With the default of 1, the dispatcher runs each batch inline —
        #: the engine sees strictly serialized ``size_batch`` calls.
        #: Above 1 (the sharded pool: one slot per worker), the
        #: dispatcher keeps gathering while up to this many batches run
        #: on short-lived dispatch threads, so batch *k+1* forms while
        #: batch *k* executes and the worker pool stays busy.
        self.concurrent_batches = concurrent_batches
        self.stats = stats if stats is not None else ServeStats()
        self._queue: queue.Queue[Ticket[RequestT, ResponseT]] = queue.Queue(maxsize=queue_depth)
        self._closing = threading.Event()
        self._slots = threading.Semaphore(concurrent_batches)
        self._inflight: set[threading.Thread] = set()
        # Guards ``_inflight`` (dispatcher thread adds, dispatch threads
        # discard themselves).
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    @property
    def queue_capacity(self) -> int:
        return self._queue.maxsize

    def queue_depth(self) -> int:
        """Submissions currently waiting for dispatch (approximate)."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closing.is_set()

    def submit(
        self, request: RequestT, deadline_ms: float | None = None
    ) -> Ticket[RequestT, ResponseT]:
        """Enqueue one request; returns the ticket to wait on.

        Raises :class:`QueueFullError` when the bounded queue is at
        capacity and :class:`BatcherClosedError` during shutdown — both
        *before* the request consumes any engine work.
        """
        if self._closing.is_set():
            raise BatcherClosedError("batcher is shutting down")
        now = time.monotonic()
        deadline = None if deadline_ms is None else now + deadline_ms / 1e3
        ticket: Ticket[RequestT, ResponseT] = Ticket(request, deadline, now)
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            self.stats.record_rejected()
            raise QueueFullError(
                f"queue full ({self._queue.maxsize} requests already waiting)"
            ) from None
        self.stats.record_received()
        return ticket

    def close(self, timeout: float | None = None) -> None:
        """Graceful shutdown: reject new work, drain what is queued.

        Blocks until the dispatcher has flushed every pending submission
        (already-enqueued tickets still resolve — their batches flush
        immediately with reason ``drain`` instead of waiting out the
        batching window) and exited, or until ``timeout``.
        """
        self._closing.set()
        self._thread.join(timeout)

    # ------------------------------------------------------------------
    # Dispatcher side (single thread)
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=self._IDLE_POLL_S)
            except queue.Empty:
                if self._closing.is_set():
                    self._join_inflight()
                    return
                continue
            batch = [first]
            reason = self._gather(batch)
            if self.concurrent_batches == 1:
                self._dispatch(batch, reason)
            else:
                self._slots.acquire()
                thread = threading.Thread(
                    target=self._dispatch_concurrent,
                    args=(batch, reason),
                    name=f"{self._thread.name}-batch",
                    daemon=True,
                )
                with self._lock:
                    self._inflight.add(thread)
                thread.start()

    def _dispatch_concurrent(
        self, batch: list[Ticket[RequestT, ResponseT]], reason: str
    ) -> None:
        try:
            self._dispatch(batch, reason)
        finally:
            self._slots.release()
            with self._lock:
                self._inflight.discard(threading.current_thread())

    def _join_inflight(self) -> None:
        """Drain: wait for concurrently dispatched batches to resolve."""
        with self._lock:
            inflight = list(self._inflight)
        for thread in inflight:
            thread.join()

    def _gather(self, batch: list[Ticket[RequestT, ResponseT]]) -> str:
        """Grow the batch until a flush condition holds; returns the reason."""
        flush_at = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            if self._closing.is_set():
                # Draining: take whatever is already queued, don't wait.
                try:
                    batch.append(self._queue.get_nowait())
                    continue
                except queue.Empty:
                    return "drain"
            remaining = flush_at - time.monotonic()
            if remaining <= 0:
                return "timeout"
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                return "timeout"
        return "size"

    def _dispatch(self, batch: list[Ticket[RequestT, ResponseT]], reason: str) -> None:
        # Deadlines are judged here, at dequeue time: an expired request
        # resolves as 504 without burning a solver run.
        now = time.monotonic()
        live: list[Ticket[RequestT, ResponseT]] = []
        for ticket in batch:
            if ticket.deadline is not None and now > ticket.deadline:
                ticket.expired = True
                self.stats.record_expired()
                ticket._resolve()
            else:
                live.append(ticket)
        if not live:
            return
        self.stats.record_batch(len(live), reason)
        try:
            responses = self._handler([ticket.request for ticket in live])
            if len(responses) != len(live):
                raise RuntimeError(
                    f"batch handler returned {len(responses)} responses "
                    f"for {len(live)} requests"
                )
        except Exception as error:  # noqa: BLE001 — one bad batch must not kill serving
            self.stats.record_failed(len(live))
            message = f"{type(error).__name__}: {error}"
            for ticket in live:
                ticket.error = message
                ticket._resolve()
            return
        done = time.monotonic()
        for ticket, response in zip(live, responses, strict=True):
            ticket.response = response
            self.stats.record_served(done - ticket.enqueued_at)
            ticket._resolve()
