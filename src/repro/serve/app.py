"""The HTTP serving layer: stdlib ``ThreadingHTTPServer`` over the engine.

Endpoints:

``POST /v1/size``
    One sizing request per call, JSON body in the CLI's request schema
    (plus the serving-only ``deadline_ms`` key).  Concurrent calls are
    coalesced by the :class:`~repro.serve.MicroBatcher` into one
    ``SizingEngine.size_batch`` call — the handler thread blocks on its
    ticket while the dispatcher forms and runs the batch.  Responses:

    * ``200`` — the standard :class:`~repro.service.SizingResponse` JSON
      (``success`` may still be ``false`` when the spec is infeasible);
    * ``400`` — malformed body, same structured payload as a bad JSONL
      line in the CLI;
    * ``503`` + ``Retry-After`` — the bounded queue is full
      (backpressure: retry, don't pile on);
    * ``504`` — the request's ``deadline_ms`` expired while it waited in
      the queue (no solver work was spent on it);
    * ``500`` — the batch handler raised (a server bug, not a request
      problem).

``GET /stats``
    Engine counters (:meth:`EngineStats.as_dict`), result-cache counters,
    and server-level counters: queue depth/capacity, batch-size
    histogram, flush reasons, p50/p95/p99 latency.

``GET /healthz``
    Liveness: ``{"status": "ok"}`` (``"draining"`` during shutdown).

``GET /topologies``
    The registry, same list as ``python -m repro topologies``.

Threading model: ``ThreadingHTTPServer`` runs one thread per in-flight
HTTP exchange; all sizing work funnels through the batcher's single
dispatcher thread, so the engine itself sees strictly serialized
``size_batch`` calls while ``/stats`` readers take atomic snapshots.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from collections.abc import Callable, Sequence
from typing import Any

from ..service.engine import SizingEngine
from ..service.requests import SizingRequest, SizingResponse
from ..topologies import available_topologies
from .batcher import BatcherClosedError, MicroBatcher, QueueFullError
from .protocol import RequestError, error_response, invalid_request_response, parse_request_text
from .stats import ServeStats, aggregate_counter_payloads

__all__ = ["SizingServer", "create_server"]


class _Handler(BaseHTTPRequestHandler):
    """Per-connection HTTP handler; all state lives on ``self.server``."""

    server: SizingServer
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def _send_json(
        self, status: int, payload: Any, headers: dict[str, str] | None = None
    ) -> None:
        # allow_nan=False: a non-finite value must fail here, loudly, not
        # reach clients as bare Infinity (which is not JSON).
        body = json.dumps(payload, sort_keys=True, allow_nan=False).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.log is not None:
            self.server.log(f"{self.address_string()} - {format % args}")

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler contract
        if self.path == "/healthz":
            self._send_json(200, self.server.health_payload())
        elif self.path == "/stats":
            self._send_json(200, self.server.stats_payload())
        elif self.path == "/topologies":
            self._send_json(200, {"topologies": list(available_topologies())})
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/v1/size":
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length <= 0:
            self.server.serve_stats.record_bad_request()
            self._send_json(
                400, invalid_request_response("empty request body").to_json()
            )
            return
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        try:
            request, deadline_ms = parse_request_text(body, allow_deadline=True)
        except RequestError as error:
            self.server.serve_stats.record_bad_request()
            self._send_json(400, invalid_request_response(str(error)).to_json())
            return
        self._serve_sizing(request, deadline_ms)

    def _serve_sizing(
        self, request: SizingRequest, deadline_ms: float | None
    ) -> None:
        server = self.server
        try:
            ticket = server.batcher.submit(request, deadline_ms=deadline_ms)
        except QueueFullError as error:
            self._send_json(
                503,
                error_response(
                    f"server overloaded: {error}",
                    request_id=request.id,
                    topology=request.topology,
                    method=request.method,
                ).to_json(),
                headers={"Retry-After": str(server.retry_after_s)},
            )
            return
        except BatcherClosedError:
            self._send_json(
                503,
                error_response(
                    "server shutting down",
                    request_id=request.id,
                    topology=request.topology,
                    method=request.method,
                ).to_json(),
                headers={"Retry-After": str(server.retry_after_s)},
            )
            return
        ticket.wait()
        if ticket.expired:
            self._send_json(
                504,
                error_response(
                    f"deadline expired in queue (deadline_ms={deadline_ms:g})",
                    request_id=request.id,
                    topology=request.topology,
                    method=request.method,
                ).to_json(),
            )
        elif ticket.error is not None:
            self._send_json(
                500,
                error_response(
                    f"internal error: {ticket.error}",
                    request_id=request.id,
                    topology=request.topology,
                    method=request.method,
                ).to_json(),
            )
        else:
            assert ticket.response is not None
            self._send_json(200, ticket.response.to_json())


class SizingServer(ThreadingHTTPServer):
    """HTTP front end: one engine, one micro-batcher, many client threads."""

    #: In-flight handler threads must not block interpreter exit; the
    #: graceful-shutdown path resolves their tickets by draining the
    #: batcher, not by joining them.
    daemon_threads = True
    allow_reuse_address = True
    #: TCP listen backlog.  socketserver's default of 5 resets
    #: connections under exactly the concurrent burst micro-batching is
    #: for; backpressure is the bounded queue's job (503), not the
    #: kernel's (ECONNRESET).
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        engine: SizingEngine,
        *,
        max_batch_size: int = 16,
        max_wait_ms: float = 20.0,
        queue_depth: int = 256,
        retry_after_s: int = 1,
        concurrent_batches: int = 1,
        handler: Callable[[list[SizingRequest]], Sequence[SizingResponse]] | None = None,
        log: Callable[[str], None] | None = None,
    ):
        super().__init__(address, _Handler)
        #: ``engine`` is duck-typed: anything with ``size_batch`` /
        #: ``stats`` / ``cache`` serves — notably a
        #: :class:`~repro.shard.ShardedEngine`, whose ``health()`` and
        #: ``workers_payload()`` additionally light up pool status in
        #: ``/healthz`` and ``/stats``.
        self.engine = engine
        self.retry_after_s = retry_after_s
        self.log = log
        self.serve_stats = ServeStats()
        # The batcher's planning logic is engine-free: it only sees this
        # opaque handler, so swapping in a sharded/multiprocess handler
        # later does not touch the queueing or deadline machinery.
        self.batcher: MicroBatcher[SizingRequest, SizingResponse] = MicroBatcher(
            handler if handler is not None else engine.size_batch,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            queue_depth=queue_depth,
            concurrent_batches=concurrent_batches,
            stats=self.serve_stats,
        )

    # ------------------------------------------------------------------
    def health_payload(self) -> dict[str, Any]:
        """The ``GET /healthz`` document, pool-aware for sharded engines.

        ``draining`` during shutdown; otherwise a sharded engine's
        ``health()`` verdict (``degraded`` while any worker is down or
        restarting, with the per-worker states inline) or plain ``ok``.
        """
        if self.batcher.closed:
            return {"status": "draining"}
        health = getattr(self.engine, "health", None)
        if health is not None:
            return health()
        return {"status": "ok"}

    def stats_payload(self) -> dict[str, Any]:
        """The ``GET /stats`` document: engine + cache + server counters.

        For a sharded engine the ``engine`` block is already the
        pool-wide aggregate (summed worker counters); ``workers`` adds
        the per-worker breakdown — batch counts, restart counts, live
        cache view — plus a ``total`` row merged with
        :func:`~repro.serve.stats.aggregate_counter_payloads`.
        """
        cache = self.engine.cache
        payload = {
            "engine": self.engine.stats.as_dict(),
            "cache": cache.as_dict() if cache is not None else None,
            "server": self.serve_stats.as_dict(
                queue_depth=self.batcher.queue_depth(),
                queue_capacity=self.batcher.queue_capacity,
            ),
        }
        workers_payload = getattr(self.engine, "workers_payload", None)
        if workers_payload is not None:
            workers = workers_payload()
            summable = ("requests", "batches", "cache_hits", "restarts")
            payload["workers"] = {
                "workers": workers,
                "total": aggregate_counter_payloads(
                    [{key: worker[key] for key in summable} for worker in workers]
                ),
            }
        return payload

    def shutdown_gracefully(self, timeout: float | None = None) -> None:
        """Stop accepting, drain the queue, then close the socket.

        Every already-accepted request still gets its response: the
        batcher flushes pending submissions (reason ``drain``) and the
        blocked handler threads write their answers before the listener
        closes.  Requires ``serve_forever`` to be running in another
        thread (as :func:`create_server` callers do).
        """
        self.shutdown()
        self.batcher.close(timeout=timeout)
        self.server_close()


def create_server(
    engine: SizingEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> SizingServer:
    """Bind a :class:`SizingServer` (``port=0`` picks an ephemeral port).

    The caller owns the serving loop::

        server = create_server(engine, port=8080, max_wait_ms=10.0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown_gracefully()
    """
    return SizingServer((host, port), engine, **kwargs)


def serve_forever_in_thread(server: SizingServer) -> threading.Thread:
    """Start ``serve_forever`` on a daemon thread and return it."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-listener", daemon=True
    )
    thread.start()
    return thread
