"""Server-level serving counters (queue, batching, latency).

The engine has its own :class:`~repro.service.EngineStats`; this module
tracks what happens *in front of* the engine — how many requests hit the
HTTP layer, how the micro-batcher coalesced them, how long they waited
end to end — so ``GET /stats`` can show where time goes (queueing vs
solving) and whether the dynamic batching is actually forming batches.

All mutation goes through one lock: the recorder is called from the
dispatcher thread and from every HTTP handler thread concurrently, and
``as_dict`` must produce a consistent snapshot for ``/stats``.
"""

from __future__ import annotations

import math
import threading
from collections import Counter, deque
from collections.abc import Sequence
from typing import Any

__all__ = ["ServeStats", "aggregate_counter_payloads"]

#: Flush reasons the micro-batcher reports (see ``MicroBatcher``):
#: ``size`` — the batch reached ``max_batch_size``; ``timeout`` — the
#: ``max_wait_ms`` window closed first; ``drain`` — a graceful shutdown
#: flushed whatever was queued without waiting out the window.
FLUSH_REASONS = ("size", "timeout", "drain")


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


def aggregate_counter_payloads(payloads: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-worker stats snapshots into one pool-wide payload.

    Sums numeric counters key-wise and merges one level of nested dicts
    (histograms: batch sizes, flush reasons) by summing their numeric
    leaves.  Keys whose values aren't numbers or dicts-of-numbers (pids,
    state strings, paths) are dropped — a sum of pids is noise, not a
    statistic.  Used by ``/stats`` to publish a ``workers.total`` block
    next to the per-worker breakdown, and shared with any client that
    wants to aggregate snapshots the same way the server does.
    """
    totals: dict[str, Any] = {}
    for payload in payloads:
        for key, value in payload.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                totals[key] = totals.get(key, 0) + value
            elif isinstance(value, dict):
                bucket = totals.setdefault(key, {})
                for sub_key, sub_value in value.items():
                    if isinstance(sub_value, bool) or not isinstance(
                        sub_value, (int, float)
                    ):
                        continue
                    bucket[sub_key] = bucket.get(sub_key, 0) + sub_value
    return totals


class ServeStats:
    """Thread-safe serving counters for one server instance.

    Latencies are kept in a bounded window (most recent ``latency_window``
    completions), so the p50/p95/p99 shown by ``/stats`` track current
    behavior instead of averaging over the server's whole lifetime.
    """

    def __init__(self, latency_window: int = 2048):
        self._lock = threading.Lock()
        #: Requests accepted into the queue (excludes rejected/bad ones).
        self.received = 0
        #: Requests answered with a sizing response.
        self.served = 0
        #: Requests that failed inside the batch handler (HTTP 500).
        self.failed = 0
        #: Request bodies that failed validation (HTTP 400).
        self.bad_requests = 0
        #: Requests rejected because the queue was full (HTTP 503).
        self.rejected_queue_full = 0
        #: Requests whose deadline expired before dispatch (HTTP 504).
        self.expired_deadline = 0
        #: Batches handed to the engine (coalescing means batches < served).
        self.batches = 0
        self.batch_size_histogram: Counter[int] = Counter()
        self.flush_reasons: Counter[str] = Counter()
        self._latencies: deque[float] = deque(maxlen=latency_window)

    # ------------------------------------------------------------------
    # Recorders (called by the batcher and the HTTP handlers)
    # ------------------------------------------------------------------
    def record_received(self) -> None:
        with self._lock:
            self.received += 1

    def record_bad_request(self) -> None:
        with self._lock:
            self.bad_requests += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected_queue_full += 1

    def record_expired(self) -> None:
        with self._lock:
            self.expired_deadline += 1

    def record_batch(self, size: int, reason: str) -> None:
        with self._lock:
            self.batches += 1
            self.batch_size_histogram[size] += 1
            self.flush_reasons[reason] += 1

    def record_served(self, latency_s: float) -> None:
        with self._lock:
            self.served += 1
            self._latencies.append(latency_s)

    def record_failed(self, count: int = 1) -> None:
        with self._lock:
            self.failed += count

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def latency_ms(self) -> dict[str, Any]:
        """p50/p95/p99/max over the recent-completion window, in ms."""
        with self._lock:
            values = sorted(self._latencies)
        if not values:
            return {"count": 0, "p50": None, "p95": None, "p99": None, "max": None}
        return {
            "count": len(values),
            "p50": _percentile(values, 0.50) * 1e3,
            "p95": _percentile(values, 0.95) * 1e3,
            "p99": _percentile(values, 0.99) * 1e3,
            "max": values[-1] * 1e3,
        }

    def as_dict(
        self,
        queue_depth: int | None = None,
        queue_capacity: int | None = None,
    ) -> dict[str, Any]:
        """One consistent JSON-ready snapshot (the ``server`` stats block)."""
        latency = self.latency_ms()
        with self._lock:
            payload: dict[str, Any] = {
                "received": self.received,
                "served": self.served,
                "failed": self.failed,
                "bad_requests": self.bad_requests,
                "rejected_queue_full": self.rejected_queue_full,
                "expired_deadline": self.expired_deadline,
                "batches": self.batches,
                # JSON object keys are strings; sort for stable output.
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(self.batch_size_histogram.items())
                },
                "flush_reasons": {
                    reason: self.flush_reasons.get(reason, 0) for reason in FLUSH_REASONS
                },
            }
        payload["latency_ms"] = latency
        if queue_depth is not None:
            payload["queue_depth"] = queue_depth
        if queue_capacity is not None:
            payload["queue_capacity"] = queue_capacity
        return payload
