"""Shared request validation and structured error reporting.

One request schema, two transports: the JSONL CLI (``python -m repro
size``) and the HTTP serving layer (``python -m repro serve``) both
parse :class:`~repro.service.SizingRequest` payloads through the helpers
here, so a malformed JSONL line and a malformed HTTP body produce the
*same* structured error payload — a :class:`~repro.service.SizingResponse`
with ``success=false`` and a ``"bad request line: ..."`` error message —
and consumers can parse either stream with one schema.

The HTTP transport additionally understands one serving-only key,
``deadline_ms``: a per-request latency budget honored by the
micro-batcher at dequeue time.  It is a *transport* concern (how long
the caller is willing to wait), not part of the sizing problem, so it is
stripped here before the shared :meth:`SizingRequest.from_json`
validation and never reaches the engine or the cache key.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Any

from ..service.requests import SizingRequest, SizingResponse

__all__ = [
    "RequestError",
    "parse_request_payload",
    "parse_request_text",
    "invalid_request_response",
    "error_response",
    "BAD_REQUEST_PREFIX",
    "DEADLINE_KEY",
]

#: Error-message prefix of a request that failed validation; shared by
#: the CLI's bad-line responses and the HTTP 400 payloads (pinned by
#: tests on both transports).
BAD_REQUEST_PREFIX = "bad request line"

#: Serving-only payload key: per-request deadline in milliseconds.
DEADLINE_KEY = "deadline_ms"


class RequestError(ValueError):
    """A request payload that failed validation (transport-agnostic)."""


def parse_request_payload(
    payload: Any, *, allow_deadline: bool = False
) -> tuple[SizingRequest, float | None]:
    """Validate one decoded JSON payload into ``(request, deadline_ms)``.

    ``allow_deadline`` enables the serving-only ``deadline_ms`` key (the
    JSONL CLI rejects it like any other unknown field: there is no queue
    to expire from in an offline stream).  Raises :class:`RequestError`
    with a transport-neutral message on any validation failure.
    """
    if not isinstance(payload, Mapping):
        raise RequestError("request payload must be a JSON object")
    deadline_ms: float | None = None
    if allow_deadline and DEADLINE_KEY in payload:
        payload = dict(payload)
        raw = payload.pop(DEADLINE_KEY)
        if raw is not None:
            try:
                deadline_ms = float(raw)
            except (TypeError, ValueError):
                raise RequestError(
                    f"{DEADLINE_KEY} must be a number of milliseconds"
                ) from None
            if not deadline_ms > 0:
                raise RequestError(f"{DEADLINE_KEY} must be positive")
    try:
        request = SizingRequest.from_json(payload)
    except (ValueError, KeyError, TypeError) as error:
        raise RequestError(str(error)) from error
    return request, deadline_ms


def parse_request_text(
    text: str, *, allow_deadline: bool = False
) -> tuple[SizingRequest, float | None]:
    """Parse one JSON document (a JSONL line or an HTTP body)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise RequestError(f"invalid JSON: {error}") from error
    return parse_request_payload(payload, allow_deadline=allow_deadline)


def error_response(
    message: str,
    request_id: str = "",
    topology: str = "",
    method: str = "copilot",
) -> SizingResponse:
    """A failure response in the standard wire schema.

    Every serving failure — bad payload, full queue, expired deadline,
    handler error — comes back in the same :class:`SizingResponse` shape
    as a served request, so clients parse one schema for all outcomes.
    """
    return SizingResponse(
        request_id=request_id,
        topology=topology,
        method=method,
        success=False,
        widths=None,
        metrics=None,
        iterations=0,
        spice_simulations=0,
        wall_time_s=0.0,
        error=message,
    )


def invalid_request_response(message: str) -> SizingResponse:
    """The structured payload for a request that failed validation.

    Identical for a malformed JSONL line and a malformed HTTP body —
    this is the single constructor both transports use.
    """
    return error_response(f"{BAD_REQUEST_PREFIX}: {message}")
