"""Performance specifications and satisfaction checks.

The paper's specification vector is (gain, 3 dB bandwidth, UGF), all
treated as *minimum* requirements: Tables III/V/VII report success when the
optimized circuit meets or exceeds every target.

The transient extension adds three optional time-domain targets measured
on the step response (:mod:`repro.spice.tran`): a **minimum** slew rate,
a **maximum** settling time and a **maximum** overshoot.  They default to
``None`` (not specified), so a spec without them behaves bit-identically
to the pre-transient three-metric spec -- same equality, same
``miss_fractions`` keys, same hash.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from ..spice import TRAN_METRIC_DIRECTIONS, PerformanceMetrics

__all__ = ["DesignSpec"]

#: Transient spec fields and their direction: ``min`` targets are floors
#: (measured value must be >=), ``max`` targets are ceilings (<=).  The
#: canonical map lives beside the metric extraction in
#: :mod:`repro.spice.metrics`.
_TRAN_FIELDS = TRAN_METRIC_DIRECTIONS


@dataclass(frozen=True)
class DesignSpec:
    """Minimum targets for the three OTA metrics, plus optional transient
    targets (min slew rate, max settling time, max overshoot)."""

    gain_db: float
    f3db_hz: float
    ugf_hz: float
    slew_v_per_s: float | None = None
    settling_time_s: float | None = None
    overshoot_frac: float | None = None

    def __post_init__(self) -> None:
        if self.gain_db <= 0 or self.f3db_hz <= 0 or self.ugf_hz <= 0:
            raise ValueError(f"spec targets must be positive: {self}")
        for name in _TRAN_FIELDS:
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"spec target {name} must be positive when set: {self}")

    # ------------------------------------------------------------------
    @property
    def requires_tran(self) -> bool:
        """True when any transient target is set (a transient analysis is
        needed to judge this spec)."""
        return any(getattr(self, name) is not None for name in _TRAN_FIELDS)

    def tran_targets(self) -> dict[str, float]:
        """The transient targets that are set, keyed by field name."""
        return {
            name: getattr(self, name)
            for name in _TRAN_FIELDS
            if getattr(self, name) is not None
        }

    # ------------------------------------------------------------------
    def satisfied(self, metrics: PerformanceMetrics, rel_tol: float = 0.0) -> bool:
        """True when every measured metric meets its target.

        ``rel_tol`` loosens each target by a relative fraction (useful for
        "within 1%" success accounting): minimum targets are lowered,
        maximum targets raised.  Transient targets are judged only when
        set; a set target whose metric was never measured (``None``) or is
        non-finite fails.
        """
        if not metrics.is_valid():
            return False
        if not (
            metrics.gain_db >= self.gain_db * (1.0 - rel_tol)
            and metrics.f3db_hz >= self.f3db_hz * (1.0 - rel_tol)
            and metrics.ugf_hz >= self.ugf_hz * (1.0 - rel_tol)
        ):
            return False
        for name, direction in _TRAN_FIELDS.items():
            target = getattr(self, name)
            if target is None:
                continue
            value = getattr(metrics, name)
            if value is None or not math.isfinite(value):
                return False
            if direction == "min":
                if value < target * (1.0 - rel_tol):
                    return False
            elif value > target * (1.0 + rel_tol):
                return False
        return True

    def miss_fractions(self, metrics: PerformanceMetrics) -> dict[str, float]:
        """Relative shortfall per metric (0 when the target is met).

        Keys are exactly the targets this spec sets: always the AC triple,
        plus one entry per set transient target -- so specs without
        transient targets keep the pre-transient dict shape.  Maximum
        targets (settling, overshoot) contribute their relative *excess*;
        an unmeasured or non-finite metric contributes 1.0.
        """
        def shortfall(target: float, value: float | None) -> float:
            if value is None or not (value == value):  # None or NaN
                return 1.0
            return max(0.0, (target - value) / target)

        def excess(target: float, value: float | None) -> float:
            if value is None or not (value == value):
                return 1.0
            return max(0.0, (value - target) / target)

        misses = {
            "gain_db": shortfall(self.gain_db, metrics.gain_db),
            "f3db_hz": shortfall(self.f3db_hz, metrics.f3db_hz),
            "ugf_hz": shortfall(self.ugf_hz, metrics.ugf_hz),
        }
        for name, direction in _TRAN_FIELDS.items():
            target = getattr(self, name)
            if target is None:
                continue
            value = getattr(metrics, name)
            misses[name] = (
                shortfall(target, value) if direction == "min" else excess(target, value)
            )
        return misses

    def scaled(self, factors: dict[str, float]) -> DesignSpec:
        """Return a spec with each named target multiplied by its factor.

        Targets without a factor (and unset transient targets) are
        carried over unchanged.
        """
        updates = {}
        for field_ in fields(self):
            value = getattr(self, field_.name)
            if value is not None and field_.name in factors:
                updates[field_.name] = value * factors[field_.name]
        return replace(self, **updates)

    @classmethod
    def from_metrics(cls, metrics: PerformanceMetrics, slack: float = 0.0) -> DesignSpec:
        """Spec targeting a measured design's metrics (optionally derated).

        ``slack`` derates each target by a relative fraction, which makes
        achievable validation specs from held-out designs: minimum targets
        are lowered, maximum targets (settling, overshoot) raised.
        Transient targets are adopted only when the metrics carry them
        (and, for max targets, only when positive -- a perfectly monotone
        0.0 overshoot cannot be a positive ceiling).
        """
        kwargs = {}
        for name, direction in _TRAN_FIELDS.items():
            value = getattr(metrics, name)
            if value is None or not math.isfinite(value):
                continue
            derated = value * (1.0 - slack) if direction == "min" else value * (1.0 + slack)
            if derated > 0:
                kwargs[name] = derated
        return cls(
            gain_db=metrics.gain_db * (1.0 - slack),
            f3db_hz=metrics.f3db_hz * (1.0 - slack),
            ugf_hz=metrics.ugf_hz * (1.0 - slack),
            **kwargs,
        )
