"""Performance specifications and satisfaction checks.

The paper's specification vector is (gain, 3 dB bandwidth, UGF), all
treated as *minimum* requirements: Tables III/V/VII report success when the
optimized circuit meets or exceeds every target.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..spice import PerformanceMetrics

__all__ = ["DesignSpec"]


@dataclass(frozen=True)
class DesignSpec:
    """Minimum targets for the three OTA metrics."""

    gain_db: float
    f3db_hz: float
    ugf_hz: float

    def __post_init__(self) -> None:
        if self.gain_db <= 0 or self.f3db_hz <= 0 or self.ugf_hz <= 0:
            raise ValueError(f"spec targets must be positive: {self}")

    # ------------------------------------------------------------------
    def satisfied(self, metrics: PerformanceMetrics, rel_tol: float = 0.0) -> bool:
        """True when every measured metric meets its minimum target.

        ``rel_tol`` loosens each target by a relative fraction (useful for
        "within 1%" success accounting).
        """
        if not metrics.is_valid():
            return False
        return (
            metrics.gain_db >= self.gain_db * (1.0 - rel_tol)
            and metrics.f3db_hz >= self.f3db_hz * (1.0 - rel_tol)
            and metrics.ugf_hz >= self.ugf_hz * (1.0 - rel_tol)
        )

    def miss_fractions(self, metrics: PerformanceMetrics) -> dict[str, float]:
        """Relative shortfall per metric (0 when the target is met)."""
        def shortfall(target: float, value: float) -> float:
            if not (value == value):  # NaN
                return 1.0
            return max(0.0, (target - value) / target)

        return {
            "gain_db": shortfall(self.gain_db, metrics.gain_db),
            "f3db_hz": shortfall(self.f3db_hz, metrics.f3db_hz),
            "ugf_hz": shortfall(self.ugf_hz, metrics.ugf_hz),
        }

    def scaled(self, factors: dict[str, float]) -> "DesignSpec":
        """Return a spec with each target multiplied by its factor."""
        return DesignSpec(
            gain_db=self.gain_db * factors.get("gain_db", 1.0),
            f3db_hz=self.f3db_hz * factors.get("f3db_hz", 1.0),
            ugf_hz=self.ugf_hz * factors.get("ugf_hz", 1.0),
        )

    @classmethod
    def from_metrics(cls, metrics: PerformanceMetrics, slack: float = 0.0) -> "DesignSpec":
        """Spec targeting a measured design's metrics (optionally derated).

        ``slack`` derates each target by a relative fraction, which makes
        achievable validation specs from held-out designs.
        """
        return cls(
            gain_db=metrics.gain_db * (1.0 - slack),
            f3db_hz=metrics.f3db_hz * (1.0 - slack),
            ugf_hz=metrics.ugf_hz * (1.0 - slack),
        )
