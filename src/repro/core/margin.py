"""Specification margin allocation (Stage IV, Sec. III-E).

When the one verification SPICE simulation reveals a shortfall, the paper's
"copilot" mode re-invokes the fast inference path with *tighter*
specifications: a 10% gain shortfall becomes a 10% (plus padding) tighter
gain request, until the original specification is met.
"""

from __future__ import annotations

from dataclasses import replace

from ..spice import PerformanceMetrics
from .specs import DesignSpec

__all__ = ["tighten_spec"]


def tighten_spec(
    request: DesignSpec,
    original: DesignSpec,
    measured: PerformanceMetrics,
    padding: float = 0.03,
    max_factor: float = 1.5,
) -> DesignSpec:
    """Tighten the *requested* spec to close the measured shortfall.

    Parameters
    ----------
    request:
        The spec most recently handed to the inference path (it may already
        be tighter than the designer's original).
    original:
        The designer's true requirement; shortfalls are measured against it.
    measured:
        Metrics of the verification simulation.
    padding:
        Extra relative margin stacked on each shortfall so the next attempt
        overshoots slightly rather than landing on the edge.
    max_factor:
        Cap on the cumulative tightening relative to the original spec,
        keeping requests inside the plausible training distribution.
    """
    misses = original.miss_fractions(measured)
    # Only the AC triple is tightened: the encoder serializes exactly
    # (gain, f3dB, UGF), so transient shortfalls cannot be expressed to
    # the inference path -- transient targets ride along unchanged and
    # keep being judged by Stage IV against the original spec.
    factors: dict[str, float] = {}
    for name in ("gain_db", "f3db_hz", "ugf_hz"):
        miss = misses[name]
        factors[name] = 1.0 if miss <= 0.0 else 1.0 + miss + padding
    tightened = request.scaled(factors)
    # Cap cumulative tightening against the original request (transient
    # fields are preserved by replace()).
    capped = replace(
        tightened,
        gain_db=min(tightened.gain_db, original.gain_db * max_factor),
        f3db_hz=min(tightened.f3db_hz, original.f3db_hz * max_factor),
        ugf_hz=min(tightened.ugf_hz, original.ugf_hz * max_factor),
    )
    return capped
