"""The end-to-end sizing flow (Fig. 3): Stages I-IV glued together.

``SizingFlow.size`` takes a specification and produces a fully sized
netlist:

* Stage I/II -- the spec is serialized, tokenized and translated by the
  transformer into device parameters;
* Stage III -- Algorithm 1 converts parameters to widths through the LUTs;
* Stage IV -- one SPICE verification; on a shortfall, the copilot loop
  tightens the requested spec (margin allocation) and re-runs inference.

The flow counts verification SPICE simulations explicitly: the headline
claim of the paper is that >90% of designs need exactly one.

Since the service redesign, ``SizingFlow`` is a thin single-topology,
single-spec facade over :class:`repro.service.SizingEngine`, which owns
the shared implementation and additionally batches inference across many
requests (``engine.size_batch``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..spice import PerformanceMetrics
from ..topologies import OTATopology
from .bundle import SizingModel
from .specs import DesignSpec

__all__ = ["SizingFlow", "SizingResult", "IterationTrace"]


@dataclass
class IterationTrace:
    """Diagnostics of one copilot iteration."""

    requested_spec: DesignSpec
    decoded_text: str
    parsed_ok: bool
    widths: dict[str, float] | None
    metrics: PerformanceMetrics | None
    satisfied: bool


@dataclass
class SizingResult:
    """Outcome of one sizing request.

    On corner-aware requests, ``metrics`` refers to the binding *worst*
    corner (a design passes only when every corner passes),
    ``corner_metrics`` carries the per-corner measurements keyed by corner
    name, and ``worst_corner`` names the binding corner.
    """

    success: bool
    spec: DesignSpec
    widths: dict[str, float] | None
    metrics: PerformanceMetrics | None
    iterations: int
    spice_simulations: int
    wall_time_s: float
    trace: list[IterationTrace] = field(default_factory=list)
    corner_metrics: dict[str, PerformanceMetrics] | None = None
    worst_corner: str | None = None

    @property
    def single_simulation(self) -> bool:
        """True when the very first verification already satisfied specs."""
        return self.success and self.spice_simulations == 1


class SizingFlow:
    """Sizes one OTA topology against specifications using a trained model.

    Delegates to a private, cache-free :class:`~repro.service.SizingEngine`
    so the sequential path and ``engine.size_batch`` share one
    implementation (and stay bit-identical, which the parity tests pin).
    """

    def __init__(
        self,
        topology: OTATopology,
        model: SizingModel,
        width_bounds: tuple[float, float] = (0.1e-6, 200e-6),
        max_candidate_spread: float = 5.0,
        backend=None,
    ):
        # Local import: repro.service builds on repro.core.
        from ..service.engine import SizingEngine

        self.topology = topology
        self.model = model
        self._engine = SizingEngine(
            model,
            cache_size=0,
            width_bounds=width_bounds,
            max_candidate_spread=max_candidate_spread,
            backend=backend,
        )
        self._engine.adopt_topology(topology)

    # ------------------------------------------------------------------
    # Engine-backed knobs (kept as mutable attributes for back-compat)
    # ------------------------------------------------------------------
    @property
    def width_bounds(self) -> tuple[float, float]:
        return self._engine.width_bounds

    @width_bounds.setter
    def width_bounds(self, bounds: tuple[float, float]) -> None:
        self._engine.width_bounds = bounds

    @property
    def max_candidate_spread(self) -> float:
        return self._engine.max_candidate_spread

    @max_candidate_spread.setter
    def max_candidate_spread(self, spread: float) -> None:
        self._engine.max_candidate_spread = spread

    def _sync_engine(self) -> None:
        """Honor post-construction reassignment of ``topology``/``model``
        (the pre-engine implementation read both on every call)."""
        self._engine.model = self.model
        self._engine.adopt_topology(self.topology)

    # ------------------------------------------------------------------
    def widths_from_params(
        self, parsed_values: dict[str, dict[str, float]]
    ) -> dict[str, float] | None:
        """Stage III: translate per-group device parameters into widths.

        Returns ``None`` when the predicted parameters are physically
        inconsistent (width candidates disagree beyond
        :attr:`max_candidate_spread`), signalling the caller to retry
        inference instead of wasting a verification simulation.
        """
        self._sync_engine()
        return self._engine.widths_from_params(self.topology, parsed_values)

    # ------------------------------------------------------------------
    def size(
        self,
        spec: DesignSpec,
        max_iterations: int = 6,
        rel_tol: float = 0.0,
        corners: Sequence = (),
        analyses: Sequence[str] | None = None,
    ) -> SizingResult:
        """Run the full Fig. 3 flow for one specification.

        ``corners`` (PVT preset names or :class:`~repro.devices.Corner`
        objects) turns Stage IV into a worst-case-across-corners
        verification: the result succeeds only when every corner meets the
        spec, and reports per-corner metrics plus the binding corner.

        ``analyses`` selects the Stage IV measurement pipeline (see
        :func:`repro.topologies.resolve_analyses`); a spec with transient
        targets pulls the transient analysis in automatically.
        """
        return self.size_many(
            [spec],
            max_iterations=max_iterations,
            rel_tol=rel_tol,
            corners=corners,
            analyses=analyses,
        )[0]

    def size_many(
        self,
        specs: Sequence[DesignSpec],
        max_iterations: int = 6,
        rel_tol: float = 0.0,
        corners: Sequence = (),
        analyses: Sequence[str] | None = None,
    ) -> list[SizingResult]:
        """Run the flow for many specifications with batched inference
        and batched verification.

        Every copilot round fuses all still-active specs into one greedy
        decode (``SizingEngine.size_results``) and verifies the round's
        surviving candidates in one ``measure_many`` call; results are
        bit-identical to calling :meth:`size` per spec, in input order,
        with full iteration traces.  With ``corners`` the round's
        verification stacks the corner axis into the same batched solves
        (see :meth:`size`); with transient analyses the round's
        step-response integrations batch the same way.
        """
        from ..service.requests import SizingRequest

        self._sync_engine()
        extra = {} if analyses is None else {"analyses": tuple(analyses)}
        requests = [
            SizingRequest(
                topology=self.topology.name,
                spec=spec,
                max_iterations=max_iterations,
                rel_tol=rel_tol,
                corners=tuple(corners),
                **extra,
            )
            for spec in specs
        ]
        return self._engine.size_results(requests)
