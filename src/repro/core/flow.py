"""The end-to-end sizing flow (Fig. 3): Stages I-IV glued together.

``SizingFlow.size`` takes a specification and produces a fully sized
netlist:

* Stage I/II -- the spec is serialized, tokenized and translated by the
  transformer into device parameters;
* Stage III -- Algorithm 1 converts parameters to widths through the LUTs;
* Stage IV -- one SPICE verification; on a shortfall, the copilot loop
  tightens the requested spec (margin allocation) and re-runs inference.

The flow counts verification SPICE simulations explicitly: the headline
claim of the paper is that >90% of designs need exactly one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..lut import DeviceParams, estimate_width
from ..spice import ConvergenceError, PerformanceMetrics
from ..topologies import OTATopology
from .bundle import SizingModel
from .margin import tighten_spec
from .specs import DesignSpec

__all__ = ["SizingFlow", "SizingResult", "IterationTrace"]


@dataclass
class IterationTrace:
    """Diagnostics of one copilot iteration."""

    requested_spec: DesignSpec
    decoded_text: str
    parsed_ok: bool
    widths: Optional[dict[str, float]]
    metrics: Optional[PerformanceMetrics]
    satisfied: bool


@dataclass
class SizingResult:
    """Outcome of one sizing request."""

    success: bool
    spec: DesignSpec
    widths: Optional[dict[str, float]]
    metrics: Optional[PerformanceMetrics]
    iterations: int
    spice_simulations: int
    wall_time_s: float
    trace: list[IterationTrace] = field(default_factory=list)

    @property
    def single_simulation(self) -> bool:
        """True when the very first verification already satisfied specs."""
        return self.success and self.spice_simulations == 1


class SizingFlow:
    """Sizes one OTA topology against specifications using a trained model."""

    def __init__(
        self,
        topology: OTATopology,
        model: SizingModel,
        width_bounds: tuple[float, float] = (0.1e-6, 200e-6),
        max_candidate_spread: float = 5.0,
    ):
        self.topology = topology
        self.model = model
        self.width_bounds = width_bounds
        #: Reject an inference whose Algorithm-1 width candidates disagree
        #: by more than this relative spread: wildly inconsistent predicted
        #: parameters cannot describe any physical device, so re-inferring
        #: beats verifying a garbage design.
        self.max_candidate_spread = max_candidate_spread

    # ------------------------------------------------------------------
    def widths_from_params(
        self, parsed_values: dict[str, dict[str, float]]
    ) -> Optional[dict[str, float]]:
        """Stage III: translate per-group device parameters into widths.

        Returns ``None`` when the predicted parameters are physically
        inconsistent (width candidates disagree beyond
        :attr:`max_candidate_spread`), signalling the caller to retry
        inference instead of wasting a verification simulation.
        """
        widths: dict[str, float] = {}
        for group in self.topology.groups:
            params = parsed_values[group.name]
            tech = group.tech
            # gm/Id can never exceed the weak-inversion limit 1/(n*Ut); a
            # prediction above it is a transcription error on Id -- repair
            # it rather than letting Algorithm 1 chase an impossible point.
            gm_id_max = 0.95 / (tech.n_slope * tech.ut)
            id_value = max(params["id"], params["gm"] / gm_id_max)
            device_params = DeviceParams(
                gm=params["gm"],
                gds=params["gds"],
                cds=params["cds"],
                cgs=params["cgs"],
                id=id_value,
            )
            lut = self.model.lut_for(self.topology, group.name)
            estimate = estimate_width(device_params, lut, vdd=self.topology.vdd)
            if estimate.spread() > self.max_candidate_spread:
                return None
            low, high = self.width_bounds
            widths[group.name] = float(min(max(estimate.width, low), high))
        return widths

    # ------------------------------------------------------------------
    def size(
        self,
        spec: DesignSpec,
        max_iterations: int = 6,
        rel_tol: float = 0.0,
    ) -> SizingResult:
        """Run the full Fig. 3 flow for one specification."""
        start = time.perf_counter()
        trace: list[IterationTrace] = []
        spice_count = 0
        request = spec
        best: Optional[tuple[dict[str, float], PerformanceMetrics]] = None

        for iteration in range(1, max_iterations + 1):
            parsed, decoded_text = self.model.predict_params(self.topology.name, request)
            if not parsed.complete:
                trace.append(
                    IterationTrace(request, decoded_text, False, None, None, False)
                )
                # Unparseable output: nudge the request and retry inference.
                request = request.scaled({"gain_db": 1.01, "f3db_hz": 1.02, "ugf_hz": 1.02})
                continue

            widths = self.widths_from_params(parsed.values)
            if widths is None:
                trace.append(IterationTrace(request, decoded_text, True, None, None, False))
                request = request.scaled({"gain_db": 1.01, "f3db_hz": 1.02, "ugf_hz": 1.02})
                continue
            try:
                measurement = self.topology.measure(widths)
            except ConvergenceError:
                trace.append(IterationTrace(request, decoded_text, True, widths, None, False))
                request = request.scaled({"gain_db": 1.01, "f3db_hz": 1.02, "ugf_hz": 1.02})
                continue
            spice_count += 1
            metrics = measurement.metrics
            satisfied = spec.satisfied(metrics, rel_tol=rel_tol)
            trace.append(IterationTrace(request, decoded_text, True, widths, metrics, satisfied))
            if best is None:
                best = (widths, metrics)
            if satisfied:
                return SizingResult(
                    success=True,
                    spec=spec,
                    widths=widths,
                    metrics=metrics,
                    iterations=iteration,
                    spice_simulations=spice_count,
                    wall_time_s=time.perf_counter() - start,
                    trace=trace,
                )
            best = (widths, metrics)
            request = tighten_spec(request, spec, metrics)

        final_widths, final_metrics = best if best is not None else (None, None)
        return SizingResult(
            success=False,
            spec=spec,
            widths=final_widths,
            metrics=final_metrics,
            iterations=len(trace),
            spice_simulations=spice_count,
            wall_time_s=time.perf_counter() - start,
            trace=trace,
        )
