"""One-call training pipeline: datasets -> corpus -> transformer -> bundle.

This is the "one-time training phase" of the paper condensed into a single
entry point with disk caching, used by the examples and by every benchmark
that needs a trained model.  The cache key hashes the full configuration,
so benches sharing a configuration train exactly once.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from collections.abc import Callable

import numpy as np

from ..datagen import (
    DesignFilter,
    OTADataset,
    SequenceConfig,
    SequenceFormat,
    build_corpus,
    generate_dataset,
)
from ..devices import NMOS_65NM, PMOS_65NM
from ..lut import build_lut
from ..topologies import topology_by_name
from ..transformer import (
    Trainer,
    Transformer,
    TransformerConfig,
    WeightedCrossEntropy,
    numeric_token_weights,
)
from .bundle import SizingModel

__all__ = ["PipelineConfig", "PipelineArtifacts", "train_sizing_model", "BENCHMARK_CONFIG"]


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of the full training pipeline.

    The defaults are CPU-budget versions of the paper's setup (which used
    17k/25k/8k designs, a 720-d/12-head transformer and 40 epochs on an
    L40S GPU).  The *ratios* are preserved: the 5T-OTA contributes the
    most data per unique device, and one model serves all topologies.
    """

    designs_per_topology: tuple[tuple[str, int], ...] = (
        ("5T-OTA", 500),
        ("CM-OTA", 350),
        ("2S-OTA", 350),
    )
    seed: int = 0
    train_fraction: float = 0.8
    num_merges: int = 200
    decoder_format: str = "param_assignments"
    encoder_max_paths: int | None = None
    include_paths_in_encoder: bool = True
    d_model: int = 96
    n_heads: int = 8
    n_encoder_layers: int = 2
    n_decoder_layers: int = 2
    d_ff: int = 192
    dropout: float = 0.05
    epochs: int = 30
    learning_rate: float = 5e-4
    batch_size: int = 32
    max_len: int = 1024
    dtype: str = "float64"

    def cache_key(self) -> str:
        payload = json.dumps(asdict(self), sort_keys=True, default=str, allow_nan=False)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


#: The configuration used by the benchmark suite (scaled-down analogue of
#: the paper's 17k/25k/8k-design, 720-d, 40-epoch GPU run -- see DESIGN.md).
#: All benchmarks share this config so the one-time training phase runs
#: exactly once and is cached on disk.
BENCHMARK_CONFIG = PipelineConfig(
    designs_per_topology=(
        ("5T-OTA", 800),
        ("CM-OTA", 500),
        ("2S-OTA", 500),
    ),
    seed=0,
    num_merges=1200,
    encoder_max_paths=1,
    d_model=96,
    n_heads=8,
    n_encoder_layers=2,
    n_decoder_layers=2,
    d_ff=192,
    dropout=0.05,
    epochs=40,
    learning_rate=1e-3,
    batch_size=32,
    dtype="float32",
)


@dataclass
class PipelineArtifacts:
    """Everything the training pipeline produces."""

    model: SizingModel
    datasets: dict[str, OTADataset]
    train_records: dict[str, list]
    val_records: dict[str, list]
    training_seconds: float
    history_train_loss: list[float] = field(default_factory=list)
    history_val_loss: list[float] = field(default_factory=list)
    history_val_accuracy: list[float] = field(default_factory=list)


def train_sizing_model(
    config: PipelineConfig | None = None,
    cache_dir: Path | None = None,
    log: Callable[[str], None] | None = None,
) -> PipelineArtifacts:
    """Run (or load from cache) the one-time training phase.

    With ``cache_dir`` set, a finished run is stored under a key derived
    from ``config`` and reloaded on subsequent calls.
    """
    config = config or PipelineConfig()
    say = log or (lambda message: None)

    cache_path: Path | None = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / config.cache_key()
        if (cache_path / "bundle.json").exists():
            say(f"loading cached sizing model from {cache_path}")
            return _load_artifacts(cache_path, config)

    rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    # Stage 0: dataset generation (the SPICE-heavy part).
    datasets: dict[str, OTADataset] = {}
    for name, count in config.designs_per_topology:
        topology = topology_by_name(name)
        say(f"generating {count} designs for {name} ...")
        dataset = generate_dataset(
            topology,
            count,
            rng,
            design_filter=DesignFilter(topology, icmr_margin=0.05),
        )
        say(
            f"  {name}: {len(dataset)} accepted / {dataset.stats.attempted} attempted "
            f"({100 * dataset.stats.acceptance_rate:.1f}%)"
        )
        datasets[name] = dataset

    # ------------------------------------------------------------------
    # Stage I: serialization + tokenization.
    sequence_config = SequenceConfig(
        decoder_format=SequenceFormat(config.decoder_format),
        encoder_max_paths=config.encoder_max_paths,
        include_paths_in_encoder=config.include_paths_in_encoder,
    )
    split_rng = np.random.default_rng(config.seed + 1)
    train_records: dict[str, list] = {}
    val_records: dict[str, list] = {}
    train_datasets = []
    for name, dataset in datasets.items():
        train, val = dataset.split(config.train_fraction, split_rng)
        train_records[name] = train
        val_records[name] = val
        train_datasets.append(OTADataset(topology_name=name, records=train + val))
    corpus = build_corpus(train_datasets, sequence_config, num_merges=config.num_merges)

    # Re-tokenize the split separately so pairs match the records.
    def pairs_for(records_by_topology: dict[str, list]):
        from ..transformer import SequencePair

        pairs = []
        for name, records in records_by_topology.items():
            builder = corpus.builders[name]
            for record in records:
                enc = builder.encoder_text(record.gain_db, record.f3db_hz, record.ugf_hz)
                dec = builder.decoder_text(record.device_params)
                pairs.append(
                    SequencePair(
                        source=corpus.encode_text(enc), target=corpus.encode_text(dec)
                    )
                )
        return pairs

    train_pairs = pairs_for(train_records)
    val_pairs = pairs_for(val_records)
    say(f"corpus: vocab={len(corpus.vocab)} train={len(train_pairs)} val={len(val_pairs)}")

    # ------------------------------------------------------------------
    # Stage II: transformer training.
    model_config = TransformerConfig(
        vocab_size=len(corpus.vocab),
        d_model=config.d_model,
        n_heads=config.n_heads,
        n_encoder_layers=config.n_encoder_layers,
        n_decoder_layers=config.n_decoder_layers,
        d_ff=config.d_ff,
        dropout=config.dropout,
        max_len=config.max_len,
        seed=config.seed,
        dtype=config.dtype,
    )
    transformer = Transformer(model_config)
    class_weights = numeric_token_weights(corpus.vocab, numeric_weight=1.2)
    loss_fn = WeightedCrossEntropy(class_weights=class_weights, pad_id=corpus.vocab.pad_id)
    trainer = Trainer(
        transformer,
        loss_fn,
        pad_id=corpus.vocab.pad_id,
        bos_id=corpus.vocab.bos_id,
        eos_id=corpus.vocab.eos_id,
        lr=config.learning_rate,
        batch_size=config.batch_size,
        seed=config.seed,
    )
    start = time.perf_counter()
    history = trainer.fit(
        train_pairs,
        val_pairs,
        epochs=config.epochs,
        callback=lambda epoch, hist: say(
            f"  epoch {epoch:3d}: train {hist.train_loss[-1]:.4f} "
            f"val {hist.val_loss[-1]:.4f} acc {hist.val_accuracy[-1]:.3f}"
        ),
    )
    training_seconds = time.perf_counter() - start
    say(f"training finished in {training_seconds:.1f}s")

    # ------------------------------------------------------------------
    # Stage III: precomputed LUTs.
    luts = {
        NMOS_65NM.name: build_lut(NMOS_65NM),
        PMOS_65NM.name: build_lut(PMOS_65NM),
    }

    model = SizingModel.from_corpus(transformer, corpus, luts)
    artifacts = PipelineArtifacts(
        model=model,
        datasets=datasets,
        train_records=train_records,
        val_records=val_records,
        training_seconds=training_seconds,
        history_train_loss=history.train_loss,
        history_val_loss=history.val_loss,
        history_val_accuracy=history.val_accuracy,
    )
    if cache_path is not None:
        _save_artifacts(cache_path, artifacts)
        say(f"cached sizing model to {cache_path}")
    return artifacts


# ----------------------------------------------------------------------
# Cache I/O
# ----------------------------------------------------------------------
def _save_artifacts(path: Path, artifacts: PipelineArtifacts) -> None:
    path.mkdir(parents=True, exist_ok=True)
    artifacts.model.save(path)
    for name, dataset in artifacts.datasets.items():
        dataset.save(path / f"dataset_{name}.json")
    split_meta = {
        "train": {name: [r.to_json() for r in records] for name, records in artifacts.train_records.items()},
        "val": {name: [r.to_json() for r in records] for name, records in artifacts.val_records.items()},
        "training_seconds": artifacts.training_seconds,
        "history_train_loss": artifacts.history_train_loss,
        "history_val_loss": artifacts.history_val_loss,
        "history_val_accuracy": artifacts.history_val_accuracy,
    }
    # allow_nan=False: a diverged training history (NaN loss) must fail
    # here instead of writing unparseable JSON to the bundle directory.
    (path / "splits.json").write_text(json.dumps(split_meta, allow_nan=False))


def _load_artifacts(path: Path, config: PipelineConfig) -> PipelineArtifacts:
    from ..datagen.dataset import DesignRecord

    model = SizingModel.load(path)
    datasets: dict[str, OTADataset] = {}
    for name, _ in config.designs_per_topology:
        dataset_file = path / f"dataset_{name}.json"
        if dataset_file.exists():
            datasets[name] = OTADataset.load(dataset_file)
    splits = json.loads((path / "splits.json").read_text())
    train_records = {
        name: [DesignRecord.from_json(r) for r in records]
        for name, records in splits["train"].items()
    }
    val_records = {
        name: [DesignRecord.from_json(r) for r in records]
        for name, records in splits["val"].items()
    }
    return PipelineArtifacts(
        model=model,
        datasets=datasets,
        train_records=train_records,
        val_records=val_records,
        training_seconds=float(splits["training_seconds"]),
        history_train_loss=list(splits.get("history_train_loss", [])),
        history_val_loss=list(splits.get("history_val_loss", [])),
        history_val_accuracy=list(splits.get("history_val_accuracy", [])),
    )
