"""The paper's primary contribution: the end-to-end sizing flow."""

from .bundle import SizingModel
from .pipeline import PipelineArtifacts, PipelineConfig, train_sizing_model
from .evaluate import (
    PredictionSet,
    SizingStudy,
    correlation_table,
    predict_over_records,
    run_sizing_study,
)
from .flow import IterationTrace, SizingFlow, SizingResult
from .layout import ParasiticEstimate, evaluate_with_parasitics
from .margin import tighten_spec
from .specs import DesignSpec

__all__ = [
    "SizingModel",
    "PipelineArtifacts",
    "PipelineConfig",
    "train_sizing_model",
    "PredictionSet",
    "SizingStudy",
    "correlation_table",
    "predict_over_records",
    "run_sizing_study",
    "IterationTrace",
    "SizingFlow",
    "SizingResult",
    "ParasiticEstimate",
    "evaluate_with_parasitics",
    "tighten_spec",
    "DesignSpec",
]
