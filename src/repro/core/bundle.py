"""The trained sizing model bundle: transformer + tokenizer + LUTs.

Everything the inference path needs, packaged for persistence: after the
one-time training phase the bundle is saved to a directory and reloaded for
sizing sessions, mirroring the paper's deployment model (all SPICE cost in
training; inference uses only the transformer and the precomputed LUTs).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Sequence

import numpy as np

from ..datagen.dataset import TokenizedCorpus
from ..datagen.serialize import ParsedParams, SequenceBuilder, SequenceConfig, SequenceFormat
from ..lut import LookupTable
from ..nlp import RestrictedBPE, Vocabulary
from ..topologies import OTATopology, topology_by_name
from ..transformer import Transformer
from .specs import DesignSpec

__all__ = ["SizingModel"]


@dataclass
class SizingModel:  # checks: process-shared
    """Trained artifacts of Stages I-III.

    Marked ``process-shared``: the ROADMAP's multiprocess sharding will
    hand this bundle to worker processes, so the fork-safety rule keeps
    it (transitively) free of locks, threads, files, and bound callables.
    """

    transformer: Transformer
    bpe: RestrictedBPE
    vocab: Vocabulary
    sequence_config: SequenceConfig
    builders: dict[str, SequenceBuilder]
    luts: dict[str, LookupTable]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_corpus(
        cls,
        transformer: Transformer,
        corpus: TokenizedCorpus,
        luts: dict[str, LookupTable],
    ) -> SizingModel:
        any_builder = next(iter(corpus.builders.values()))
        return cls(
            transformer=transformer,
            bpe=corpus.bpe,
            vocab=corpus.vocab,
            sequence_config=any_builder.config,
            builders=dict(corpus.builders),
            luts=luts,
        )

    def builder(self, topology_name: str) -> SequenceBuilder:
        if topology_name not in self.builders:
            topology = topology_by_name(topology_name)
            self.builders[topology_name] = SequenceBuilder(topology, self.sequence_config)
        return self.builders[topology_name]

    def lut_for(self, topology: OTATopology, group_name: str) -> LookupTable:
        tech = topology.group(group_name).tech
        if tech.name not in self.luts:
            raise KeyError(f"no LUT for technology {tech.name!r}")
        return self.luts[tech.name]

    # ------------------------------------------------------------------
    # Inference (Stages I + II)
    # ------------------------------------------------------------------
    def predict_params(
        self, topology_name: str, spec: DesignSpec, max_len: int | None = None
    ) -> tuple[ParsedParams, str]:
        """Specs -> encoder sequence -> transformer -> parsed parameters.

        Returns the parsed per-device parameters and the raw decoded text
        (useful for inspection and failure analysis).
        """
        builder = self.builder(topology_name)
        encoder_text = builder.encoder_text(spec.gain_db, spec.f3db_hz, spec.ugf_hz)
        source_ids = self.vocab.encode(self.bpe.encode(encoder_text))
        src = np.asarray([source_ids], dtype=np.int64)
        src_pad = np.zeros_like(src, dtype=bool)
        decoded = self.transformer.greedy_decode(
            src, src_pad, self.vocab.bos_id, self.vocab.eos_id, max_len=max_len
        )[0]
        text = self.vocab.decode_to_text(decoded)
        return builder.parse_decoder_text(text), text

    def predict_params_batch(
        self,
        topology_name: str,
        specs: Sequence[DesignSpec],
        max_len: int | None = None,
    ) -> list[tuple[ParsedParams, str]]:
        """Batched :meth:`predict_params`: one decode for many specs.

        Sources are right-padded to a common length (the padding mask
        keeps padded positions out of every attention sum), and the
        decoder tracks EOS per sequence, so each row decodes exactly as
        it would alone while the matmuls amortize over the whole batch.
        """
        return self.predict_params_many({topology_name: list(specs)}, max_len)[topology_name]

    def predict_params_many(
        self,
        specs_by_topology: dict[str, list[DesignSpec]],
        max_len: int | None = None,
    ) -> dict[str, list[tuple[ParsedParams, str]]]:
        """Cross-topology batched inference: one decode for everything.

        One transformer serves every topology, so specs of *different*
        topologies can share a single padded greedy decode — only the
        encoder texts and the output parsers differ per topology.  Row
        independence (padding mask + per-sequence EOS) keeps each decoded
        text identical to the single-spec path.
        """
        sources: list[list[int]] = []
        for name, specs in specs_by_topology.items():
            builder = self.builder(name)
            sources.extend(
                self.vocab.encode(
                    self.bpe.encode(builder.encoder_text(s.gain_db, s.f3db_hz, s.ugf_hz))
                )
                for s in specs
            )
        results: dict[str, list[tuple[ParsedParams, str]]] = {
            name: [] for name in specs_by_topology
        }
        if not sources:
            return results
        longest = max(len(ids) for ids in sources)
        pad_id = self.vocab.pad_id
        src = np.full((len(sources), longest), pad_id, dtype=np.int64)
        src_pad = np.ones((len(sources), longest), dtype=bool)
        for row, ids in enumerate(sources):
            src[row, : len(ids)] = ids
            src_pad[row, : len(ids)] = False
        decoded = self.transformer.greedy_decode(
            src, src_pad, self.vocab.bos_id, self.vocab.eos_id, max_len=max_len
        )
        cursor = 0
        for name, specs in specs_by_topology.items():
            builder = self.builder(name)
            for ids in decoded[cursor : cursor + len(specs)]:
                text = self.vocab.decode_to_text(ids)
                results[name].append((builder.parse_decoder_text(text), text))
            cursor += len(specs)
        return results

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        self.transformer.save(path / "transformer.npz")
        meta = {
            "merges": [list(pair) for pair in self.bpe.merges],
            "num_merges": self.bpe.num_merges,
            "vocab": self.vocab.id_to_token,
            "sequence_config": {
                "decoder_format": self.sequence_config.decoder_format.value,
                "encoder_max_paths": self.sequence_config.encoder_max_paths,
                "specs_per_path": self.sequence_config.specs_per_path,
                "include_paths_in_encoder": self.sequence_config.include_paths_in_encoder,
            },
            "topologies": sorted(self.builders),
            "luts": sorted(self.luts),
        }
        (path / "bundle.json").write_text(json.dumps(meta, allow_nan=False))
        for tech_name, lut in self.luts.items():
            lut.save(path / f"lut_{tech_name}.npz")

    def export_shared_artifact(self, directory: str | Path):
        """Export a mmap-friendly artifact (see :mod:`repro.shard.artifact`).

        Unlike :meth:`save`'s ``.npz`` bundles (zip archives, which
        ``np.load`` cannot memory-map), the shared artifact is a single
        raw buffer that N sharding workers map read-only at ~1x total
        model memory.
        """
        from ..shard.artifact import export_artifact

        return export_artifact(self, directory)

    @classmethod
    def load_shared(cls, directory: str | Path) -> SizingModel:
        """Load a model whose arrays are read-only mmap views.

        Counterpart of :meth:`export_shared_artifact`; see
        :func:`repro.shard.artifact.load_shared_model`.
        """
        from ..shard.artifact import load_shared_model

        return load_shared_model(directory)

    @classmethod
    def load(cls, directory: str | Path) -> SizingModel:
        path = Path(directory)
        meta = json.loads((path / "bundle.json").read_text())
        transformer = Transformer.load(path / "transformer.npz")

        bpe = RestrictedBPE.from_merges(meta["merges"], num_merges=meta["num_merges"])

        vocab = Vocabulary()
        for token in meta["vocab"]:
            vocab.add(token)

        config_meta = meta["sequence_config"]
        sequence_config = SequenceConfig(
            decoder_format=SequenceFormat(config_meta["decoder_format"]),
            encoder_max_paths=config_meta["encoder_max_paths"],
            specs_per_path=config_meta["specs_per_path"],
            include_paths_in_encoder=config_meta["include_paths_in_encoder"],
        )
        builders = {
            name: SequenceBuilder(topology_by_name(name), sequence_config)
            for name in meta["topologies"]
        }
        luts = {
            tech_name: LookupTable.load(path / f"lut_{tech_name}.npz")
            for tech_name in meta["luts"]
        }
        return cls(
            transformer=transformer,
            bpe=bpe,
            vocab=vocab,
            sequence_config=sequence_config,
            builders=builders,
            luts=luts,
        )
