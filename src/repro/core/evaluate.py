"""Evaluation utilities: correlations, sizing studies, runtime accounting.

Regenerates the paper's evaluation quantities:

* Fig. 7 scatter data and Tables II/IV/VI -- correlation coefficients
  between transformer-predicted device parameters and the validation
  (simulation-based) values, per device group and parameter;
* Tables III/V/VII -- target-vs-optimized metrics via the full flow;
* Table VIII -- success-rate and runtime statistics of a sizing study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..datagen.dataset import DesignRecord
from ..topologies import OTATopology
from .bundle import SizingModel
from .flow import SizingFlow, SizingResult
from .specs import DesignSpec

__all__ = [
    "PredictionSet",
    "predict_over_records",
    "correlation_table",
    "SizingStudy",
    "run_sizing_study",
]

PARAM_KEYS = ("gm", "gds", "cds", "cgs")


@dataclass
class PredictionSet:
    """Aligned predicted/desired device parameters over validation designs.

    ``predicted[group][param]`` and ``desired[group][param]`` are equal-
    length lists; designs whose decoded output was unparseable are skipped
    and counted in ``parse_failures``.
    """

    topology_name: str
    predicted: dict[str, dict[str, list[float]]]
    desired: dict[str, dict[str, list[float]]]
    parse_failures: int = 0
    total: int = 0

    def arrays(self, group: str, param: str) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(self.desired[group][param]),
            np.asarray(self.predicted[group][param]),
        )


def predict_over_records(
    model: SizingModel,
    topology: OTATopology,
    records: Sequence[DesignRecord],
    batch_size: int = 32,
) -> PredictionSet:
    """Run inference for every record's specs; align with true parameters.

    This is the paper's validation protocol: the encoder sequence is built
    from the held-out design's *measured* metrics, so the recorded device
    parameters are a ground-truth the prediction should match (Fig. 7).
    Inference runs in batches of ``batch_size`` through the padded batch
    decoder (decoded texts are identical to the sequential path).
    """
    groups = [g.name for g in topology.groups]
    predicted = {g: {p: [] for p in PARAM_KEYS} for g in groups}
    desired = {g: {p: [] for p in PARAM_KEYS} for g in groups}
    failures = 0
    for start in range(0, len(records), max(1, batch_size)):
        chunk = records[start : start + max(1, batch_size)]
        specs = [DesignSpec(r.gain_db, r.f3db_hz, r.ugf_hz) for r in chunk]
        outputs = model.predict_params_batch(topology.name, specs)
        for record, (parsed, _) in zip(chunk, outputs, strict=True):
            if not parsed.complete:
                failures += 1
                continue
            for group in groups:
                for param in PARAM_KEYS:
                    predicted[group][param].append(parsed.values[group][param])
                    desired[group][param].append(record.device_params[group][param])
    return PredictionSet(
        topology_name=topology.name,
        predicted=predicted,
        desired=desired,
        parse_failures=failures,
        total=len(records),
    )


def correlation_table(predictions: PredictionSet) -> dict[str, dict[str, float]]:
    """Pearson correlation per (device group, parameter) -- Tables II/IV/VI."""
    table: dict[str, dict[str, float]] = {}
    for group, params in predictions.predicted.items():
        table[group] = {}
        for param in PARAM_KEYS:
            desired, predicted = predictions.arrays(group, param)
            if len(desired) < 2 or np.std(desired) == 0 or np.std(predicted) == 0:
                table[group][param] = float("nan")
                continue
            table[group][param] = float(np.corrcoef(desired, predicted)[0, 1])
    return table


@dataclass
class SizingStudy:
    """Aggregate outcome of sizing many specs (Table VIII row)."""

    topology_name: str
    results: list[SizingResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def single_iteration_successes(self) -> int:
        return sum(1 for r in self.results if r.single_simulation)

    @property
    def multi_iteration_successes(self) -> int:
        return sum(1 for r in self.results if r.success and not r.single_simulation)

    @property
    def failures(self) -> int:
        return sum(1 for r in self.results if not r.success)

    @property
    def success_rate(self) -> float:
        return (self.total - self.failures) / max(self.total, 1)

    def average_time(self, multi_only: bool = False) -> float:
        if multi_only:
            times = [r.wall_time_s for r in self.results if r.success and not r.single_simulation]
        else:
            times = [r.wall_time_s for r in self.results if r.single_simulation]
        return float(np.mean(times)) if times else float("nan")

    def average_iterations_multi(self) -> float:
        iterations = [
            r.iterations for r in self.results if r.success and not r.single_simulation
        ]
        return float(np.mean(iterations)) if iterations else float("nan")

    def average_spice_simulations(self) -> float:
        return float(np.mean([r.spice_simulations for r in self.results]))


def run_sizing_study(
    flow: SizingFlow,
    specs: Sequence[DesignSpec],
    max_iterations: int = 6,
    rel_tol: float = 0.0,
) -> SizingStudy:
    """Size every spec and collect Table VIII statistics.

    Runs through ``SizingFlow.size_many`` (the engine's batched path), so
    every copilot round fuses all still-active specs into one greedy
    decode; per-spec results are bit-identical to the sequential loop this
    used to be.
    """
    return SizingStudy(
        topology_name=flow.topology.name,
        results=flow.size_many(specs, max_iterations=max_iterations, rel_tol=rel_tol),
    )
