"""Layout-in-the-loop parasitic updates without SPICE (Sec. I claim).

The paper notes its framework "is flexible enough to be used within a
layout optimization loop: after sizing, a layout engine updates parasitics,
updating the parasitic values in the DP-SFG.  Our model ... can then be
re-invoked without further SPICE simulations."

The physics that makes this work: layout parasitics are capacitive, and
capacitances do not move the DC operating point.  So once a sized design
has been verified (one DC+AC simulation), any parasitic update only changes
*passive* values in the linearized circuit -- the DP-SFG built from the
existing operating point can be re-evaluated through Mason's gain formula,
no simulator in the loop.

:func:`evaluate_with_parasitics` implements exactly that: it reuses a
:class:`~repro.topologies.base.MeasurementResult`'s operating point, adds
extracted wiring capacitances, and recomputes gain / 3 dB BW / UGF from the
DP-SFG transfer function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

import numpy as np

from ..dpsfg import build_dpsfg, transfer_function
from ..spice import PerformanceMetrics, crossing_frequency, default_frequency_grid
from ..topologies import MeasurementResult, OTATopology

__all__ = ["ParasiticEstimate", "evaluate_with_parasitics"]


@dataclass(frozen=True)
class ParasiticEstimate:
    """Layout-extracted wiring capacitances.

    ``node_caps`` maps circuit nodes to added capacitance-to-ground (F);
    ``coupling_caps`` maps node pairs to added coupling capacitance (F).
    """

    node_caps: Mapping[str, float] = field(default_factory=dict)
    coupling_caps: Mapping[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for value in list(self.node_caps.values()) + list(self.coupling_caps.values()):
            if value < 0:
                raise ValueError("parasitic capacitances must be non-negative")


def evaluate_with_parasitics(
    topology: OTATopology,
    measurement: MeasurementResult,
    parasitics: ParasiticEstimate,
    frequencies: np.ndarray | None = None,
) -> PerformanceMetrics:
    """Re-evaluate metrics after a layout parasitic update -- no SPICE.

    Parameters
    ----------
    topology:
        The sized design's topology (identifies the output node).
    measurement:
        The verification measurement of the sized design; its DC operating
        point (unchanged by added capacitance) supplies the small-signal
        device parameters.
    parasitics:
        Extracted wiring capacitances to graft onto the netlist.
    frequencies:
        Evaluation grid (defaults to the simulator's standard grid).

    Returns
    -------
    PerformanceMetrics
        Gain / f3dB / UGF of the parasitic-laden design, computed purely
        from the DP-SFG via Mason's gain formula.
    """
    circuit = measurement.circuit.copy()
    for index, (node, value) in enumerate(sorted(parasitics.node_caps.items())):
        if value > 0:
            circuit.add_capacitor(f"CPAR{index}", node, "0", value)
    for index, ((node_a, node_b), value) in enumerate(
        sorted(parasitics.coupling_caps.items())
    ):
        if value > 0:
            circuit.add_capacitor(f"CPARX{index}", node_a, node_b, value)

    small_signals = {
        name: op.small_signal for name, op in measurement.dc.operating_points.items()
    }
    sfg = build_dpsfg(circuit, topology.output_node, small_signals)

    freqs = default_frequency_grid() if frequencies is None else np.asarray(frequencies, dtype=float)
    response = transfer_function(sfg, freqs)
    magnitude_db = 20.0 * np.log10(np.maximum(np.abs(response), 1e-20))
    gain_db = float(magnitude_db[0])
    return PerformanceMetrics(
        gain_db=gain_db,
        f3db_hz=crossing_frequency(freqs, magnitude_db, gain_db - 3.0),
        ugf_hz=crossing_frequency(freqs, magnitude_db, 0.0),
    )
