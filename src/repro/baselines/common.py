"""Shared infrastructure for the SPICE-in-the-loop sizing baselines.

Table IX compares the paper's approach against stochastic optimizers that
call SPICE inside their search loop (simulated annealing, particle swarm
optimization, differential evolution).  Since the solver redesign, the
algorithms themselves live in :mod:`repro.solvers` behind the unified
``Solver`` protocol; this package keeps the original function-style entry
points and result type as thin adapters.

``SearchSpace`` and the objective bookkeeping are re-exported from
:mod:`repro.solvers.base`, the one place that owns them now.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.specs import DesignSpec
from ..solvers.backend import EvalBackend, ScalarBackend
from ..solvers.base import PENALTY, SearchObjective, SearchSpace, SolveResult
from ..topologies import OTATopology

__all__ = ["SearchSpace", "Objective", "BaselineResult", "PENALTY"]


class Objective(SearchObjective):
    """Spec-shortfall objective with SPICE-call counting.

    The historical callable interface over the shared
    :class:`~repro.solvers.SearchObjective` bookkeeping; evaluates one
    point per call through the (sequential) scalar backend by default.
    """

    def __init__(
        self,
        topology: OTATopology,
        spec: DesignSpec,
        check_regions: bool = False,
        backend: EvalBackend | None = None,
    ):
        super().__init__(
            topology,
            spec,
            backend=backend if backend is not None else ScalarBackend(),
            check_regions=check_regions,
        )

    def __call__(self, point: np.ndarray) -> float:
        """Evaluate one normalized point; lower is better, 0 means success."""
        return self.evaluate_one(point)


@dataclass
class BaselineResult:
    """Outcome of one baseline optimizer run."""

    algorithm: str
    success: bool
    spice_calls: int
    wall_time_s: float
    best_value: float
    best_widths: dict[str, float] | None
    history: list[float] = field(default_factory=list)

    @classmethod
    def from_solve_result(cls, algorithm: str, result: SolveResult) -> BaselineResult:
        return cls(
            algorithm=algorithm,
            success=result.success,
            spice_calls=result.spice_calls,
            wall_time_s=result.wall_time_s,
            best_value=result.best_value,
            best_widths=result.best_widths,
            history=list(result.history),
        )
