"""Shared infrastructure for the SPICE-in-the-loop sizing baselines.

Table IX compares the paper's approach against stochastic optimizers that
call SPICE inside their search loop (simulated annealing, particle swarm
optimization, differential evolution).  All three share:

* the search space -- log-width coordinates per device group, so a point is
  a vector in ``[0, 1]^n`` mapped onto the group width bounds;
* the objective -- total relative shortfall against the specification
  (0 means every spec is met), with a penalty for designs that fail to
  converge or violate device regions;
* SPICE-call accounting, the quantity the paper's comparison hinges on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.specs import DesignSpec
from ..spice import ConvergenceError
from ..topologies import OTATopology

__all__ = ["SearchSpace", "Objective", "BaselineResult"]

#: Objective value assigned to non-simulatable / invalid designs.
PENALTY = 10.0


class SearchSpace:
    """Log-uniform box over per-group widths, normalized to [0, 1]^n."""

    def __init__(self, topology: OTATopology):
        self.topology = topology
        self.names = list(topology.group_names)
        self._log_low = np.array(
            [np.log(topology.group(name).width_bounds[0]) for name in self.names]
        )
        self._log_high = np.array(
            [np.log(topology.group(name).width_bounds[1]) for name in self.names]
        )

    @property
    def dimension(self) -> int:
        return len(self.names)

    def decode(self, point: np.ndarray) -> dict[str, float]:
        """[0,1]^n point -> width dictionary."""
        clipped = np.clip(np.asarray(point, dtype=float), 0.0, 1.0)
        log_widths = self._log_low + clipped * (self._log_high - self._log_low)
        return {name: float(np.exp(w)) for name, w in zip(self.names, log_widths)}

    def random_point(self, rng: np.random.Generator) -> np.ndarray:
        return rng.random(self.dimension)


class Objective:
    """Spec-shortfall objective with SPICE-call counting."""

    def __init__(
        self,
        topology: OTATopology,
        spec: DesignSpec,
        check_regions: bool = False,
    ):
        self.topology = topology
        self.spec = spec
        self.check_regions = check_regions
        self.space = SearchSpace(topology)
        self.spice_calls = 0
        self.best_value = float("inf")
        self.best_widths: Optional[dict[str, float]] = None

    def __call__(self, point: np.ndarray) -> float:
        """Evaluate one normalized point; lower is better, 0 means success."""
        widths = self.space.decode(point)
        self.spice_calls += 1
        try:
            result = self.topology.measure(widths)
        except ConvergenceError:
            return PENALTY
        if self.check_regions and not self.topology.regions_ok(result.dc):
            return PENALTY / 2.0
        misses = self.spec.miss_fractions(result.metrics)
        value = float(sum(misses.values()))
        if value < self.best_value:
            self.best_value = value
            self.best_widths = widths
        return value

    @property
    def satisfied(self) -> bool:
        return self.best_value <= 0.0


@dataclass
class BaselineResult:
    """Outcome of one baseline optimizer run."""

    algorithm: str
    success: bool
    spice_calls: int
    wall_time_s: float
    best_value: float
    best_widths: Optional[dict[str, float]]
    history: list[float] = field(default_factory=list)
