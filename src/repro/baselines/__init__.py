"""SPICE-in-the-loop sizing baselines for the Table IX comparison.

Since the solver redesign these are thin adapters over the registered
solvers in :mod:`repro.solvers` (``"sa"``, ``"pso"``, ``"de"``), kept
for the classic function-call interface and ``BaselineResult`` record.
"""

from .common import BaselineResult, Objective, SearchSpace
from .de import differential_evolution
from .pso import particle_swarm
from .sa import simulated_annealing

__all__ = [
    "BaselineResult",
    "Objective",
    "SearchSpace",
    "differential_evolution",
    "particle_swarm",
    "simulated_annealing",
]
