"""Simulated-annealing sizing baseline (Table IX, Gielen et al. style).

Function-style adapter over
:class:`repro.solvers.SimulatedAnnealingSolver`; see that module for the
algorithm.  Kept for back-compat and for callers that want the classic
``BaselineResult`` record instead of the unified ``SolveResult``.
"""

from __future__ import annotations

import numpy as np

from ..core.specs import DesignSpec
from ..solvers.annealing import SimulatedAnnealingSolver
from ..topologies import OTATopology
from .common import BaselineResult

__all__ = ["simulated_annealing"]


def simulated_annealing(
    topology: OTATopology,
    spec: DesignSpec,
    rng: np.random.Generator,
    max_evaluations: int = 500,
    initial_temperature: float = 1.0,
    cooling: float = 0.97,
    step_scale: float = 0.15,
    chains: int = 4,
) -> BaselineResult:
    """Minimize the spec shortfall with simulated annealing."""
    solver = SimulatedAnnealingSolver(
        topology,
        chains=chains,
        initial_temperature=initial_temperature,
        cooling=cooling,
        step_scale=step_scale,
    )
    result = solver.solve(spec, budget=max_evaluations, rng=rng)
    return BaselineResult.from_solve_result("SA", result)
