"""Simulated-annealing sizing baseline (Table IX, Gielen et al. style).

Gaussian moves in the normalized log-width space with a geometric cooling
schedule and Metropolis acceptance.  Terminates early as soon as the
specification shortfall reaches zero, so the reported SPICE-call count is
the cost *to reach a satisfying design*.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.specs import DesignSpec
from ..topologies import OTATopology
from .common import BaselineResult, Objective

__all__ = ["simulated_annealing"]


def simulated_annealing(
    topology: OTATopology,
    spec: DesignSpec,
    rng: np.random.Generator,
    max_evaluations: int = 500,
    initial_temperature: float = 1.0,
    cooling: float = 0.97,
    step_scale: float = 0.15,
) -> BaselineResult:
    """Minimize the spec shortfall with simulated annealing."""
    objective = Objective(topology, spec)
    start = time.perf_counter()

    current = objective.space.random_point(rng)
    current_value = objective(current)
    history = [objective.best_value]
    temperature = initial_temperature

    while objective.spice_calls < max_evaluations and not objective.satisfied:
        candidate = np.clip(
            current + rng.normal(0.0, step_scale, size=current.shape), 0.0, 1.0
        )
        candidate_value = objective(candidate)
        history.append(objective.best_value)
        delta = candidate_value - current_value
        if delta <= 0 or rng.random() < np.exp(-delta / max(temperature, 1e-9)):
            current = candidate
            current_value = candidate_value
        temperature *= cooling

    return BaselineResult(
        algorithm="SA",
        success=objective.satisfied,
        spice_calls=objective.spice_calls,
        wall_time_s=time.perf_counter() - start,
        best_value=objective.best_value,
        best_widths=objective.best_widths,
        history=history,
    )
