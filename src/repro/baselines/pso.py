"""Particle-swarm-optimization sizing baseline (Table IX, Vural & Yildirim).

Function-style adapter over :class:`repro.solvers.ParticleSwarmSolver`;
see that module for the algorithm.
"""

from __future__ import annotations

import numpy as np

from ..core.specs import DesignSpec
from ..solvers.swarm import ParticleSwarmSolver
from ..topologies import OTATopology
from .common import BaselineResult

__all__ = ["particle_swarm"]


def particle_swarm(
    topology: OTATopology,
    spec: DesignSpec,
    rng: np.random.Generator,
    max_evaluations: int = 500,
    swarm_size: int = 12,
    inertia: float = 0.72,
    cognitive: float = 1.49,
    social: float = 1.49,
) -> BaselineResult:
    """Minimize the spec shortfall with PSO."""
    solver = ParticleSwarmSolver(
        topology,
        swarm_size=swarm_size,
        inertia=inertia,
        cognitive=cognitive,
        social=social,
    )
    result = solver.solve(spec, budget=max_evaluations, rng=rng)
    return BaselineResult.from_solve_result("PSO", result)
