"""Particle-swarm-optimization sizing baseline (Table IX, Vural & Yildirim).

Standard global-best PSO with inertia damping over the normalized
log-width box; terminates as soon as a particle satisfies the spec.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.specs import DesignSpec
from ..topologies import OTATopology
from .common import BaselineResult, Objective

__all__ = ["particle_swarm"]


def particle_swarm(
    topology: OTATopology,
    spec: DesignSpec,
    rng: np.random.Generator,
    max_evaluations: int = 500,
    swarm_size: int = 12,
    inertia: float = 0.72,
    cognitive: float = 1.49,
    social: float = 1.49,
) -> BaselineResult:
    """Minimize the spec shortfall with PSO."""
    objective = Objective(topology, spec)
    start = time.perf_counter()
    dim = objective.space.dimension

    positions = rng.random((swarm_size, dim))
    velocities = rng.normal(0.0, 0.1, size=(swarm_size, dim))
    personal_best = positions.copy()
    personal_values = np.array([objective(p) for p in positions])
    history = [objective.best_value]

    global_idx = int(np.argmin(personal_values))
    global_best = personal_best[global_idx].copy()
    global_value = float(personal_values[global_idx])

    while objective.spice_calls < max_evaluations and not objective.satisfied:
        for i in range(swarm_size):
            if objective.spice_calls >= max_evaluations or objective.satisfied:
                break
            r1, r2 = rng.random(dim), rng.random(dim)
            velocities[i] = (
                inertia * velocities[i]
                + cognitive * r1 * (personal_best[i] - positions[i])
                + social * r2 * (global_best - positions[i])
            )
            positions[i] = np.clip(positions[i] + velocities[i], 0.0, 1.0)
            value = objective(positions[i])
            history.append(objective.best_value)
            if value < personal_values[i]:
                personal_values[i] = value
                personal_best[i] = positions[i].copy()
                if value < global_value:
                    global_value = value
                    global_best = positions[i].copy()

    return BaselineResult(
        algorithm="PSO",
        success=objective.satisfied,
        spice_calls=objective.spice_calls,
        wall_time_s=time.perf_counter() - start,
        best_value=objective.best_value,
        best_widths=objective.best_widths,
        history=history,
    )
