"""Differential-evolution sizing baseline (Table IX, Liu et al. style).

Classic DE/rand/1/bin over the normalized log-width box; terminates as
soon as any member satisfies the specification.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.specs import DesignSpec
from ..topologies import OTATopology
from .common import BaselineResult, Objective

__all__ = ["differential_evolution"]


def differential_evolution(
    topology: OTATopology,
    spec: DesignSpec,
    rng: np.random.Generator,
    max_evaluations: int = 500,
    population_size: int = 12,
    mutation: float = 0.6,
    crossover: float = 0.8,
) -> BaselineResult:
    """Minimize the spec shortfall with DE/rand/1/bin."""
    objective = Objective(topology, spec)
    start = time.perf_counter()
    dim = objective.space.dimension

    population = rng.random((population_size, dim))
    values = np.array([objective(p) for p in population])
    history = [objective.best_value]

    while objective.spice_calls < max_evaluations and not objective.satisfied:
        for i in range(population_size):
            if objective.spice_calls >= max_evaluations or objective.satisfied:
                break
            candidates = [j for j in range(population_size) if j != i]
            a, b, c = rng.choice(candidates, size=3, replace=False)
            mutant = population[a] + mutation * (population[b] - population[c])
            cross = rng.random(dim) < crossover
            cross[rng.integers(dim)] = True
            trial = np.clip(np.where(cross, mutant, population[i]), 0.0, 1.0)
            value = objective(trial)
            history.append(objective.best_value)
            if value <= values[i]:
                population[i] = trial
                values[i] = value

    return BaselineResult(
        algorithm="DE",
        success=objective.satisfied,
        spice_calls=objective.spice_calls,
        wall_time_s=time.perf_counter() - start,
        best_value=objective.best_value,
        best_widths=objective.best_widths,
        history=history,
    )
