"""Differential-evolution sizing baseline (Table IX, Liu et al. style).

Function-style adapter over
:class:`repro.solvers.DifferentialEvolutionSolver`; see that module for
the algorithm.
"""

from __future__ import annotations

import numpy as np

from ..core.specs import DesignSpec
from ..solvers.evolution import DifferentialEvolutionSolver
from ..topologies import OTATopology
from .common import BaselineResult

__all__ = ["differential_evolution"]


def differential_evolution(
    topology: OTATopology,
    spec: DesignSpec,
    rng: np.random.Generator,
    max_evaluations: int = 500,
    population_size: int = 12,
    mutation: float = 0.6,
    crossover: float = 0.8,
) -> BaselineResult:
    """Minimize the spec shortfall with DE/rand/1/bin."""
    solver = DifferentialEvolutionSolver(
        topology,
        population_size=population_size,
        mutation=mutation,
        crossover=crossover,
    )
    result = solver.solve(spec, budget=max_evaluations, rng=rng)
    return BaselineResult.from_solve_result("DE", result)
