"""Numerical building blocks for the numpy transformer.

Stable softmax, masks and sinusoidal positional encodings -- the pieces of
the Vaswani architecture (Sec. II-A of the paper) that are pure functions.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "softmax_backward",
    "relu",
    "relu_backward",
    "sinusoidal_positional_encoding",
    "causal_mask",
    "padding_mask",
    "combine_masks",
    "NEG_INF",
]

#: Additive mask value for disallowed attention positions.
NEG_INF = -1e30


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def softmax_backward(probs: np.ndarray, dout: np.ndarray, axis: int = -1) -> np.ndarray:
    """Backward pass of softmax given its output ``probs``.

    Implements ``dx = probs * (dout - sum(dout * probs))`` along ``axis``.
    """
    inner = np.sum(dout * probs, axis=axis, keepdims=True)
    return probs * (dout - inner)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_backward(x: np.ndarray, dout: np.ndarray) -> np.ndarray:
    return dout * (x > 0.0)


def sinusoidal_positional_encoding(max_len: int, d_model: int) -> np.ndarray:
    """The sine/cosine positional encoding of Vaswani et al.

    ``PE[pos, 2i] = sin(pos / 10000^(2i/d))``,
    ``PE[pos, 2i+1] = cos(pos / 10000^(2i/d))``.
    """
    if d_model % 2 != 0:
        raise ValueError("d_model must be even for sinusoidal encoding")
    positions = np.arange(max_len)[:, None].astype(float)
    dims = np.arange(0, d_model, 2).astype(float)
    angles = positions / np.power(10000.0, dims / d_model)
    encoding = np.zeros((max_len, d_model))
    encoding[:, 0::2] = np.sin(angles)
    encoding[:, 1::2] = np.cos(angles)
    return encoding


def causal_mask(length: int) -> np.ndarray:
    """Additive ``(1, 1, T, T)`` mask blocking attention to future tokens."""
    mask = np.triu(np.full((length, length), NEG_INF), k=1)
    return mask[None, None, :, :]


def padding_mask(key_is_pad: np.ndarray) -> np.ndarray:
    """Additive ``(B, 1, 1, Tk)`` mask blocking attention to pad keys.

    ``key_is_pad`` is a boolean ``(B, Tk)`` array, True at padding tokens.
    """
    mask = np.where(key_is_pad, NEG_INF, 0.0)
    return mask[:, None, None, :]


def combine_masks(*masks: np.ndarray | None) -> np.ndarray | None:
    """Sum additive masks, broadcasting; ``None`` entries are skipped."""
    result: np.ndarray | None = None
    for mask in masks:
        if mask is None:
            continue
        result = mask if result is None else result + mask
    return result
