"""Weighted cross-entropy loss (Sec. III-C, "Loss Function").

Each output token is a class.  The paper upweights the classes that carry
numeric device-parameter information (digits, sign, decimal point) by 20%,
which it found optimal, so the model concentrates on predicting values
accurately.  Padding positions are masked out of the loss entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nlp.tokenizer import Vocabulary
from .functional import softmax

__all__ = ["WeightedCrossEntropy", "numeric_token_weights"]

#: Characters whose single-token classes carry numeric value information.
_NUMERIC_CHARS = set("0123456789.-")


def numeric_token_weights(vocab: Vocabulary, numeric_weight: float = 1.2) -> np.ndarray:
    """Per-class weight vector: numeric-value tokens get ``numeric_weight``.

    The paper's restricted BPE keeps value digits as single-character
    tokens, so the numeric classes are exactly the tokens consisting of
    digit / dot / minus characters.  All other classes weigh 1.
    """
    weights = np.ones(len(vocab))
    for token, index in vocab.token_to_id.items():
        if token and all(ch in _NUMERIC_CHARS for ch in token):
            weights[index] = numeric_weight
    return weights


@dataclass
class LossResult:
    loss: float
    dlogits: np.ndarray
    token_count: int
    correct: int

    @property
    def accuracy(self) -> float:
        return self.correct / max(self.token_count, 1)


class WeightedCrossEntropy:
    """Softmax cross-entropy with per-class weights and pad masking."""

    def __init__(self, class_weights: np.ndarray | None = None, pad_id: int = 0):
        self.class_weights = class_weights
        self.pad_id = pad_id

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> LossResult:
        """Compute loss and logits gradient.

        ``logits``: (B, T, V); ``targets``: (B, T) int ids; positions whose
        target is ``pad_id`` contribute nothing.
        """
        batch, seq, vocab = logits.shape
        flat_logits = logits.reshape(-1, vocab)
        flat_targets = targets.reshape(-1)
        valid = flat_targets != self.pad_id

        probs = softmax(flat_logits, axis=-1)
        picked = probs[np.arange(flat_targets.size), flat_targets]
        log_picked = -np.log(np.maximum(picked, 1e-300))

        if self.class_weights is not None:
            token_weights = self.class_weights[flat_targets]
        else:
            token_weights = np.ones_like(log_picked)
        token_weights = token_weights * valid

        weight_sum = float(token_weights.sum())
        if weight_sum == 0.0:
            return LossResult(0.0, np.zeros_like(logits), 0, 0)
        loss = float((log_picked * token_weights).sum() / weight_sum)

        dflat = probs.copy()
        dflat[np.arange(flat_targets.size), flat_targets] -= 1.0
        dflat *= (token_weights / weight_sum)[:, None]

        predictions = np.argmax(flat_logits, axis=-1)
        correct = int(((predictions == flat_targets) & valid).sum())
        return LossResult(
            loss=loss,
            dlogits=dflat.reshape(batch, seq, vocab),
            token_count=int(valid.sum()),
            correct=correct,
        )
