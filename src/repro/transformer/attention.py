"""Multi-head scaled dot-product attention with explicit backward pass.

Implements Eq. (1) of the paper::

    Attention(Q, K, V) = softmax(Q K^T / sqrt(d_k)) V

with ``h`` parallel heads, input/output projections and an optional
additive mask (causal and/or key-padding).  Used in three roles: encoder
self-attention, masked decoder self-attention, and decoder cross-attention
(queries from the decoder, keys/values from the encoder memory).
"""

from __future__ import annotations


import numpy as np

from .functional import softmax, softmax_backward
from .layers import Dropout, Linear, Module

__all__ = ["MultiHeadAttention"]


class MultiHeadAttention(Module):
    """Multi-head attention over ``(B, T, d_model)`` tensors."""

    def __init__(self, d_model: int, n_heads: int, dropout: float, rng: np.random.Generator):
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.w_q = self.register("w_q", Linear(d_model, d_model, rng))
        self.w_k = self.register("w_k", Linear(d_model, d_model, rng))
        self.w_v = self.register("w_v", Linear(d_model, d_model, rng))
        self.w_o = self.register("w_o", Linear(d_model, d_model, rng))
        self.dropout = self.register("dropout", Dropout(dropout, rng))
        self._cache: tuple | None = None

    # ------------------------------------------------------------------
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, T, D) -> (B, H, T, d_head)."""
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, H, T, d_head) -> (B, T, D)."""
        batch, _, seq, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)

    # ------------------------------------------------------------------
    def forward(
        self,
        query_input: np.ndarray,
        kv_input: np.ndarray,
        mask: np.ndarray | None,
        training: bool,
    ) -> np.ndarray:
        """Attend queries (from ``query_input``) over keys/values (from
        ``kv_input``); ``mask`` is additive, broadcastable to
        ``(B, H, Tq, Tk)``."""
        q = self._split_heads(self.w_q.forward(query_input))
        k = self._split_heads(self.w_k.forward(kv_input))
        v = self._split_heads(self.w_v.forward(kv_input))

        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.d_head)
        if mask is not None:
            scores = scores + mask.astype(scores.dtype, copy=False)
        probs = softmax(scores, axis=-1)
        probs_dropped = self.dropout.forward(probs, training)
        context = probs_dropped @ v
        out = self.w_o.forward(self._merge_heads(context))
        self._cache = (q, k, v, probs, probs_dropped)
        return out

    def backward(self, dout: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(d_query_input, d_kv_input)``."""
        assert self._cache is not None, "backward before forward"
        q, k, v, probs, probs_dropped = self._cache

        dcontext_merged = self.w_o.backward(dout)
        dcontext = self._split_heads(dcontext_merged)

        dprobs_dropped = dcontext @ v.transpose(0, 1, 3, 2)
        dv = probs_dropped.transpose(0, 1, 3, 2) @ dcontext
        dprobs = self.dropout.backward(dprobs_dropped)
        dscores = softmax_backward(probs, dprobs) / np.sqrt(self.d_head)

        dq = dscores @ k
        dk = dscores.transpose(0, 1, 3, 2) @ q

        dquery_input = self.w_q.backward(self._merge_heads(dq))
        dkv_input = self.w_k.backward(self._merge_heads(dk))
        dkv_input = dkv_input + self.w_v.backward(self._merge_heads(dv))
        return dquery_input, dkv_input
