"""Parameterized layers with explicit forward/backward passes.

Everything is implemented directly in numpy with hand-derived gradients;
there is no autograd.  Each layer caches what its backward pass needs during
forward, so the usage pattern is strictly ``forward -> backward`` per step.
Parameters and gradients are exposed through the :class:`Module` tree so the
optimizer can iterate them by name.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .functional import relu, relu_backward

__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "FeedForward",
    "set_default_dtype",
    "get_default_dtype",
]

#: Dtype newly created parameters are cast to.  float64 keeps the
#: finite-difference gradient checks tight; float32 roughly halves
#: training time and is what the production pipeline uses.
_DEFAULT_DTYPE = np.float64


def set_default_dtype(dtype) -> None:
    """Set the dtype used for parameters created after this call."""
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported parameter dtype {dtype!r}")
    _DEFAULT_DTYPE = resolved.type


def get_default_dtype():
    return _DEFAULT_DTYPE


class Module:
    """Minimal parameter-tree container (a very small torch.nn.Module)."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self._children: dict[str, Module] = {}

    # ------------------------------------------------------------------
    def add_param(self, name: str, value: np.ndarray) -> np.ndarray:
        value = np.asarray(value, dtype=_DEFAULT_DTYPE)
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)
        return value

    def register(self, name: str, module: Module) -> Module:
        self._children[name] = module
        return module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, value in self.params.items():
            yield prefix + name, value
        for child_name, child in self._children.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def named_gradients(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, value in self.grads.items():
            yield prefix + name, value
        for child_name, child in self._children.items():
            yield from child.named_gradients(prefix + child_name + ".")

    def zero_grad(self) -> None:
        for name in self.grads:
            self.grads[name][...] = 0.0
        for child in self._children.values():
            child.zero_grad()

    def parameter_count(self) -> int:
        return sum(int(np.prod(p.shape)) for _, p in self.named_parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: value.copy() for name, value in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)[:5]} ...")
        for name, value in own.items():
            if state[name].shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {state[name].shape} vs {value.shape}"
                )
            value[...] = state[name]

    def adopt_parameters(self, state: dict[str, np.ndarray], prefix: str = "") -> None:
        """Rebind parameters to the arrays in ``state`` without copying.

        :meth:`load_state_dict` copies into the preallocated arrays, which
        is right for checkpoint restore but defeats zero-copy sharing: a
        memory-mapped (read-only) array handed to it is immediately
        duplicated into private pages.  This method instead *replaces*
        each parameter — in ``self.params`` and in any instance attribute
        aliasing it (``Linear.weight``, ``Embedding.table``, ...) — with
        the given array, so mmap-backed views stay mmap-backed and N
        worker processes share one physical copy.  Gradient buffers are
        left untouched (they stay private and writable).
        """
        missing = [
            name for name, _ in self.named_parameters(prefix) if name not in state
        ]
        if missing:
            raise KeyError(f"state is missing parameters: {sorted(missing)[:5]} ...")
        for name, old in list(self.params.items()):
            new = state[prefix + name]
            if new.shape != old.shape:
                raise ValueError(
                    f"shape mismatch for {prefix + name}: {new.shape} vs {old.shape}"
                )
            self.params[name] = new
            for attr, value in self.__dict__.items():
                if value is old:
                    setattr(self, attr, new)
        for child_name, child in self._children.items():
            child.adopt_parameters(state, prefix + child_name + ".")


class Linear(Module):
    """Affine map ``y = x @ W + b`` over the trailing dimension."""

    def __init__(self, d_in: int, d_out: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        scale = np.sqrt(2.0 / (d_in + d_out))  # Glorot
        self.weight = self.add_param("weight", rng.normal(0.0, scale, size=(d_in, d_out)))
        self.bias: np.ndarray | None = (
            self.add_param("bias", np.zeros(d_out)) if bias else None
        )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        x2d = self._x.reshape(-1, self._x.shape[-1])
        dout2d = dout.reshape(-1, dout.shape[-1])
        self.grads["weight"] += x2d.T @ dout2d
        if self.bias is not None:
            self.grads["bias"] += dout2d.sum(axis=0)
        return dout @ self.weight.T


class Embedding(Module):
    """Token-id lookup table."""

    def __init__(self, vocab_size: int, d_model: int, rng: np.random.Generator):
        super().__init__()
        self.table = self.add_param(
            "table", rng.normal(0.0, 1.0 / np.sqrt(d_model), size=(vocab_size, d_model))
        )
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = ids
        return self.table[ids]

    def backward(self, dout: np.ndarray) -> None:
        assert self._ids is not None, "backward before forward"
        np.add.at(self.grads["table"], self._ids.reshape(-1), dout.reshape(-1, dout.shape[-1]))


class LayerNorm(Module):
    """Layer normalization over the trailing dimension."""

    def __init__(self, d_model: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = self.add_param("gamma", np.ones(d_model))
        self.beta = self.add_param("beta", np.zeros(d_model))
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean) * inv_std
        self._cache = (normalized, inv_std)
        return normalized * self.gamma + self.beta

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        normalized, inv_std = self._cache
        d = dout.shape[-1]
        dout2d = dout.reshape(-1, d)
        norm2d = normalized.reshape(-1, d)
        self.grads["gamma"] += (dout2d * norm2d).sum(axis=0)
        self.grads["beta"] += dout2d.sum(axis=0)
        dnorm = dout * self.gamma
        # dx = inv_std * (dnorm - mean(dnorm) - normalized * mean(dnorm*normalized))
        mean_dnorm = dnorm.mean(axis=-1, keepdims=True)
        mean_dnorm_norm = (dnorm * normalized).mean(axis=-1, keepdims=True)
        return inv_std * (dnorm - mean_dnorm - normalized * mean_dnorm_norm)


class Dropout(Module):
    """Inverted dropout; identity when ``rate == 0`` or not training."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask


class FeedForward(Module):
    """Position-wise FFN: two linear layers with activation and dropout
    after each, per the paper's description of the FFN block."""

    def __init__(self, d_model: int, d_ff: int, dropout: float, rng: np.random.Generator):
        super().__init__()
        self.linear1 = self.register("linear1", Linear(d_model, d_ff, rng))
        self.linear2 = self.register("linear2", Linear(d_ff, d_model, rng))
        self.dropout1 = self.register("dropout1", Dropout(dropout, rng))
        self.dropout2 = self.register("dropout2", Dropout(dropout, rng))
        self._hidden_pre: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        hidden_pre = self.linear1.forward(x)
        self._hidden_pre = hidden_pre
        hidden = relu(hidden_pre)
        hidden = self.dropout1.forward(hidden, training)
        out = self.linear2.forward(hidden)
        return self.dropout2.forward(out, training)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._hidden_pre is not None, "backward before forward"
        dout = self.dropout2.backward(dout)
        dhidden = self.linear2.backward(dout)
        dhidden = self.dropout1.backward(dhidden)
        dhidden = relu_backward(self._hidden_pre, dhidden)
        return self.linear1.backward(dhidden)
