"""Batched sequence-to-sequence training loop (Sec. IV-B).

Handles padding/batching of variable-length token-id sequences, teacher
forcing (decoder input is the target shifted right behind ``<bos>``),
epoch shuffling, validation-split evaluation and checkpointing.

The paper trains one model for 40 epochs on an 80:20 train/validation split
with Adam at an initial rate of 1e-4; those are the defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Sequence

import numpy as np

from .loss import WeightedCrossEntropy
from .model import Transformer
from .optim import Adam, LRScheduler

__all__ = ["SequencePair", "Batch", "make_batches", "Trainer", "TrainingHistory"]


@dataclass(frozen=True)
class SequencePair:
    """One training example: encoder ids and decoder target ids.

    ``target`` must not include BOS/EOS -- the trainer adds them.
    """

    source: tuple[int, ...]
    target: tuple[int, ...]


@dataclass
class Batch:
    src: np.ndarray       # (B, T_src) ids, padded
    tgt_in: np.ndarray    # (B, T_tgt) decoder input (BOS + target)
    tgt_out: np.ndarray   # (B, T_tgt) decoder target (target + EOS)
    src_pad: np.ndarray   # (B, T_src) bool, True at padding
    tgt_pad: np.ndarray   # (B, T_tgt) bool, True at padding


def _pad(rows: Sequence[Sequence[int]], pad_id: int) -> tuple[np.ndarray, np.ndarray]:
    width = max(len(row) for row in rows)
    out = np.full((len(rows), width), pad_id, dtype=np.int64)
    mask = np.ones((len(rows), width), dtype=bool)
    for i, row in enumerate(rows):
        out[i, : len(row)] = row
        mask[i, : len(row)] = False
    return out, mask


def make_batches(
    pairs: Sequence[SequencePair],
    batch_size: int,
    pad_id: int,
    bos_id: int,
    eos_id: int,
    rng: np.random.Generator | None = None,
) -> list[Batch]:
    """Pack pairs into padded batches, bucketed by length.

    Examples are grouped by similar total length so mixed-topology corpora
    (whose sequence lengths differ by 2-4x) don't pay quadratic attention
    cost on padding.  With ``rng`` given, ties are broken randomly and the
    batch order is shuffled, so batch composition still varies per epoch.
    """
    order = np.arange(len(pairs))
    if rng is not None:
        rng.shuffle(order)
    lengths = np.array([len(pairs[i].source) + len(pairs[i].target) for i in order])
    order = order[np.argsort(lengths, kind="stable")]
    batches: list[Batch] = []
    for start in range(0, len(pairs), batch_size):
        chunk = [pairs[i] for i in order[start : start + batch_size]]
        src, src_pad = _pad([p.source for p in chunk], pad_id)
        tgt_in, tgt_pad = _pad([(bos_id,) + p.target for p in chunk], pad_id)
        tgt_out, _ = _pad([p.target + (eos_id,) for p in chunk], pad_id)
        batches.append(Batch(src=src, tgt_in=tgt_in, tgt_out=tgt_out, src_pad=src_pad, tgt_pad=tgt_pad))
    if rng is not None:
        batch_order = np.arange(len(batches))
        rng.shuffle(batch_order)
        batches = [batches[i] for i in batch_order]
    return batches


@dataclass
class TrainingHistory:
    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    learning_rate: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)


class Trainer:
    """Seq2seq trainer for the DP-SFG translation task."""

    def __init__(
        self,
        model: Transformer,
        loss_fn: WeightedCrossEntropy,
        pad_id: int,
        bos_id: int,
        eos_id: int,
        lr: float = 1e-4,
        batch_size: int = 32,
        seed: int = 0,
        schedule_mode: str = "plateau",
    ):
        self.model = model
        self.loss_fn = loss_fn
        self.pad_id = pad_id
        self.bos_id = bos_id
        self.eos_id = eos_id
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.optimizer = Adam(model, lr=lr)
        self.scheduler = LRScheduler(self.optimizer, mode=schedule_mode)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def train_epoch(self, pairs: Sequence[SequencePair]) -> float:
        """One epoch of teacher-forced training; returns the mean loss."""
        batches = make_batches(pairs, self.batch_size, self.pad_id, self.bos_id, self.eos_id, self.rng)
        total_loss = 0.0
        total_tokens = 0
        for batch in batches:
            self.optimizer.zero_grad()
            logits = self.model.forward(batch.src, batch.tgt_in, batch.src_pad, batch.tgt_pad, training=True)
            result = self.loss_fn(logits, batch.tgt_out)
            self.model.backward(result.dlogits)
            self.optimizer.step()
            total_loss += result.loss * result.token_count
            total_tokens += result.token_count
        return total_loss / max(total_tokens, 1)

    def evaluate(self, pairs: Sequence[SequencePair]) -> tuple[float, float]:
        """Validation loss and next-token accuracy (teacher-forced)."""
        batches = make_batches(pairs, self.batch_size, self.pad_id, self.bos_id, self.eos_id, rng=None)
        total_loss = 0.0
        total_tokens = 0
        total_correct = 0
        for batch in batches:
            logits = self.model.forward(batch.src, batch.tgt_in, batch.src_pad, batch.tgt_pad, training=False)
            result = self.loss_fn(logits, batch.tgt_out)
            total_loss += result.loss * result.token_count
            total_tokens += result.token_count
            total_correct += result.correct
        return (
            total_loss / max(total_tokens, 1),
            total_correct / max(total_tokens, 1),
        )

    def fit(
        self,
        train_pairs: Sequence[SequencePair],
        val_pairs: Sequence[SequencePair],
        epochs: int = 40,
        callback: Callable[[int, TrainingHistory], None] | None = None,
        checkpoint_path: str | Path | None = None,
    ) -> TrainingHistory:
        """Full training run; keeps the best-validation checkpoint if asked."""
        best_val = float("inf")
        for epoch in range(1, epochs + 1):
            train_loss = self.train_epoch(train_pairs)
            val_loss, val_acc = self.evaluate(val_pairs) if val_pairs else (train_loss, 0.0)
            lr = self.scheduler.step(val_loss)
            self.history.train_loss.append(train_loss)
            self.history.val_loss.append(val_loss)
            self.history.val_accuracy.append(val_acc)
            self.history.learning_rate.append(lr)
            if checkpoint_path is not None and val_loss < best_val:
                best_val = val_loss
                self.model.save(checkpoint_path)
            if callback is not None:
                callback(epoch, self.history)
        return self.history

    # ------------------------------------------------------------------
    def predict(self, sources: Sequence[Sequence[int]], max_len: int | None = None) -> list[list[int]]:
        """Greedy decode a batch of source id sequences."""
        src, src_pad = _pad(list(sources), self.pad_id)
        return self.model.greedy_decode(src, src_pad, self.bos_id, self.eos_id, max_len=max_len)
