"""Adam optimizer with the paper's adaptive learning-rate strategy.

The paper trains with Adam starting at ``1e-4`` under an adaptive schedule.
We implement Adam with optional gradient clipping and two schedules:

* ``"plateau"`` (default): multiply the rate by ``decay`` whenever the
  epoch loss fails to improve -- a simple adaptive strategy;
* ``"cosine"``: smooth decay to ``lr_min`` over a horizon.
"""

from __future__ import annotations

import math

import numpy as np

from .layers import Module

__all__ = ["Adam", "LRScheduler"]


class Adam:
    """Adam over a :class:`~repro.transformer.layers.Module` parameter tree."""

    def __init__(
        self,
        model: Module,
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        grad_clip: float | None = 1.0,
    ):
        self.model = model
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.grad_clip = grad_clip
        self.step_count = 0
        self._m = {name: np.zeros_like(p) for name, p in model.named_parameters()}
        self._v = {name: np.zeros_like(p) for name, p in model.named_parameters()}

    def _global_norm(self) -> float:
        total = 0.0
        for _, grad in self.model.named_gradients():
            total += float(np.sum(grad * grad))
        return math.sqrt(total)

    def step(self) -> None:
        """Apply one Adam update from the accumulated gradients."""
        self.step_count += 1
        scale = 1.0
        if self.grad_clip is not None:
            norm = self._global_norm()
            if norm > self.grad_clip:
                scale = self.grad_clip / (norm + 1e-12)

        params = dict(self.model.named_parameters())
        grads = dict(self.model.named_gradients())
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for name, param in params.items():
            grad = grads[name] * scale
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        self.model.zero_grad()


class LRScheduler:
    """Adaptive learning-rate schedule driving an :class:`Adam` instance."""

    def __init__(
        self,
        optimizer: Adam,
        mode: str = "plateau",
        decay: float = 0.5,
        patience: int = 2,
        lr_min: float = 1e-6,
        horizon_epochs: int = 40,
    ):
        if mode not in ("plateau", "cosine"):
            raise ValueError(f"unknown schedule mode {mode!r}")
        self.optimizer = optimizer
        self.mode = mode
        self.decay = decay
        self.patience = patience
        self.lr_min = lr_min
        self.horizon = horizon_epochs
        self._lr0 = optimizer.lr
        self._best = float("inf")
        self._bad_epochs = 0
        self._epoch = 0

    def step(self, epoch_loss: float) -> float:
        """Update the learning rate after an epoch; returns the new rate."""
        self._epoch += 1
        if self.mode == "cosine":
            progress = min(self._epoch / self.horizon, 1.0)
            self.optimizer.lr = self.lr_min + 0.5 * (self._lr0 - self.lr_min) * (
                1.0 + math.cos(math.pi * progress)
            )
            return self.optimizer.lr
        if epoch_loss < self._best - 1e-6:
            self._best = epoch_loss
            self._bad_epochs = 0
        else:
            self._bad_epochs += 1
            if self._bad_epochs >= self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.decay, self.lr_min)
                self._bad_epochs = 0
        return self.optimizer.lr
