"""From-scratch numpy encoder-decoder transformer (Stage II)."""

from .attention import MultiHeadAttention
from .blocks import DecoderBlock, EncoderBlock
from .functional import (
    causal_mask,
    combine_masks,
    padding_mask,
    sinusoidal_positional_encoding,
    softmax,
)
from .layers import Dropout, Embedding, FeedForward, LayerNorm, Linear, Module
from .loss import WeightedCrossEntropy, numeric_token_weights
from .model import Transformer, TransformerConfig
from .optim import Adam, LRScheduler
from .trainer import Batch, SequencePair, Trainer, TrainingHistory, make_batches

__all__ = [
    "MultiHeadAttention",
    "DecoderBlock",
    "EncoderBlock",
    "causal_mask",
    "combine_masks",
    "padding_mask",
    "sinusoidal_positional_encoding",
    "softmax",
    "Dropout",
    "Embedding",
    "FeedForward",
    "LayerNorm",
    "Linear",
    "Module",
    "WeightedCrossEntropy",
    "numeric_token_weights",
    "Transformer",
    "TransformerConfig",
    "Adam",
    "LRScheduler",
    "Batch",
    "SequencePair",
    "Trainer",
    "TrainingHistory",
    "make_batches",
]
