"""Encoder and decoder blocks (post-LN residual structure of Vaswani).

Encoder block:  self-attention -> Add&Norm -> FFN -> Add&Norm.
Decoder block:  masked self-attention -> Add&Norm -> cross-attention ->
                Add&Norm -> FFN -> Add&Norm.

Residual dropout is applied to each sublayer output before the addition,
as in the original architecture.
"""

from __future__ import annotations


import numpy as np

from .attention import MultiHeadAttention
from .layers import Dropout, FeedForward, LayerNorm, Module

__all__ = ["EncoderBlock", "DecoderBlock"]


class EncoderBlock(Module):
    """One encoder layer: self-attention + FFN with Add&Norm."""

    def __init__(self, d_model: int, n_heads: int, d_ff: int, dropout: float, rng: np.random.Generator):
        super().__init__()
        self.self_attn = self.register("self_attn", MultiHeadAttention(d_model, n_heads, dropout, rng))
        self.norm1 = self.register("norm1", LayerNorm(d_model))
        self.ffn = self.register("ffn", FeedForward(d_model, d_ff, dropout, rng))
        self.norm2 = self.register("norm2", LayerNorm(d_model))
        self.residual_dropout = self.register("residual_dropout", Dropout(dropout, rng))

    def forward(self, x: np.ndarray, mask: np.ndarray | None, training: bool) -> np.ndarray:
        attended = self.self_attn.forward(x, x, mask, training)
        x = self.norm1.forward(x + self.residual_dropout.forward(attended, training))
        fed = self.ffn.forward(x, training)
        return self.norm2.forward(x + fed)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dsum2 = self.norm2.backward(dout)
        dffn_out = dsum2
        dx = dsum2 + self.ffn.backward(dffn_out)
        dsum1 = self.norm1.backward(dx)
        dattended = self.residual_dropout.backward(dsum1)
        dq, dkv = self.self_attn.backward(dattended)
        return dsum1 + dq + dkv


class DecoderBlock(Module):
    """One decoder layer: masked self-attention, cross-attention, FFN."""

    def __init__(self, d_model: int, n_heads: int, d_ff: int, dropout: float, rng: np.random.Generator):
        super().__init__()
        self.self_attn = self.register("self_attn", MultiHeadAttention(d_model, n_heads, dropout, rng))
        self.norm1 = self.register("norm1", LayerNorm(d_model))
        self.cross_attn = self.register("cross_attn", MultiHeadAttention(d_model, n_heads, dropout, rng))
        self.norm2 = self.register("norm2", LayerNorm(d_model))
        self.ffn = self.register("ffn", FeedForward(d_model, d_ff, dropout, rng))
        self.norm3 = self.register("norm3", LayerNorm(d_model))
        self.residual_dropout1 = self.register("residual_dropout1", Dropout(dropout, rng))
        self.residual_dropout2 = self.register("residual_dropout2", Dropout(dropout, rng))

    def forward(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        self_mask: np.ndarray | None,
        cross_mask: np.ndarray | None,
        training: bool,
    ) -> np.ndarray:
        attended = self.self_attn.forward(x, x, self_mask, training)
        x = self.norm1.forward(x + self.residual_dropout1.forward(attended, training))
        crossed = self.cross_attn.forward(x, memory, cross_mask, training)
        x = self.norm2.forward(x + self.residual_dropout2.forward(crossed, training))
        fed = self.ffn.forward(x, training)
        return self.norm3.forward(x + fed)

    def backward(self, dout: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(dx, dmemory)``."""
        dsum3 = self.norm3.backward(dout)
        dx2 = dsum3 + self.ffn.backward(dsum3)
        dsum2 = self.norm2.backward(dx2)
        dcrossed = self.residual_dropout2.backward(dsum2)
        dq_cross, dmemory = self.cross_attn.backward(dcrossed)
        dx1 = dsum2 + dq_cross
        dsum1 = self.norm1.backward(dx1)
        dattended = self.residual_dropout1.backward(dsum1)
        dq_self, dkv_self = self.self_attn.backward(dattended)
        return dsum1 + dq_self + dkv_self, dmemory
