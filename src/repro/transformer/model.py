"""The encoder-decoder transformer (Sec. III-C, Fig. 1).

Architecture-faithful to the paper: token embeddings scaled by
``sqrt(d_model)`` plus sinusoidal positional encodings feed ``N`` stacked
encoder blocks and ``N`` decoder blocks (masked self-attention +
cross-attention), followed by a linear projection to token logits.  The
paper's production configuration uses a 720-dimensional embedding with 12
attention heads; our CPU-budget defaults are smaller but every dimension is
configurable through :class:`TransformerConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from pathlib import Path

import numpy as np

from .blocks import DecoderBlock, EncoderBlock
from .functional import causal_mask, combine_masks, padding_mask, sinusoidal_positional_encoding
from .layers import Dropout, Embedding, Linear, Module

__all__ = ["TransformerConfig", "Transformer"]


@dataclass(frozen=True)
class TransformerConfig:
    """Hyperparameters of the encoder-decoder transformer.

    The paper's configuration corresponds to ``d_model=720, n_heads=12``
    with the remaining Vaswani defaults (6+6 layers, d_ff=4*d_model);
    the defaults here are sized for CPU training.
    """

    vocab_size: int
    d_model: int = 128
    n_heads: int = 8
    n_encoder_layers: int = 2
    n_decoder_layers: int = 2
    d_ff: int = 256
    dropout: float = 0.1
    max_len: int = 1024
    seed: int = 0
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.vocab_size < 5:
            raise ValueError("vocab_size must cover the special tokens")
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        if self.max_len < 2:
            raise ValueError("max_len must be at least 2")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be float32 or float64, got {self.dtype}")


class Transformer(Module):
    """Encoder-decoder transformer over integer token ids.

    Shapes: ``src_ids``/``tgt_ids`` are ``(B, T)`` int arrays; logits come
    back as ``(B, T_tgt, vocab)``.
    """

    def __init__(self, config: TransformerConfig):
        super().__init__()
        from .layers import get_default_dtype, set_default_dtype

        self.config = config
        self.rng = np.random.default_rng(config.seed)
        rng = self.rng
        c = config
        previous_dtype = get_default_dtype()
        set_default_dtype(c.dtype)
        try:
            self._build(c, rng)
        finally:
            set_default_dtype(previous_dtype)

    def _build(self, c: TransformerConfig, rng: np.random.Generator) -> None:
        self.src_embed = self.register("src_embed", Embedding(c.vocab_size, c.d_model, rng))
        self.tgt_embed = self.register("tgt_embed", Embedding(c.vocab_size, c.d_model, rng))
        self.encoder_blocks = [
            self.register(f"encoder{i}", EncoderBlock(c.d_model, c.n_heads, c.d_ff, c.dropout, rng))
            for i in range(c.n_encoder_layers)
        ]
        self.decoder_blocks = [
            self.register(f"decoder{i}", DecoderBlock(c.d_model, c.n_heads, c.d_ff, c.dropout, rng))
            for i in range(c.n_decoder_layers)
        ]
        self.out_proj = self.register("out_proj", Linear(c.d_model, c.vocab_size, rng))
        self.embed_dropout_src = self.register("embed_dropout_src", Dropout(c.dropout, rng))
        self.embed_dropout_tgt = self.register("embed_dropout_tgt", Dropout(c.dropout, rng))
        self.positional = sinusoidal_positional_encoding(c.max_len, c.d_model).astype(c.dtype)
        self._scale = float(np.sqrt(c.d_model))
        self._cache: dict | None = None

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def encode(self, src_ids: np.ndarray, src_pad: np.ndarray, training: bool) -> np.ndarray:
        """Run the encoder stack; returns the memory ``(B, T_src, d)``."""
        _, t_src = src_ids.shape
        if t_src > self.config.max_len:
            raise ValueError(f"source length {t_src} exceeds max_len {self.config.max_len}")
        mask = padding_mask(src_pad)
        x = self.src_embed.forward(src_ids) * self._scale + self.positional[:t_src]
        x = self.embed_dropout_src.forward(x, training)
        for block in self.encoder_blocks:
            x = block.forward(x, mask, training)
        return x

    def forward(
        self,
        src_ids: np.ndarray,
        tgt_ids: np.ndarray,
        src_pad: np.ndarray,
        tgt_pad: np.ndarray,
        training: bool = True,
    ) -> np.ndarray:
        """Teacher-forced forward pass; returns logits ``(B, T_tgt, V)``."""
        _, t_tgt = tgt_ids.shape
        if t_tgt > self.config.max_len:
            raise ValueError(f"target length {t_tgt} exceeds max_len {self.config.max_len}")
        memory = self.encode(src_ids, src_pad, training)

        self_mask = combine_masks(causal_mask(t_tgt), padding_mask(tgt_pad))
        cross_mask = padding_mask(src_pad)

        y = self.tgt_embed.forward(tgt_ids) * self._scale + self.positional[:t_tgt]
        y = self.embed_dropout_tgt.forward(y, training)
        for block in self.decoder_blocks:
            y = block.forward(y, memory, self_mask, cross_mask, training)
        logits = self.out_proj.forward(y)
        self._cache = {"n_dec": len(self.decoder_blocks)}
        return logits

    def backward(self, dlogits: np.ndarray) -> None:
        """Backpropagate from the logits gradient; accumulates into grads."""
        assert self._cache is not None, "backward before forward"
        dy = self.out_proj.backward(dlogits)
        dmemory_total: np.ndarray | None = None
        for block in reversed(self.decoder_blocks):
            dy, dmemory = block.backward(dy)
            dmemory_total = dmemory if dmemory_total is None else dmemory_total + dmemory
        dy = self.embed_dropout_tgt.backward(dy)
        self.tgt_embed.backward(dy * self._scale)

        dx = dmemory_total if dmemory_total is not None else 0.0
        for block in reversed(self.encoder_blocks):
            dx = block.backward(dx)
        dx = self.embed_dropout_src.backward(dx)
        self.src_embed.backward(dx * self._scale)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def greedy_decode(
        self,
        src_ids: np.ndarray,
        src_pad: np.ndarray,
        bos_id: int,
        eos_id: int,
        max_len: int | None = None,
    ) -> list[list[int]]:
        """Greedy autoregressive decoding with per-layer KV caching.

        Mathematically identical to re-running the decoder on the whole
        prefix each step (checked by a regression test against
        :meth:`greedy_decode_naive`) but O(T^2) instead of O(T^3).
        Returns one id list per batch row (without BOS, truncated at EOS).
        """
        from .functional import softmax  # local import to avoid cycle noise

        limit = min(max_len or self.config.max_len, self.config.max_len)
        batch = src_ids.shape[0]
        memory = self.encode(src_ids, src_pad, training=False)
        cross_bias = np.where(src_pad, -1e30, 0.0)[:, None, None, :].astype(memory.dtype)

        # Precompute cross-attention keys/values once per decoder block, and
        # preallocate the self-attention KV buffers: appending via
        # concatenate would copy the whole O(T) cache every step (O(T^2)
        # traffic that batching cannot amortize).
        n_heads = self.config.n_heads
        head_dim = self.config.d_model // n_heads
        caches: list[dict] = []
        for block in self.decoder_blocks:
            cross = block.cross_attn
            caches.append(
                {
                    "cross_k": cross._split_heads(cross.w_k.forward(memory)),
                    "cross_v": cross._split_heads(cross.w_v.forward(memory)),
                    "self_k": np.empty((batch, n_heads, limit, head_dim), dtype=memory.dtype),
                    "self_v": np.empty((batch, n_heads, limit, head_dim), dtype=memory.dtype),
                }
            )

        def attend(q, k, v, bias=None):
            scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(q.shape[-1])
            if bias is not None:
                scores = scores + bias
            return softmax(scores, axis=-1) @ v

        generated = np.full((batch, 1), bos_id, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        for step in range(limit - 1):
            last = generated[:, -1:]
            y = self.tgt_embed.forward(last) * self._scale + self.positional[step : step + 1]
            for block, cache in zip(self.decoder_blocks, caches, strict=True):
                self_attn = block.self_attn
                q = self_attn._split_heads(self_attn.w_q.forward(y))
                cache["self_k"][:, :, step : step + 1] = self_attn._split_heads(
                    self_attn.w_k.forward(y)
                )
                cache["self_v"][:, :, step : step + 1] = self_attn._split_heads(
                    self_attn.w_v.forward(y)
                )
                context = attend(
                    q,
                    cache["self_k"][:, :, : step + 1],
                    cache["self_v"][:, :, : step + 1],
                )
                attended = self_attn.w_o.forward(self_attn._merge_heads(context))
                x = block.norm1.forward(y + attended)

                cross = block.cross_attn
                q2 = cross._split_heads(cross.w_q.forward(x))
                context2 = attend(q2, cache["cross_k"], cache["cross_v"], bias=cross_bias)
                crossed = cross.w_o.forward(cross._merge_heads(context2))
                x = block.norm2.forward(x + crossed)

                fed = block.ffn.forward(x, training=False)
                y = block.norm3.forward(x + fed)

            logits = self.out_proj.forward(y)
            next_ids = np.argmax(logits[:, 0, :], axis=-1)
            next_ids = np.where(finished, eos_id, next_ids)
            generated = np.concatenate([generated, next_ids[:, None]], axis=1)
            finished |= next_ids == eos_id
            if finished.all():
                break

        return self._strip_generated(generated, eos_id)

    def greedy_decode_naive(
        self,
        src_ids: np.ndarray,
        src_pad: np.ndarray,
        bos_id: int,
        eos_id: int,
        max_len: int | None = None,
    ) -> list[list[int]]:
        """Reference greedy decoder re-running the full prefix each step."""
        limit = min(max_len or self.config.max_len, self.config.max_len)
        batch = src_ids.shape[0]
        memory = self.encode(src_ids, src_pad, training=False)
        cross_mask = padding_mask(src_pad)

        generated = np.full((batch, 1), bos_id, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        for _ in range(limit - 1):
            t = generated.shape[1]
            y = self.tgt_embed.forward(generated) * self._scale + self.positional[:t]
            self_mask = causal_mask(t)
            for block in self.decoder_blocks:
                y = block.forward(y, memory, self_mask, cross_mask, training=False)
            logits = self.out_proj.forward(y[:, -1:, :])
            next_ids = np.argmax(logits[:, 0, :], axis=-1)
            next_ids = np.where(finished, eos_id, next_ids)
            generated = np.concatenate([generated, next_ids[:, None]], axis=1)
            finished |= next_ids == eos_id
            if finished.all():
                break
        return self._strip_generated(generated, eos_id)

    @staticmethod
    def _strip_generated(generated: np.ndarray, eos_id: int) -> list[list[int]]:
        outputs: list[list[int]] = []
        for row in generated:
            ids = list(row[1:])
            if eos_id in ids:
                ids = ids[: ids.index(eos_id)]
            outputs.append([int(i) for i in ids])
        return outputs

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Save config + parameters to an ``.npz`` checkpoint."""
        payload: dict[str, np.ndarray] = {
            f"param:{name}": value for name, value in self.named_parameters()
        }
        for key, value in asdict(self.config).items():
            payload[f"config:{key}"] = np.array(value)
        np.savez(path, **payload)

    @classmethod
    def load(cls, path: str | Path) -> Transformer:
        """Load a checkpoint saved by :meth:`save`."""
        data = np.load(path)
        config_kwargs = {}
        for key in data.files:
            if key.startswith("config:"):
                name = key.split(":", 1)[1]
                value = data[key]
                config_kwargs[name] = value.item()
        config = TransformerConfig(**config_kwargs)
        model = cls(config)
        state = {
            key.split(":", 1)[1]: data[key]
            for key in data.files
            if key.startswith("param:")
        }
        model.load_state_dict(state)
        return model
