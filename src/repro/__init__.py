"""repro: reproduction of "Accelerating OTA Circuit Design: Transistor
Sizing Based on a Transformer Model and Precomputed Lookup Tables"
(DATE 2025).

Subpackages
-----------
``devices``
    EKV-style MOSFET compact model (the foundry-model substitute).
``spice``
    From-scratch SPICE substrate: nonlinear DC (Newton on MNA), small-signal
    AC analysis, metric extraction, characterization/ICMR sweeps.
``dpsfg``
    Driving-point signal flow graphs: construction from netlists, path and
    cycle enumeration, Mason's gain formula, Fig. 4 sequence serialization.
``nlp``
    Engineering-notation formatting, character-level tokenization and the
    paper's restricted byte-pair encoding.
``transformer``
    From-scratch numpy encoder-decoder transformer with full backprop,
    weighted cross-entropy, Adam, and KV-cached greedy decoding.
``lut``
    Precomputed per-unit-width lookup tables and the gm/Id width estimator
    (Algorithm 1).
``topologies``
    The 5T-OTA / CM-OTA / 2S-OTA netlist generators and the active-inductor
    example circuit.
``datagen``
    Dataset generation (sampling, region/ICMR filters) and sequence-pair
    corpus assembly.
``core``
    The end-to-end sizing flow (Stages I-IV), training pipeline, margin
    allocation and evaluation utilities.
``solvers``
    The unified solver API: every sizing method (transformer copilot and
    the SA/PSO/DE baselines) behind one registry-dispatched ``Solver``
    protocol, running on a batched SPICE evaluation backend.
``baselines``
    Function-style adapters over the registered SA/PSO/DE solvers
    (Table IX comparison).
``service``
    The batched request/response sizing engine, topology-registry-backed,
    with JSON-serializable requests and the ``python -m repro`` CLI.
"""

__version__ = "1.2.0"

from . import solvers
from .core import DesignSpec, SizingFlow, SizingModel, train_sizing_model
from .service import SizingEngine, SizingRequest, SizingResponse
from .topologies import (
    CurrentMirrorOTA,
    FiveTransistorOTA,
    TwoStageOTA,
    available_topologies,
    register,
    topology_by_name,
)

__all__ = [
    "solvers",
    "DesignSpec",
    "SizingFlow",
    "SizingModel",
    "train_sizing_model",
    "SizingEngine",
    "SizingRequest",
    "SizingResponse",
    "CurrentMirrorOTA",
    "FiveTransistorOTA",
    "TwoStageOTA",
    "available_topologies",
    "register",
    "topology_by_name",
    "__version__",
]
