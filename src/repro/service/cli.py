"""``python -m repro`` — command-line front end of the sizing service.

Subcommands:

``size``
    JSONL requests in, JSONL responses out, through a batched
    :class:`~repro.service.SizingEngine`.  Reads stdin / writes stdout by
    default so it composes with shell pipelines::

        python -m repro size --bundle path/to/bundle < requests.jsonl > responses.jsonl

    ``--method`` dispatches every request to a registered solver
    (``copilot`` / ``sa`` / ``pso`` / ``de``), overriding the per-request
    ``method`` field; ``--budget`` caps each solver's SPICE evaluations;
    ``--corners`` verifies every request worst-case across the named PVT
    corners::

        python -m repro size --bundle path/to/bundle --method pso --budget 400 ...
        python -m repro size --bundle path/to/bundle --corners tt,ss,ff ...

    ``--analyses dc,ac,tran`` additionally integrates each verified
    design's step-response testbench and reports the transient metrics
    (slew rate, settling time, overshoot)::

        python -m repro size --bundle path/to/bundle --analyses dc,ac,tran ...

``serve``
    Run the HTTP serving layer (see :mod:`repro.serve`): concurrent
    ``POST /v1/size`` requests are coalesced by a micro-batching queue
    into batched engine calls, with backpressure (503 + ``Retry-After``
    on a full queue), per-request ``deadline_ms`` (504 when expired in
    the queue), and ``GET /stats`` observability::

        python -m repro serve --bundle path/to/bundle --port 8080 \
            --max-batch-size 16 --max-wait-ms 20 --queue-depth 256

    ``--workers N`` shards the engine across N spawn-based worker
    processes sharing one memory-mapped model artifact; ``--cache-dir``
    makes the result cache cross-process so any worker's result is a
    hit everywhere (see :mod:`repro.shard`)::

        python -m repro serve --bundle path/to/bundle --workers 4 \
            --cache-dir /tmp/sizing-cache

    Ctrl-C / SIGTERM shut down gracefully: the queue drains and every
    accepted request still gets its response.

``train``
    Run the one-time training pipeline and save the model bundle::

        python -m repro train --out path/to/bundle --designs 5T-OTA=400 --epochs 30

``topologies``
    List the circuits currently in the topology registry.

``solvers``
    List the sizing methods currently in the solver registry.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from collections.abc import Iterator, Sequence
from typing import IO

from ..solvers import available_solvers
from ..topologies import available_topologies
from .engine import SizingEngine
from .requests import SizingRequest

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Transformer+LUT OTA sizing service (batched request/response API)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    size = sub.add_parser(
        "size",
        help="size JSONL requests into JSONL responses",
        description=(
            "Read one JSON request per line, write one JSON response per line "
            "(order preserved). Exit status: 0 when every line was served, "
            "1 when any line failed to parse or errored, 2 when the bundle is "
            "missing. A served request whose spec could not be met "
            "(success=false, error=null) is a valid outcome, not a failure."
        ),
    )
    size.add_argument("--bundle", type=Path, required=True,
                      help="saved SizingModel directory (see 'train')")
    size.add_argument("--input", "-i", default="-",
                      help="JSONL request file, '-' for stdin (default)")
    size.add_argument("--output", "-o", default="-",
                      help="JSONL response file, '-' for stdout (default)")
    size.add_argument("--batch-size", type=int, default=64,
                      help="requests per engine batch (default 64)")
    size.add_argument("--cache-size", type=int, default=256,
                      help="LRU result-cache entries, 0 disables (default 256)")
    size.add_argument("--cache-dir", type=Path, default=None,
                      help="use a disk-backed cross-process result cache in this "
                           "directory instead of the in-memory LRU (shared with "
                           "'serve --cache-dir' and across runs)")
    size.add_argument("--method", default=None, metavar="SOLVER",
                      help="dispatch every request to this registered solver "
                           "(overrides the per-request 'method' field; "
                           "see 'python -m repro solvers')")
    size.add_argument("--budget", type=int, default=None,
                      help="per-request SPICE-evaluation budget for the solver "
                           "(copilot: verification iterations)")
    size.add_argument("--corners", default=None, metavar="C1,C2,...",
                      help="comma-separated PVT corner presets (tt/ss/ff) applied "
                           "to every request (overrides the per-request 'corners' "
                           "field); a request succeeds only when the design meets "
                           "spec at every corner")
    size.add_argument("--analyses", default=None, metavar="A1,A2,...",
                      help="comma-separated analyses selector applied to every "
                           "request (overrides the per-request 'analyses' field): "
                           "'dc,ac' (default pipeline) or 'dc,ac,tran' to also "
                           "integrate the step-response testbench and report "
                           "slew/settling/overshoot metrics")
    size.add_argument("--stats", action="store_true",
                      help="print engine serving counters to stderr when done")

    serve = sub.add_parser(
        "serve",
        help="run the HTTP serving layer (micro-batching front end)",
        description=(
            "Serve POST /v1/size over HTTP with dynamic micro-batching: "
            "concurrent requests coalesce into one batched engine call, "
            "flushing on --max-batch-size or --max-wait-ms, whichever "
            "first. A full queue answers 503 with Retry-After; a request "
            "whose deadline_ms expires while queued answers 504 without "
            "running the solver. GET /stats, /healthz and /topologies "
            "expose observability. Ctrl-C / SIGTERM drain gracefully."
        ),
    )
    serve.add_argument("--bundle", type=Path, required=True,
                       help="saved SizingModel directory (see 'train')")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port, 0 picks an ephemeral one (default 8080)")
    serve.add_argument("--max-batch-size", type=int, default=16,
                       help="flush a batch at this many requests (default 16)")
    serve.add_argument("--max-wait-ms", type=float, default=20.0,
                       help="flush a batch this long after its first request "
                            "arrived (default 20 ms); smaller = lower tail "
                            "latency, larger = bigger batches")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="bounded request queue; beyond this, requests get "
                            "503 + Retry-After (default 256)")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="LRU result-cache entries, 0 disables (default 256)")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="shard size_batch across N spawn-based worker "
                            "processes (0 = single-process, the default); the "
                            "model is shared zero-copy via a memory-mapped "
                            "artifact exported next to the bundle")
    serve.add_argument("--cache-dir", type=Path, default=None,
                       help="disk-backed cross-process result cache directory: "
                            "a spec sized by any worker (or a previous run) is "
                            "a cache hit everywhere; without it each worker "
                            "keeps a private in-memory LRU")
    serve.add_argument("--shard-by", choices=("spec", "topology", "round-robin"),
                       default="spec",
                       help="request routing across workers: 'spec' (default) "
                            "hashes the quantized cache key for worker "
                            "affinity, 'topology' pins each topology to one "
                            "worker, 'round-robin' spreads uniformly")
    serve.add_argument("--retry-after", type=int, default=1, metavar="SECONDS",
                       help="Retry-After hint on 503 responses (default 1)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")

    train = sub.add_parser("train", help="run the one-time training pipeline")
    train.add_argument("--out", type=Path, required=True,
                       help="directory to save the trained bundle into")
    train.add_argument("--designs", nargs="+", metavar="TOPOLOGY=COUNT",
                       default=["5T-OTA=500", "CM-OTA=350", "2S-OTA=350"],
                       help="designs per topology (default: 5T-OTA=500 CM-OTA=350 2S-OTA=350)")
    train.add_argument("--epochs", type=int, default=30)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--d-model", type=int, default=96)
    train.add_argument("--num-merges", type=int, default=200)
    train.add_argument("--dtype", choices=["float32", "float64"], default="float32")
    train.add_argument("--benchmark-config", action="store_true",
                       help="ignore the knobs above and train the benchmark-suite configuration")
    train.add_argument("--quiet", action="store_true", help="suppress progress logging")

    checks = sub.add_parser(
        "checks",
        help="run the repo-specific two-pass static analyzer (repro.checks)",
        description=(
            "Project-wide static analysis over the package sources: lock "
            "discipline and lock ordering on thread-shared classes, "
            "fork-safety of process-shared objects, hot-loop vectorization "
            "discipline, wire-format/cache-key drift, RNG determinism, JSON "
            "non-finite safety. Exit 0 when no error-severity finding "
            "survives the baseline, 1 otherwise. Equivalent to "
            "`python -m repro.checks`."
        ),
    )
    checks.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to check "
                             "(default: the installed repro package)")
    checks.add_argument("--format", choices=("text", "json"), default="text",
                        help="stdout report format (default text)")
    checks.add_argument("--output", type=Path, default=None, metavar="FILE",
                        help="also write the JSON report to FILE")
    checks.add_argument("--baseline", type=Path, default=None, metavar="FILE",
                        help="JSON baseline of grandfathered findings")
    checks.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to --baseline FILE and exit")
    checks.add_argument("--changed-only", nargs="?", const="HEAD", default=None,
                        metavar="REF",
                        help="report findings only for files changed vs REF "
                             "(default HEAD); the full tree is still parsed")
    checks.add_argument("--fix", action="store_true",
                        help="delete unused `# checks: ignore[...]` suppressions "
                             "in place, then re-check")
    checks.add_argument("--strict", action="store_true",
                        help="fail on warning-severity findings too")
    checks.add_argument("--list-rules", action="store_true",
                        help="list rule ids and exit")

    sub.add_parser("topologies", help="list registered topologies")
    sub.add_parser("solvers", help="list registered sizing methods")
    return parser


# ----------------------------------------------------------------------
# size
# ----------------------------------------------------------------------
def _open_input(spec: str) -> IO[str]:
    return sys.stdin if spec == "-" else open(spec, encoding="utf-8")


def _open_output(spec: str) -> IO[str]:
    return sys.stdout if spec == "-" else open(spec, "w", encoding="utf-8")


def _batched_lines(stream: IO[str], batch_size: int) -> Iterator[list[str]]:
    batch: list[str] = []
    for line in stream:
        if line.strip():
            batch.append(line)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def _load_bundle(bundle: Path):
    """The saved model, or ``None`` (with a stderr message) when absent."""
    from ..core.bundle import SizingModel

    if not (bundle / "bundle.json").exists():
        print(
            f"error: no model bundle at {bundle} "
            "(expected a directory saved by 'python -m repro train --out ...')",
            file=sys.stderr,
        )
        return None
    return SizingModel.load(bundle)


def _run_size(args: argparse.Namespace) -> int:
    from ..devices import resolve_corners
    from ..serve.protocol import RequestError, invalid_request_response, parse_request_text
    from ..topologies import resolve_analyses

    if args.method is not None and args.method not in available_solvers():
        print(
            f"error: unknown solver {args.method!r} "
            f"(registered: {', '.join(available_solvers())})",
            file=sys.stderr,
        )
        return 2
    corners = None
    if args.corners is not None:
        try:
            corners = resolve_corners(
                [name.strip() for name in args.corners.split(",") if name.strip()]
            )
            if not corners:
                raise ValueError("no corner names given")
        except ValueError as error:
            # An empty override would silently *disable* per-request corner
            # verification stream-wide; refuse it like a bad preset name.
            print(f"error: bad --corners: {error}", file=sys.stderr)
            return 2
    analyses = None
    if args.analyses is not None:
        try:
            names = [name.strip() for name in args.analyses.split(",") if name.strip()]
            if not names:
                raise ValueError("no analysis names given")
            analyses = resolve_analyses(names)
        except ValueError as error:
            print(f"error: bad --analyses: {error}", file=sys.stderr)
            return 2
    model = _load_bundle(args.bundle)
    if model is None:
        return 2
    engine = SizingEngine(
        model, cache_size=args.cache_size, cache=_shared_cache(args.cache_dir)
    )

    overrides = {}
    if args.method is not None:
        overrides["method"] = args.method
    if args.budget is not None:
        overrides["budget"] = args.budget
    if corners is not None:
        overrides["corners"] = corners
    if analyses is not None:
        overrides["analyses"] = analyses

    source = _open_input(args.input)
    sink = _open_output(args.output)
    # Exit status: only *tool-level* problems count as failures — lines
    # that didn't parse or errored (e.g. unknown topology).  A correctly
    # served request whose spec turned out infeasible (success=false,
    # error=null) is a valid outcome, not a failure.
    failures = 0
    try:
        for lines in _batched_lines(source, max(1, args.batch_size)):
            requests: list[SizingRequest | None] = []
            parse_errors: dict[int, str] = {}
            for index, line in enumerate(lines):
                # Validation shared with the HTTP serving layer: a bad
                # JSONL line and a bad HTTP body produce the same
                # structured error payload (see repro.serve.protocol).
                try:
                    request, _ = parse_request_text(line)
                    requests.append(replace(request, **overrides) if overrides else request)
                except RequestError as error:
                    requests.append(None)
                    parse_errors[index] = str(error)
            responses = iter(engine.size_batch([r for r in requests if r is not None]))
            for index, request in enumerate(requests):
                if request is None:
                    failures += 1
                    # Same schema as every other line, so consumers can
                    # parse the whole stream with SizingResponse.from_json.
                    response = invalid_request_response(parse_errors[index])
                else:
                    response = next(responses)
                    failures += 1 if response.error is not None else 0
                sink.write(response.to_json_line() + "\n")
            sink.flush()
    finally:
        if source is not sys.stdin:
            source.close()
        if sink is not sys.stdout:
            sink.close()

    if args.stats:
        stats = engine.stats
        print(
            f"requests={stats.requests} cache_hits={stats.cache_hits} "
            f"coalesced={stats.coalesced} "
            f"batches={stats.batches} inference_calls={stats.inference_calls} "
            f"inference_sequences={stats.inference_sequences} "
            f"inference_seconds={stats.inference_seconds:.2f} "
            f"spice_simulations={stats.spice_simulations} "
            f"solver_requests={stats.solver_requests}",
            file=sys.stderr,
        )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def _shared_cache(cache_dir: Path | None):
    """A :class:`SharedResultCache` for ``--cache-dir``, or ``None``."""
    if cache_dir is None:
        return None
    from .cache import SharedResultCache

    return SharedResultCache(cache_dir)


def _build_serve_engine(args: argparse.Namespace, model):
    """The serving engine: sharded pool when ``--workers N`` is given.

    Sharding exports the bundle once as a mmap-friendly artifact (under
    ``<bundle>/shared_artifact``) so the N spawn workers map one shared
    copy of the weights and LUT grids instead of loading N private ones.
    """
    if args.workers <= 0:
        return SizingEngine(
            model, cache_size=args.cache_size, cache=_shared_cache(args.cache_dir)
        )
    from ..shard import ShardedEngine

    artifact_dir = args.bundle / "shared_artifact"
    model.export_shared_artifact(artifact_dir)
    return ShardedEngine.from_artifact(
        artifact_dir,
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_size=args.cache_size,
        shard_by=args.shard_by,
    )


def _run_serve(args: argparse.Namespace) -> int:
    import signal

    from ..serve import create_server

    model = _load_bundle(args.bundle)
    if model is None:
        return 2
    try:
        engine = _build_serve_engine(args, model)
    except (OSError, ValueError, RuntimeError) as error:
        print(f"error: cannot start worker pool: {error}", file=sys.stderr)
        return 2
    log = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    try:
        server = create_server(
            engine,
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            queue_depth=args.queue_depth,
            retry_after_s=args.retry_after,
            # Pipeline batches across the worker pool: batch k+1 forms
            # while batch k runs, one in-flight batch per worker.
            concurrent_batches=max(1, args.workers),
            log=log,
        )
    except (OSError, ValueError) as error:
        if hasattr(engine, "close"):
            engine.close()
        print(f"error: cannot start server: {error}", file=sys.stderr)
        return 2

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    host, port = server.server_address[:2]
    workers_note = f", workers={args.workers}" if args.workers > 0 else ""
    print(
        f"serving on http://{host}:{port} "
        f"(max_batch_size={args.max_batch_size}, max_wait_ms={args.max_wait_ms:g}, "
        f"queue_depth={args.queue_depth}{workers_note}); Ctrl-C to drain and stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        print("shutting down: draining the request queue...", file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous)
        # Stop accepting, flush every queued request (their handler
        # threads write the responses), then close the listener and the
        # worker pool.
        server.batcher.close()
        server.server_close()
        if hasattr(engine, "close"):
            engine.close()
    print("serve: shutdown complete", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# train
# ----------------------------------------------------------------------
def _parse_designs(pairs: Sequence[str]) -> tuple[tuple[str, int], ...]:
    parsed: list[tuple[str, int]] = []
    for pair in pairs:
        name, _, count = pair.partition("=")
        if not count:
            raise SystemExit(f"--designs expects TOPOLOGY=COUNT, got {pair!r}")
        parsed.append((name, int(count)))
    return tuple(parsed)


def _run_train(args: argparse.Namespace) -> int:
    from ..core.pipeline import BENCHMARK_CONFIG, PipelineConfig, train_sizing_model

    if args.benchmark_config:
        config = BENCHMARK_CONFIG
    else:
        config = PipelineConfig(
            designs_per_topology=_parse_designs(args.designs),
            epochs=args.epochs,
            seed=args.seed,
            d_model=args.d_model,
            num_merges=args.num_merges,
            dtype=args.dtype,
        )
    log = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    artifacts = train_sizing_model(config, log=log)
    artifacts.model.save(args.out)
    print(f"saved bundle to {args.out}", file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "size":
        return _run_size(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "train":
        return _run_train(args)
    if args.command == "checks":
        from ..checks.cli import run as run_checks_cli
        from ..checks.registry import DEFAULT_RULES

        if args.list_rules:
            for rule in DEFAULT_RULES:
                print(f"{rule.id}: {rule.summary}")
            return 0
        return run_checks_cli(
            args.paths,
            fmt=args.format,
            output=args.output,
            baseline=args.baseline,
            write_baseline_file=args.write_baseline,
            changed_only=args.changed_only,
            fix=args.fix,
            strict=args.strict,
        )
    if args.command == "topologies":
        for name in available_topologies():
            print(name)
        return 0
    if args.command == "solvers":
        for name in available_solvers():
            print(name)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")
