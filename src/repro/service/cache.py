"""LRU result cache keyed by (topology, quantized spec).

The encoder serializes specifications to ~3 significant digits, so two
specs that agree after the same quantization produce the *identical*
encoder sequence and therefore the identical decode.  The Stage IV
verdict, however, is judged against the request's *exact* targets, so a
cached response only transfers to a near-duplicate request when it can
be re-validated: either the specs match exactly (deterministic flow ⇒
identical outcome), or the cached design's measured metrics provably
satisfy the new request's own targets.  Anything else is a miss.

The cache is safe under concurrent ``size_batch`` callers: every LRU
mutation (the ``move_to_end`` on hit, inserts, evictions) and the
hit/miss counters run under one internal lock, so the serving layer's
worker threads and its ``/stats`` reader can share one engine.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import replace
from collections.abc import Hashable
from typing import Any

from ..core.specs import DesignSpec
from ..topologies import binding_corner
from .requests import SizingRequest, SizingResponse

__all__ = ["ResultCache", "quantize_spec"]


def quantize_spec(value: float, sig_digits: int = 3) -> float:
    """Round to ``sig_digits`` significant digits (the encoder's own
    resolution, see :mod:`repro.nlp.numformat`).

    Non-finite inputs are rejected loudly: an ``inf``/``nan`` spec value
    would otherwise propagate into a cache key (``inf`` survives ``%g``
    formatting, and ``nan != nan`` makes the key unmatchable), poisoning
    lookups instead of failing at the bad request.
    """
    if not math.isfinite(value):
        raise ValueError(
            f"cannot quantize non-finite spec value {value!r}: "
            "cache keys require finite targets"
        )
    return float(f"{value:.{sig_digits}g}")


class ResultCache:
    """Bounded LRU mapping quantized requests to finished responses."""

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be positive; use no cache instead of size 0")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, tuple[DesignSpec, SizingResponse]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        # Serializes LRU mutation and counter updates across threads
        # (reentrant: ``get`` holds it across the ``_transferable`` probe).
        self._lock = threading.RLock()

    @staticmethod
    def key(request: SizingRequest) -> Hashable:
        """Cache key: topology + quantized targets + loop parameters.

        ``method`` and ``budget`` are part of the key for safety, although
        the engine only consults the cache for deterministic copilot
        requests (stochastic solver results must not be replayed).  The
        resolved ``corners`` tuple is part of the key too: a worst-case
        verdict at one corner set says nothing about another, so requests
        differing only in corners must never collide (pinned by tests).
        So are the quantized transient targets (``None`` when unset) and
        the ``analyses`` selector: a verdict judged against different
        time-domain targets -- or measured by a different pipeline --
        must never transfer.
        """
        return (
            request.topology,
            quantize_spec(request.spec.gain_db),
            quantize_spec(request.spec.f3db_hz),
            quantize_spec(request.spec.ugf_hz),
            tuple(
                None if value is None else quantize_spec(value)
                for value in (
                    request.spec.slew_v_per_s,
                    request.spec.settling_time_s,
                    request.spec.overshoot_frac,
                )
            ),
            request.analyses,
            request.max_iterations,
            request.rel_tol,
            request.method,
            request.budget,
            request.corners,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, request: SizingRequest) -> bool:
        with self._lock:
            return self._transferable(request) is not None

    def _transferable(self, request: SizingRequest) -> SizingResponse | None:
        """The cached response if its verdict carries over to ``request``."""
        entry = self._entries.get(self.key(request))
        if entry is None:
            return None
        cached_spec, response = entry
        if cached_spec == request.spec:
            # Identical request: the flow is deterministic, outcome included.
            return response
        if response.success and response.metrics is not None:
            # Near-duplicate: the cached design measurably meets the new
            # exact targets too, so success transfers.  Corner-aware
            # responses must re-validate *every* corner — the headline
            # ``metrics`` is only the binding worst corner by total
            # shortfall, which does not dominate per metric.
            if response.corner_metrics:
                if all(
                    request.spec.satisfied(metrics, rel_tol=request.rel_tol)
                    for metrics in response.corner_metrics.values()
                ):
                    # The binding corner is spec-dependent: re-rank the
                    # per-corner measurements against the *new* request's
                    # exact targets so worst_corner/headline metrics are
                    # right for this request, not the cached one.
                    worst_name, worst_metrics = binding_corner(
                        request.spec, response.corner_metrics
                    )
                    return replace(
                        response, worst_corner=worst_name, metrics=worst_metrics
                    )
            elif request.spec.satisfied(response.metrics, rel_tol=request.rel_tol):
                return response
        return None

    def get(self, request: SizingRequest) -> SizingResponse | None:
        """The cached response re-addressed to ``request``, or ``None``."""
        with self._lock:
            response = self._transferable(request)
            if response is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(self.key(request))
            return response.with_request_id(request.id, cached=True)

    def put(self, request: SizingRequest, response: SizingResponse) -> None:
        with self._lock:
            key = self.key(request)
            self._entries[key] = (request.spec, response)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def as_dict(self) -> dict[str, Any]:
        """Atomic counters snapshot for the serving layer's ``/stats``."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }
