"""LRU result cache keyed by (topology, quantized spec).

The encoder serializes specifications to ~3 significant digits, so two
specs that agree after the same quantization produce the *identical*
encoder sequence and therefore the identical decode.  The Stage IV
verdict, however, is judged against the request's *exact* targets, so a
cached response only transfers to a near-duplicate request when it can
be re-validated: either the specs match exactly (deterministic flow ⇒
identical outcome), or the cached design's measured metrics provably
satisfy the new request's own targets.  Anything else is a miss.

The cache is safe under concurrent ``size_batch`` callers: every LRU
mutation (the ``move_to_end`` on hit, inserts, evictions) and the
hit/miss counters run under one internal lock, so the serving layer's
worker threads and its ``/stats`` reader can share one engine.
"""

from __future__ import annotations

import json
import math
import pickle
import sqlite3
import threading
from collections import OrderedDict
from contextlib import closing
from dataclasses import replace
from collections.abc import Hashable
from pathlib import Path
from typing import Any

from ..core.specs import DesignSpec
from ..devices import Corner
from ..topologies import binding_corner
from .requests import SizingRequest, SizingResponse

__all__ = ["ResultCache", "SharedResultCache", "quantize_spec", "transferable_response"]


def quantize_spec(value: float, sig_digits: int = 3) -> float:
    """Round to ``sig_digits`` significant digits (the encoder's own
    resolution, see :mod:`repro.nlp.numformat`).

    Non-finite inputs are rejected loudly: an ``inf``/``nan`` spec value
    would otherwise propagate into a cache key (``inf`` survives ``%g``
    formatting, and ``nan != nan`` makes the key unmatchable), poisoning
    lookups instead of failing at the bad request.
    """
    if not math.isfinite(value):
        raise ValueError(
            f"cannot quantize non-finite spec value {value!r}: "
            "cache keys require finite targets"
        )
    return float(f"{value:.{sig_digits}g}")


def transferable_response(
    request: SizingRequest, cached_spec: DesignSpec, response: SizingResponse
) -> SizingResponse | None:
    """The cached response if its verdict carries over to ``request``.

    Shared by :class:`ResultCache` and :class:`SharedResultCache` so the
    two stores apply the identical transfer rule: exact-spec match
    replays outright (the flow is deterministic), and a near-duplicate
    only transfers when the cached design's *measured* metrics satisfy
    the new request's exact targets — at every corner, with the binding
    corner re-ranked against the new targets.
    """
    if cached_spec == request.spec:
        # Identical request: the flow is deterministic, outcome included.
        return response
    if response.success and response.metrics is not None:
        # Near-duplicate: the cached design measurably meets the new
        # exact targets too, so success transfers.  Corner-aware
        # responses must re-validate *every* corner — the headline
        # ``metrics`` is only the binding worst corner by total
        # shortfall, which does not dominate per metric.
        if response.corner_metrics:
            if all(
                request.spec.satisfied(metrics, rel_tol=request.rel_tol)
                for metrics in response.corner_metrics.values()
            ):
                # The binding corner is spec-dependent: re-rank the
                # per-corner measurements against the *new* request's
                # exact targets so worst_corner/headline metrics are
                # right for this request, not the cached one.
                worst_name, worst_metrics = binding_corner(
                    request.spec, response.corner_metrics
                )
                return replace(
                    response, worst_corner=worst_name, metrics=worst_metrics
                )
        elif request.spec.satisfied(response.metrics, rel_tol=request.rel_tol):
            return response
    return None


class ResultCache:
    """Bounded LRU mapping quantized requests to finished responses."""

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be positive; use no cache instead of size 0")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, tuple[DesignSpec, SizingResponse]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        # Serializes LRU mutation and counter updates across threads
        # (reentrant: ``get`` holds it across the ``_transferable`` probe).
        self._lock = threading.RLock()

    @staticmethod
    def key(request: SizingRequest) -> Hashable:
        """Cache key: topology + quantized targets + loop parameters.

        ``method`` and ``budget`` are part of the key for safety, although
        the engine only consults the cache for deterministic copilot
        requests (stochastic solver results must not be replayed).  The
        resolved ``corners`` tuple is part of the key too: a worst-case
        verdict at one corner set says nothing about another, so requests
        differing only in corners must never collide (pinned by tests).
        So are the quantized transient targets (``None`` when unset) and
        the ``analyses`` selector: a verdict judged against different
        time-domain targets -- or measured by a different pipeline --
        must never transfer.
        """
        return (
            request.topology,
            quantize_spec(request.spec.gain_db),
            quantize_spec(request.spec.f3db_hz),
            quantize_spec(request.spec.ugf_hz),
            tuple(
                None if value is None else quantize_spec(value)
                for value in (
                    request.spec.slew_v_per_s,
                    request.spec.settling_time_s,
                    request.spec.overshoot_frac,
                )
            ),
            request.analyses,
            request.max_iterations,
            request.rel_tol,
            request.method,
            request.budget,
            request.corners,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, request: SizingRequest) -> bool:
        with self._lock:
            return self._transferable(request) is not None

    def _transferable(self, request: SizingRequest) -> SizingResponse | None:
        """The cached response if its verdict carries over to ``request``."""
        entry = self._entries.get(self.key(request))
        if entry is None:
            return None
        cached_spec, response = entry
        return transferable_response(request, cached_spec, response)

    def get(self, request: SizingRequest) -> SizingResponse | None:
        """The cached response re-addressed to ``request``, or ``None``."""
        with self._lock:
            response = self._transferable(request)
            if response is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(self.key(request))
            return response.with_request_id(request.id, cached=True)

    def put(self, request: SizingRequest, response: SizingResponse) -> None:
        with self._lock:
            key = self.key(request)
            self._entries[key] = (request.spec, response)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def as_dict(self) -> dict[str, Any]:
        """Atomic counters snapshot for the serving layer's ``/stats``."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }


def _json_safe_key(key: Hashable) -> Any:
    """Recursively convert a cache key tuple into JSON-dumpable values."""
    if isinstance(key, tuple):
        return [_json_safe_key(part) for part in key]
    if isinstance(key, Corner):
        return key.to_json()
    return key


class SharedResultCache:  # checks: process-shared
    """Disk-backed LRU result cache shared by concurrent processes.

    The same quantized key and transfer rule as :class:`ResultCache`,
    stored in a sqlite database so every sharding worker (and the parent,
    and future server restarts) sees one cache: a spec sized via worker A
    hits when re-requested via worker B.  Responses are pickled whole, so
    a cross-process hit is bit-identical to the original response.

    Marked ``process-shared``: the instance is plain data (a path and a
    size bound).  Every operation opens its own short-lived connection —
    holding a connection (or a lock) on the instance would either break
    pickling into spawn workers or silently share a non-fork-safe handle,
    exactly what the fork-safety rule polices.  Concurrency is delegated
    to sqlite (WAL + busy timeout + ``BEGIN IMMEDIATE`` transactions).

    When two workers race on the same key the store is last-writer-wins:
    both compute (the benign double-compute window — the key was absent
    when both probed), both ``put``, and the second ``INSERT OR
    REPLACE`` overwrites the first with an equivalent entry.  Hit/miss
    counters live in the database too, so accounting stays exact across
    the whole pool rather than per process.
    """

    def __init__(self, directory: str | Path, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError("maxsize must be positive; use no cache instead of size 0")
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        self.directory = str(path)
        self.path = str(path / "cache.sqlite")
        self.maxsize = maxsize
        with closing(self._connect()) as conn:
            conn.executescript(
                """
                CREATE TABLE IF NOT EXISTS entries (
                    key TEXT PRIMARY KEY,
                    spec BLOB NOT NULL,
                    response BLOB NOT NULL,
                    seq INTEGER NOT NULL
                );
                CREATE INDEX IF NOT EXISTS entries_seq ON entries(seq);
                CREATE TABLE IF NOT EXISTS counters (
                    name TEXT PRIMARY KEY,
                    value INTEGER NOT NULL
                );
                INSERT OR IGNORE INTO counters(name, value) VALUES
                    ('hits', 0), ('misses', 0), ('clock', 0);
                """
            )
            conn.commit()

    # ------------------------------------------------------------------
    @staticmethod
    def text_key(request: SizingRequest) -> str:
        """Canonical JSON form of :meth:`ResultCache.key` (sqlite-friendly)."""
        return json.dumps(
            _json_safe_key(ResultCache.key(request)),
            allow_nan=False,
            sort_keys=True,
        )

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=10.0, isolation_level=None)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    @staticmethod
    def _bump(conn: sqlite3.Connection, name: str, delta: int) -> int:
        row = conn.execute(
            "UPDATE counters SET value = value + ? WHERE name = ? RETURNING value",
            (delta, name),
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with closing(self._connect()) as conn:
            row = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
            return int(row[0])

    def __contains__(self, request: SizingRequest) -> bool:
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT spec, response FROM entries WHERE key = ?",
                (self.text_key(request),),
            ).fetchone()
        if row is None:
            return False
        return (
            transferable_response(request, pickle.loads(row[0]), pickle.loads(row[1]))
            is not None
        )

    def get(self, request: SizingRequest) -> SizingResponse | None:
        """The cached response re-addressed to ``request``, or ``None``."""
        key = self.text_key(request)
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT spec, response FROM entries WHERE key = ?", (key,)
                ).fetchone()
                response = None
                if row is not None:
                    response = transferable_response(
                        request, pickle.loads(row[0]), pickle.loads(row[1])
                    )
                if response is None:
                    self._bump(conn, "misses", 1)
                else:
                    seq = self._bump(conn, "clock", 1)
                    conn.execute(
                        "UPDATE entries SET seq = ? WHERE key = ?", (seq, key)
                    )
                    self._bump(conn, "hits", 1)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        if response is None:
            return None
        return response.with_request_id(request.id, cached=True)

    def put(self, request: SizingRequest, response: SizingResponse) -> None:
        key = self.text_key(request)
        spec_blob = pickle.dumps(request.spec, protocol=pickle.HIGHEST_PROTOCOL)
        response_blob = pickle.dumps(response, protocol=pickle.HIGHEST_PROTOCOL)
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                seq = self._bump(conn, "clock", 1)
                conn.execute(
                    "INSERT OR REPLACE INTO entries(key, spec, response, seq) "
                    "VALUES (?, ?, ?, ?)",
                    (key, spec_blob, response_blob, seq),
                )
                conn.execute(
                    "DELETE FROM entries WHERE key IN ("
                    "  SELECT key FROM entries ORDER BY seq ASC"
                    "  LIMIT max(0, (SELECT COUNT(*) FROM entries) - ?)"
                    ")",
                    (self.maxsize,),
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

    def clear(self) -> None:
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute("DELETE FROM entries")
                conn.execute("UPDATE counters SET value = 0")
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

    def as_dict(self) -> dict[str, Any]:
        """Pool-wide counters snapshot for the serving layer's ``/stats``."""
        with closing(self._connect()) as conn:
            counters = dict(
                conn.execute(
                    "SELECT name, value FROM counters WHERE name IN ('hits', 'misses')"
                ).fetchall()
            )
            size = int(conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0])
        return {
            "hits": int(counters.get("hits", 0)),
            "misses": int(counters.get("misses", 0)),
            "size": size,
            "maxsize": self.maxsize,
            "shared": True,
            "path": self.path,
        }
