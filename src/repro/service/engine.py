"""The batched sizing engine (Stages I-IV over many requests at once).

One :class:`SizingEngine` owns one trained :class:`~repro.core.SizingModel`
and serves any number of topologies through the registry.  The request
loop is *round based*: every copilot iteration, all still-active requests
are grouped by topology (serialization and parsing are per-topology) and
translated in one greedy decode whose batch spans the whole round — one
model serves every topology, so the fusion crosses topology boundaries
(Stage I/II).  Each request then runs width estimation (Stage III), and
the round's verifiable candidates are verified together: one
``measure_many`` call per topology through the engine's pluggable
:class:`~repro.solvers.EvalBackend` (Stage IV), so the verification
SPICE simulations of a round share one stacked complex MNA factorization
instead of running one at a time.  Throughput therefore scales with the
batch size instead of with Python loop iterations, while per-request
semantics — margin allocation, retry nudges, iteration accounting,
per-candidate ``ConvergenceError`` isolation — stay identical to the
sequential ``SizingFlow.size`` path (the parity tests pin bit-identical
decoded texts, widths and traces).

A bounded LRU cache keyed by (topology, quantized spec) absorbs repeated
and near-duplicate requests without touching the transformer at all.

Requests may also name any registered solver (``method="pso"`` etc., see
:mod:`repro.solvers`): those are dispatched to the unified solver API --
running SPICE-in-the-loop on the batched evaluation backend -- and come
back in the same response schema, so one service endpoint serves copilot
and baseline sizing alike.

Requests with a ``corners`` axis are verified **worst-case across PVT
corners**: each round's candidates are measured at every corner (the
population x corner block stacks into the same batched solves), margin
allocation chases the binding worst corner, and success requires every
corner to meet the spec.  The corner axis is part of the result-cache
key and of the in-batch coalescing key, so corner sets never cross-talk.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, fields
from collections.abc import Sequence
from typing import Any

import numpy as np

from ..core.bundle import SizingModel
from ..core.flow import IterationTrace, SizingResult
from ..core.margin import tighten_spec
from ..core.specs import DesignSpec
from ..datagen.serialize import ParsedParams
from ..lut import DeviceParams, estimate_width
from ..solvers.backend import BatchedBackend, EvalBackend
from ..spice import TRAN_METRIC_DIRECTIONS, PerformanceMetrics
from ..topologies import MeasureOutcome, OTATopology, topology_by_name
from .cache import ResultCache
from .requests import SizingRequest, SizingResponse

__all__ = ["SizingEngine", "EngineStats"]

#: Retry nudge applied when an iteration produced nothing verifiable
#: (unparseable decode, inconsistent widths, or a non-converging design).
_NUDGE = {"gain_db": 1.01, "f3db_hz": 1.02, "ugf_hz": 1.02}


def _derated_spec(spec: DesignSpec, rel_tol: float) -> DesignSpec:
    """The spec a registry-dispatched solver chases under ``rel_tol``.

    Loosens every target the way Stage IV's ``satisfied(rel_tol=...)``
    does: minimum targets (the AC triple, slew rate) derate down by
    ``1 - rel_tol``, maximum targets (settling time, overshoot) inflate
    up by ``1 + rel_tol``.
    """
    if not rel_tol:
        return spec
    derate = 1.0 - rel_tol
    factors = {"gain_db": derate, "f3db_hz": derate, "ugf_hz": derate}
    for name, direction in TRAN_METRIC_DIRECTIONS.items():
        factors[name] = derate if direction == "min" else 1.0 + rel_tol
    return spec.scaled(factors)


@dataclass
class EngineStats:
    """Serving counters, cumulative over the engine's lifetime.

    Safe under concurrent ``size_batch`` callers: writers go through
    :meth:`add` and readers through :meth:`snapshot` / :meth:`as_dict`,
    all serialized on one internal lock — the serving layer's ``/stats``
    endpoint reads while the dispatcher (or several library threads)
    writes, and a torn read must never show e.g. ``cache_hits`` ahead of
    ``requests``.  Field access stays plain for single-threaded callers
    and the existing tests.
    """

    requests: int = 0
    cache_hits: int = 0
    #: In-batch exact duplicates coalesced onto a leader's computation
    #: (no cache lookup involved, so not counted under ``cache_hits``).
    coalesced: int = 0
    batches: int = 0
    inference_calls: int = 0
    inference_sequences: int = 0
    inference_seconds: float = 0.0
    spice_simulations: int = 0
    solver_requests: int = 0

    def __post_init__(self) -> None:
        # Not a dataclass field: equality/repr compare counters only.
        self._lock = threading.Lock()

    def add(self, **deltas: float) -> None:
        """Atomically increment the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> EngineStats:
        """A consistent point-in-time copy (its own independent lock)."""
        with self._lock:
            return EngineStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def as_dict(self) -> dict[str, Any]:
        """Atomic JSON-ready snapshot, field-declaration order."""
        copy = self.snapshot()
        return {f.name: getattr(copy, f.name) for f in fields(copy)}


class _ActiveRequest:
    """Mutable per-request state while its copilot loop is in flight."""

    __slots__ = (
        "request", "topology", "original", "current", "trace", "decoded_texts",
        "spice_count", "iteration", "best", "best_shortfall", "start", "result",
        "best_corner_metrics", "best_worst_corner",
    )

    def __init__(self, request: SizingRequest, topology: OTATopology):
        self.request = request
        self.topology = topology
        self.original = request.spec
        self.current = request.spec
        self.trace: list[IterationTrace] = []
        self.decoded_texts: list[str] = []
        self.spice_count = 0
        self.iteration = 0
        self.best: tuple[dict[str, float], PerformanceMetrics] | None = None
        self.best_shortfall = float("inf")
        #: Per-corner measurements of the best iterate (corner requests).
        self.best_corner_metrics: dict[str, PerformanceMetrics] | None = None
        self.best_worst_corner: str | None = None
        self.start = time.perf_counter()
        self.result: SizingResult | None = None


class SizingEngine:
    """Batched request/response front end over one trained sizing model."""

    def __init__(
        self,
        model: SizingModel,
        cache_size: int = 256,
        width_bounds: tuple[float, float] = (0.1e-6, 200e-6),
        max_candidate_spread: float = 5.0,
        backend: EvalBackend | None = None,
        cache: object | None = None,
    ):
        self.model = model
        self.width_bounds = width_bounds
        #: Stage IV evaluation strategy, shared with registry-dispatched
        #: solvers so SPICE-call accounting flows through one place.
        self.backend = backend if backend is not None else BatchedBackend()
        #: Reject an inference whose Algorithm-1 width candidates disagree
        #: by more than this relative spread: wildly inconsistent predicted
        #: parameters cannot describe any physical device, so re-inferring
        #: beats verifying a garbage design.
        self.max_candidate_spread = max_candidate_spread
        #: ``cache=`` injects any object with the ``ResultCache`` get/put
        #: protocol — notably a :class:`SharedResultCache` so sharding
        #: workers (and single-process engines pointed at the same
        #: ``--cache-dir``) share one cross-process store.  Default: a
        #: private in-memory LRU, or none when ``cache_size`` is 0.
        if cache is not None:
            self.cache = cache
        else:
            self.cache = ResultCache(cache_size) if cache_size else None
        self.stats = EngineStats()
        self._topologies: dict[str, OTATopology] = {}
        # Lazy topology construction may race under concurrent callers;
        # building twice would fork per-topology caches.
        self._topologies_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Topology resolution
    # ------------------------------------------------------------------
    def topology(self, name: str) -> OTATopology:
        """The engine's instance of a registered topology (lazily built)."""
        with self._topologies_lock:
            if name not in self._topologies:
                self._topologies[name] = topology_by_name(name)
            return self._topologies[name]

    def adopt_topology(self, topology: OTATopology) -> None:
        """Serve an already-instantiated topology (shares its caches)."""
        with self._topologies_lock:
            self._topologies[topology.name] = topology

    # ------------------------------------------------------------------
    # Stage III: Algorithm 1 through the LUTs
    # ------------------------------------------------------------------
    def widths_from_params(
        self, topology: OTATopology, parsed_values: dict[str, dict[str, float]]
    ) -> dict[str, float] | None:
        """Translate per-group device parameters into widths.

        Returns ``None`` when the predicted parameters are physically
        inconsistent (width candidates disagree beyond
        :attr:`max_candidate_spread`), signalling the caller to retry
        inference instead of wasting a verification simulation.
        """
        widths: dict[str, float] = {}
        for group in topology.groups:
            params = parsed_values[group.name]
            tech = group.tech
            # gm/Id can never exceed the weak-inversion limit 1/(n*Ut); a
            # prediction above it is a transcription error on Id -- repair
            # it rather than letting Algorithm 1 chase an impossible point.
            gm_id_max = 0.95 / (tech.n_slope * tech.ut)
            id_value = max(params["id"], params["gm"] / gm_id_max)
            device_params = DeviceParams(
                gm=params["gm"],
                gds=params["gds"],
                cds=params["cds"],
                cgs=params["cgs"],
                id=id_value,
            )
            lut = self.model.lut_for(topology, group.name)
            estimate = estimate_width(device_params, lut, vdd=topology.vdd)
            if estimate.spread() > self.max_candidate_spread:
                return None
            low, high = self.width_bounds
            widths[group.name] = float(min(max(estimate.width, low), high))
        return widths

    # ------------------------------------------------------------------
    # Stage I/II: batched inference
    # ------------------------------------------------------------------
    def _infer_round(
        self, specs_by_topology: dict[str, list[DesignSpec]]
    ) -> dict[str, list[tuple[ParsedParams, str]]]:
        start = time.perf_counter()
        total = sum(len(specs) for specs in specs_by_topology.values())
        if total == 1:
            # Single-shot path: ``predict_params`` so model subclasses that
            # override only it (e.g. oracle stand-ins) keep working.
            name = next(n for n, specs in specs_by_topology.items() if specs)
            outputs = {name: [self.model.predict_params(name, specs_by_topology[name][0])]}
        else:
            # One fused decode across every topology: the model is shared,
            # so the batch dimension spans the whole round.
            outputs = self.model.predict_params_many(specs_by_topology)
        self.stats.add(
            inference_seconds=time.perf_counter() - start,
            inference_calls=1,
            inference_sequences=total,
        )
        return outputs

    # ------------------------------------------------------------------
    # The copilot loop, round based
    # ------------------------------------------------------------------
    def _run(self, states: list[_ActiveRequest]) -> None:
        # A zero-iteration budget finishes immediately as a failed result
        # (the pre-engine flow's behavior for max_iterations=0).
        for state in states:
            self._finish_if_exhausted(state)
        active = [s for s in states if s.result is None]
        while active:
            by_topology: dict[str, list[_ActiveRequest]] = {}
            for state in active:
                by_topology.setdefault(state.request.topology, []).append(state)
            outputs = self._infer_round(
                {name: [s.current for s in group] for name, group in by_topology.items()}
            )
            # Stage III for every request of the round; the candidates that
            # survive width estimation queue up for one bulk verification
            # per (topology, corner axis, analyses pipeline) instead of one
            # simulation per request -- corner requests stack
            # population x corners into the same batched solves, and
            # transient requests batch their step-response integrations.
            verifiable: dict[tuple, list[tuple[_ActiveRequest, dict[str, float]]]] = {}
            for name, group in by_topology.items():
                for state, (parsed, text) in zip(group, outputs[name], strict=True):
                    widths = self._stage_iii(state, parsed, text)
                    if widths is not None:
                        key = (name, state.request.corners, state.request.analyses)
                        verifiable.setdefault(key, []).append((state, widths))
            for (name, corners, analyses), pairs in verifiable.items():
                topology = pairs[0][0].topology
                widths_list = [widths for _, widths in pairs]
                # The analyses keyword travels only on non-default
                # pipelines, so custom backends with the pre-transient
                # signature keep serving AC-only rounds unchanged.
                kwargs = {} if "tran" not in analyses else {"analyses": analyses}
                if corners:
                    sweeps = self.backend.measure_many(
                        topology, widths_list, corners=corners, **kwargs
                    )
                    for (state, widths), sweep in zip(pairs, sweeps, strict=True):
                        self._stage_iv_corners(state, widths, sweep)
                else:
                    outcomes = self.backend.measure_many(topology, widths_list, **kwargs)
                    for (state, widths), outcome in zip(pairs, outcomes, strict=True):
                        self._stage_iv(state, widths, outcome)
            active = [s for s in active if s.result is None]

    def _stage_iii(
        self, s: _ActiveRequest, parsed: ParsedParams, text: str
    ) -> dict[str, float] | None:
        """Consume one inference result: record the decode, estimate widths.

        Returns the width vector to verify, or ``None`` when this iteration
        produced nothing verifiable (the request was nudged for the next
        round and finished if its budget ran out).
        """
        s.iteration += 1
        s.decoded_texts.append(text)
        requested = s.current

        if not parsed.complete:
            s.trace.append(IterationTrace(requested, text, False, None, None, False))
            # Unparseable output: nudge the request and retry inference.
            s.current = requested.scaled(_NUDGE)
            self._finish_if_exhausted(s)
            return None

        widths = self.widths_from_params(s.topology, parsed.values)
        if widths is None:
            s.trace.append(IterationTrace(requested, text, True, None, None, False))
            s.current = requested.scaled(_NUDGE)
            self._finish_if_exhausted(s)
            return None
        return widths

    def _stage_iv(
        self, s: _ActiveRequest, widths: dict[str, float], outcome: MeasureOutcome
    ) -> None:
        """Judge one verification outcome exactly as the sequential path."""
        requested = s.current
        text = s.decoded_texts[-1]

        if not outcome.ok:
            # Non-converging design (the backend's per-candidate stand-in
            # for ConvergenceError, from any analysis leg -- DC Newton or
            # transient integration): counts as no completed verification
            # simulation, matching the scalar path's convention that a
            # failed measure() costs nothing regardless of partial work.
            # Nudge and retry.
            s.trace.append(IterationTrace(requested, text, True, widths, None, False))
            s.current = requested.scaled(_NUDGE)
            return self._finish_if_exhausted(s)

        s.spice_count += 1
        self.stats.add(spice_simulations=1)
        metrics = outcome.result.metrics
        satisfied = s.original.satisfied(metrics, rel_tol=s.request.rel_tol)
        s.trace.append(IterationTrace(requested, text, True, widths, metrics, satisfied))

        # Track the iterate with the smallest total spec shortfall, so a
        # failing run reports its closest attempt rather than its latest.
        shortfall = sum(s.original.miss_fractions(metrics).values())
        if shortfall < s.best_shortfall:
            s.best_shortfall = shortfall
            s.best = (widths, metrics)

        if satisfied:
            s.result = SizingResult(
                success=True,
                spec=s.original,
                widths=widths,
                metrics=metrics,
                iterations=s.iteration,
                spice_simulations=s.spice_count,
                wall_time_s=time.perf_counter() - s.start,
                trace=s.trace,
            )
            return

        s.current = tighten_spec(requested, s.original, metrics)
        self._finish_if_exhausted(s)

    def _stage_iv_corners(
        self, s: _ActiveRequest, widths: dict[str, float], sweep
    ) -> None:
        """Worst-case Stage IV: one candidate judged across every corner.

        The candidate passes only when **all** corners meet the original
        spec; the iteration trace and margin allocation run against the
        binding worst corner (largest total shortfall), so retries tighten
        toward the hardest operating condition.
        """
        requested = s.current
        text = s.decoded_texts[-1]

        # Partially converged sweeps still burned simulations; count them.
        s.spice_count += sweep.n_ok
        self.stats.add(spice_simulations=sweep.n_ok)

        if not sweep.ok:
            # At least one corner failed to converge: like the nominal
            # path's non-converging design -- nudge and retry inference.
            s.trace.append(IterationTrace(requested, text, True, widths, None, False))
            s.current = requested.scaled(_NUDGE)
            return self._finish_if_exhausted(s)

        worst_name, worst_metrics = sweep.worst_corner(s.original)
        corner_metrics = sweep.metrics_by_corner()
        satisfied = all(
            s.original.satisfied(metrics, rel_tol=s.request.rel_tol)
            for metrics in corner_metrics.values()
        )
        s.trace.append(
            IterationTrace(requested, text, True, widths, worst_metrics, satisfied)
        )

        shortfall = sum(s.original.miss_fractions(worst_metrics).values())
        if shortfall < s.best_shortfall:
            s.best_shortfall = shortfall
            s.best = (widths, worst_metrics)
            s.best_corner_metrics = corner_metrics
            s.best_worst_corner = worst_name

        if satisfied:
            s.result = SizingResult(
                success=True,
                spec=s.original,
                widths=widths,
                metrics=worst_metrics,
                iterations=s.iteration,
                spice_simulations=s.spice_count,
                wall_time_s=time.perf_counter() - s.start,
                trace=s.trace,
                corner_metrics=corner_metrics,
                worst_corner=worst_name,
            )
            return

        s.current = tighten_spec(requested, s.original, worst_metrics)
        self._finish_if_exhausted(s)

    def _finish_if_exhausted(self, s: _ActiveRequest) -> None:
        if s.result is None and s.iteration >= s.request.iteration_budget:
            widths, metrics = s.best if s.best is not None else (None, None)
            s.result = SizingResult(
                success=False,
                spec=s.original,
                widths=widths,
                metrics=metrics,
                iterations=len(s.trace),
                spice_simulations=s.spice_count,
                wall_time_s=time.perf_counter() - s.start,
                trace=s.trace,
                corner_metrics=s.best_corner_metrics,
                worst_corner=s.best_worst_corner,
            )

    # ------------------------------------------------------------------
    # Non-copilot methods: dispatch through the solver registry
    # ------------------------------------------------------------------
    def _solve_with_method(self, request: SizingRequest) -> SizingResponse:
        """Serve one request through a registered solver (``method`` != copilot).

        Stochastic solvers are seeded from a stable hash of the request id,
        so reruns of the same request stream are reproducible while distinct
        requests explore independently.  ``rel_tol`` derates the targets the
        solver chases, matching the copilot's tolerance semantics.
        """
        from .. import solvers

        self.stats.add(solver_requests=1)

        def error_response(message: str) -> SizingResponse:
            return SizingResponse(
                request_id=request.id,
                topology=request.topology,
                method=request.method,
                success=False,
                widths=None,
                metrics=None,
                iterations=0,
                spice_simulations=0,
                wall_time_s=0.0,
                error=message,
            )

        try:
            topology = self.topology(request.topology)
        except KeyError as error:
            return error_response(str(error))
        try:
            factory = solvers.solver_factory(request.method)
        except KeyError as error:
            return error_response(str(error))

        solver_kwargs = {}
        if "tran" in request.analyses:
            # Only non-default pipelines travel, so solvers registered
            # before the transient extension keep working unchanged.
            solver_kwargs["analyses"] = request.analyses
        solver = factory(
            topology,
            model=self.model,
            backend=self.backend,
            corners=request.corners,
            **solver_kwargs,
        )
        spec = _derated_spec(request.spec, request.rel_tol)
        rng = np.random.default_rng(zlib.crc32(request.id.encode()))
        result = solver.solve(spec, budget=request.budget, rng=rng)
        self.stats.add(spice_simulations=result.spice_calls)
        return SizingResponse(
            request_id=request.id,
            topology=request.topology,
            method=request.method,
            success=result.success,
            widths=result.best_widths,
            metrics=result.best_metrics,
            iterations=result.iterations,
            spice_simulations=result.spice_calls,
            wall_time_s=result.wall_time_s,
            corner_metrics=result.corner_metrics,
            worst_corner=result.worst_corner,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def size_result(self, request: SizingRequest) -> SizingResult:
        """Single-shot path returning the full :class:`SizingResult` with
        its iteration trace.  Bypasses the result cache — this is the
        back-compat engine of ``SizingFlow.size``."""
        return self.size_results([request])[0]

    def size_results(self, requests: Sequence[SizingRequest]) -> list[SizingResult]:
        """Batched copilot path returning full :class:`SizingResult` objects
        (with iteration traces), cache-free; inference is fused across the
        whole batch exactly as in :meth:`size_batch`.  Raises for unknown
        topologies and non-copilot methods — this is the programmatic
        engine behind ``SizingFlow``/``run_sizing_study``, not the wire API.
        """
        states = []
        for request in requests:
            if request.method != "copilot":
                raise ValueError(
                    f"size_results serves the copilot flow only, got method={request.method!r} "
                    "(use size_batch for registry-dispatched solvers)"
                )
            self.stats.add(requests=1)
            states.append(_ActiveRequest(request, self.topology(request.topology)))
        self._run(states)
        results = []
        for state in states:
            assert state.result is not None
            results.append(state.result)
        return results

    def size(self, request: SizingRequest) -> SizingResponse:
        """Serve one request (cache-aware single-shot path)."""
        return self.size_batch([request])[0]

    def size_batch(self, requests: Sequence[SizingRequest]) -> list[SizingResponse]:
        """Serve many requests with batched inference; order is preserved.

        Requests whose cached result transfers (see
        :class:`~repro.service.ResultCache`) skip inference entirely, as
        do *exact* in-batch duplicates, which coalesce onto one
        computation (cache enabled only; near-duplicates run their own
        Stage IV but still share the batched decode).  An unknown
        topology or solver method yields an error response instead of
        raising, so one bad request cannot poison a batch.

        Requests naming a non-copilot ``method`` are dispatched to the
        solver registry (see :meth:`_solve_with_method`); the copilot
        requests of the batch still fuse into one decode.
        """
        self.stats.add(batches=1)
        responses: list[SizingResponse | None] = [None] * len(requests)
        states: dict[int, _ActiveRequest] = {}
        leaders: dict[object, int] = {}
        followers: dict[int, int] = {}

        for index, request in enumerate(requests):
            self.stats.add(requests=1)
            if request.method != "copilot":
                # Registry-dispatched solver: runs SPICE-in-the-loop on the
                # batched evaluation backend.  Never cached (stochastic).
                responses[index] = self._solve_with_method(request)
                continue
            if self.cache is not None:
                hit = self.cache.get(request)
                if hit is not None:
                    self.stats.add(cache_hits=1)
                    responses[index] = hit
                    continue
            try:
                topology = self.topology(request.topology)
            except KeyError as error:
                responses[index] = SizingResponse(
                    request_id=request.id,
                    topology=request.topology,
                    method=request.method,
                    success=False,
                    widths=None,
                    metrics=None,
                    iterations=0,
                    spice_simulations=0,
                    wall_time_s=0.0,
                    error=str(error),
                )
                continue
            if self.cache is not None:
                # Coalesce only *exact* in-batch duplicates: the flow is
                # deterministic, so the leader's outcome is theirs too.
                # Near-duplicates run on their own (Stage IV judges the
                # exact spec) — they still share the batched decode.
                key = (
                    request.topology, request.spec,
                    request.iteration_budget, request.rel_tol, request.corners,
                    request.analyses,
                )
                if key in leaders:
                    followers[index] = leaders[key]
                    self.stats.add(coalesced=1)
                    continue
                leaders[key] = index
            states[index] = _ActiveRequest(request, topology)

        self._run(list(states.values()))

        for index, state in states.items():
            result = state.result
            assert result is not None
            response = SizingResponse(
                request_id=state.request.id,
                topology=state.request.topology,
                method=state.request.method,
                success=result.success,
                widths=result.widths,
                metrics=result.metrics,
                iterations=result.iterations,
                spice_simulations=result.spice_simulations,
                wall_time_s=result.wall_time_s,
                decoded_texts=tuple(state.decoded_texts),
                corner_metrics=result.corner_metrics,
                worst_corner=result.worst_corner,
            )
            responses[index] = response
            if self.cache is not None:
                self.cache.put(state.request, response)

        for index, leader in followers.items():
            leader_response = responses[leader]
            assert leader_response is not None
            responses[index] = leader_response.with_request_id(requests[index].id)

        return [response for response in responses if response is not None]
