"""Batched request/response sizing service.

The paper's headline claim is that sizing is cheap at inference time —
one transformer decode plus LUT lookups.  This package turns that into a
serving-shaped API:

* :class:`SizingRequest` / :class:`SizingResponse` — serializable units
  of work with stable JSON schemas and per-request ids;
* :class:`SizingEngine` — owns one trained :class:`~repro.core.SizingModel`,
  groups requests by topology, runs *batched* greedy decoding, applies
  Stage III width estimation and Stage IV verification per request, and
  memoizes results in an LRU cache keyed by quantized specification;
* ``python -m repro size`` — JSONL in, JSONL out, on top of the engine.

``SizingFlow`` (the original single-spec API) now delegates to the
engine, so both paths share one implementation.

Requests may name any registered solver (``method="sa"``/``"pso"``/
``"de"``, see :mod:`repro.solvers`); the engine dispatches them through
the unified solver API and returns the same response schema, so the
copilot and the SPICE-in-the-loop baselines are served by one endpoint.
"""

from .cache import ResultCache, SharedResultCache
from .engine import EngineStats, SizingEngine
from .requests import SizingRequest, SizingResponse

__all__ = [
    "EngineStats",
    "ResultCache",
    "SharedResultCache",
    "SizingEngine",
    "SizingRequest",
    "SizingResponse",
]
