"""Serializable sizing requests and responses.

The JSON schemas are deliberately flat and stable — they are the wire
format of the ``python -m repro size`` CLI and the unit tests pin the
round trip:

Request line::

    {"id": "req-000001", "topology": "5T-OTA", "gain_db": 25.0,
     "f3db_hz": 5e6, "ugf_hz": 8e7, "max_iterations": 6, "rel_tol": 0.0,
     "method": "copilot", "budget": null}

``method`` names any registered solver (``repro.solvers``): the default
``"copilot"`` runs the transformer flow, ``"sa"``/``"pso"``/``"de"`` run
the SPICE-in-the-loop baselines.  ``budget`` caps the solver's SPICE
evaluations (for the copilot: verification iterations); ``null`` selects
the per-method default (``max_iterations`` for the copilot).

Response line::

    {"request_id": "req-000001", "topology": "5T-OTA", "method": "copilot",
     "success": true, "widths": {"M1": 1.2e-06, ...},
     "metrics": {"gain_db": 25.3, "f3db_hz": 5.4e6, "ugf_hz": 9.1e7},
     "iterations": 1, "spice_simulations": 1, "wall_time_s": 0.21,
     "cached": false, "error": null, "decoded_texts": ["gmM1=..."]}
"""

from __future__ import annotations

import itertools
import json
import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

from ..core.specs import DesignSpec
from ..spice import PerformanceMetrics

__all__ = ["SizingRequest", "SizingResponse"]

_request_ids = itertools.count(1)


def _next_request_id() -> str:
    return f"req-{next(_request_ids):06d}"


@dataclass(frozen=True)
class SizingRequest:
    """One unit of sizing work: a topology name plus minimum targets."""

    topology: str
    spec: DesignSpec
    id: str = field(default_factory=_next_request_id)
    max_iterations: int = 6
    rel_tol: float = 0.0
    method: str = "copilot"
    budget: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.topology or not isinstance(self.topology, str):
            raise ValueError("topology must be a non-empty string")
        if not self.id or not isinstance(self.id, str):
            raise ValueError("request id must be a non-empty string")
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        if not (0.0 <= self.rel_tol < 1.0):
            raise ValueError("rel_tol must be in [0, 1)")
        if not self.method or not isinstance(self.method, str):
            raise ValueError("method must be a non-empty string")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be non-negative")

    @property
    def iteration_budget(self) -> int:
        """Copilot rounds: ``budget`` when given, else ``max_iterations``."""
        return self.max_iterations if self.budget is None else self.budget

    # ------------------------------------------------------------------
    @classmethod
    def for_spec(
        cls,
        topology: str,
        gain_db: float,
        f3db_hz: float,
        ugf_hz: float,
        **kwargs: Any,
    ) -> "SizingRequest":
        """Convenience constructor from the three bare spec values."""
        return cls(topology=topology, spec=DesignSpec(gain_db, f3db_hz, ugf_hz), **kwargs)

    def to_json(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "topology": self.topology,
            "gain_db": self.spec.gain_db,
            "f3db_hz": self.spec.f3db_hz,
            "ugf_hz": self.spec.ugf_hz,
            "max_iterations": self.max_iterations,
            "rel_tol": self.rel_tol,
            "method": self.method,
            "budget": self.budget,
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "SizingRequest":
        """Parse the stable flat schema; extra keys are rejected loudly."""
        known = {
            "id", "topology", "gain_db", "f3db_hz", "ugf_hz",
            "max_iterations", "rel_tol", "method", "budget",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        missing = {"topology", "gain_db", "f3db_hz", "ugf_hz"} - set(payload)
        if missing:
            raise ValueError(f"missing request fields: {sorted(missing)}")
        spec = DesignSpec(
            gain_db=float(payload["gain_db"]),
            f3db_hz=float(payload["f3db_hz"]),
            ugf_hz=float(payload["ugf_hz"]),
        )
        kwargs: dict[str, Any] = {}
        if "id" in payload:
            kwargs["id"] = str(payload["id"])
        if "max_iterations" in payload:
            kwargs["max_iterations"] = int(payload["max_iterations"])
        if "rel_tol" in payload:
            kwargs["rel_tol"] = float(payload["rel_tol"])
        if "method" in payload:
            kwargs["method"] = str(payload["method"])
        if payload.get("budget") is not None:
            kwargs["budget"] = int(payload["budget"])
        return cls(topology=str(payload["topology"]), spec=spec, **kwargs)

    @classmethod
    def from_json_line(cls, line: str) -> "SizingRequest":
        return cls.from_json(json.loads(line))


@dataclass(frozen=True)
class SizingResponse:
    """Outcome of one :class:`SizingRequest`."""

    request_id: str
    topology: str
    success: bool
    widths: Optional[dict[str, float]]
    metrics: Optional[PerformanceMetrics]
    iterations: int
    spice_simulations: int
    wall_time_s: float
    cached: bool = False
    error: Optional[str] = None
    decoded_texts: tuple[str, ...] = ()
    method: str = "copilot"

    @property
    def single_simulation(self) -> bool:
        """True when the very first verification already satisfied specs."""
        return self.success and self.spice_simulations == 1

    def with_request_id(self, request_id: str, cached: bool = True) -> "SizingResponse":
        """A copy re-addressed to another request (cache/duplicate hits)."""
        return replace(self, request_id=request_id, cached=cached)

    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        def finite(value: float) -> Optional[float]:
            return value if math.isfinite(value) else None

        metrics = None
        if self.metrics is not None:
            metrics = {
                "gain_db": finite(self.metrics.gain_db),
                "f3db_hz": finite(self.metrics.f3db_hz),
                "ugf_hz": finite(self.metrics.ugf_hz),
            }
        return {
            "request_id": self.request_id,
            "topology": self.topology,
            "method": self.method,
            "success": self.success,
            "widths": dict(self.widths) if self.widths is not None else None,
            "metrics": metrics,
            "iterations": self.iterations,
            "spice_simulations": self.spice_simulations,
            "wall_time_s": self.wall_time_s,
            "cached": self.cached,
            "error": self.error,
            "decoded_texts": list(self.decoded_texts),
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "SizingResponse":
        metrics_payload = payload.get("metrics")
        metrics = None
        if metrics_payload is not None:
            def value(key: str) -> float:
                raw = metrics_payload[key]
                return float("nan") if raw is None else float(raw)

            metrics = PerformanceMetrics(value("gain_db"), value("f3db_hz"), value("ugf_hz"))
        widths = payload.get("widths")
        return cls(
            request_id=str(payload["request_id"]),
            topology=str(payload["topology"]),
            success=bool(payload["success"]),
            widths={k: float(v) for k, v in widths.items()} if widths is not None else None,
            metrics=metrics,
            iterations=int(payload["iterations"]),
            spice_simulations=int(payload["spice_simulations"]),
            wall_time_s=float(payload["wall_time_s"]),
            cached=bool(payload.get("cached", False)),
            error=payload.get("error"),
            decoded_texts=tuple(payload.get("decoded_texts", ())),
            method=str(payload.get("method", "copilot")),
        )

    @classmethod
    def from_json_line(cls, line: str) -> "SizingResponse":
        return cls.from_json(json.loads(line))
