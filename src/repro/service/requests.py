"""Serializable sizing requests and responses.

The JSON schemas are deliberately flat and stable — they are the wire
format of the ``python -m repro size`` CLI and the unit tests pin the
round trip:

Request line::

    {"id": "req-000001", "topology": "5T-OTA", "gain_db": 25.0,
     "f3db_hz": 5e6, "ugf_hz": 8e7, "max_iterations": 6, "rel_tol": 0.0,
     "method": "copilot", "budget": null, "corners": ["tt", "ss", "ff"]}

``method`` names any registered solver (``repro.solvers``): the default
``"copilot"`` runs the transformer flow, ``"sa"``/``"pso"``/``"de"`` run
the SPICE-in-the-loop baselines.  ``budget`` caps the solver's SPICE
evaluations (for the copilot: verification iterations); ``null`` selects
the per-method default (``max_iterations`` for the copilot).

``corners`` selects the PVT evaluation contexts: preset names
(``"tt"``/``"ss"``/``"ff"``) or explicit override objects (e.g.
``{"process": "ss", "vdd_scale": 1.0}``, see
:func:`repro.devices.resolve_corner`).  An empty/absent list is the
nominal single-corner flow, bit-identical to the pre-corner service.
With corners, a request succeeds only when the sized design meets the
spec at **every** corner (worst-case semantics).

Transient (step-response) targets are optional spec fields:
``slew_v_per_s`` (minimum slew rate), ``settling_time_s`` (maximum
settling time) and ``overshoot_frac`` (maximum overshoot).  ``analyses``
selects the measurement pipeline (``["dc", "ac"]`` default,
``["dc", "ac", "tran"]`` adds the transient); a request with transient
targets automatically pulls ``"tran"`` in.  Absent transient keys keep
the request bit-identical to the pre-transient wire format.

Response line::

    {"request_id": "req-000001", "topology": "5T-OTA", "method": "copilot",
     "success": true, "widths": {"M1": 1.2e-06, ...},
     "metrics": {"gain_db": 25.3, "f3db_hz": 5.4e6, "ugf_hz": 9.1e7},
     "iterations": 1, "spice_simulations": 1, "wall_time_s": 0.21,
     "cached": false, "error": null, "decoded_texts": ["gmM1=..."],
     "corner_metrics": {"tt": {...}, "ss": {...}}, "worst_corner": "ss"}

On corner-aware requests ``metrics`` is the binding worst corner's
measurement, ``corner_metrics`` maps every corner name to its metrics and
``worst_corner`` names the binding corner; all three stay ``null``-free of
corner keys on nominal requests.
"""

from __future__ import annotations

import itertools
import json
import math
from dataclasses import dataclass, field, replace
from collections.abc import Mapping
from typing import Any

from ..core.specs import DesignSpec
from ..devices import Corner, resolve_corners
from ..spice import TRAN_METRIC_NAMES, PerformanceMetrics
from ..topologies import DEFAULT_ANALYSES, TRAN_ANALYSES, resolve_analyses

__all__ = ["SizingRequest", "SizingResponse"]


def _metrics_json(metrics: PerformanceMetrics | None) -> dict[str, Any] | None:
    """Flat JSON form of one metrics bundle (non-finite values -> null).

    Transient metric keys appear only when measured, so AC-only responses
    keep the pre-transient payload byte-identical.
    """
    if metrics is None:
        return None

    def finite(value: float) -> float | None:
        return value if math.isfinite(value) else None

    payload = {
        "gain_db": finite(metrics.gain_db),
        "f3db_hz": finite(metrics.f3db_hz),
        "ugf_hz": finite(metrics.ugf_hz),
    }
    for name in TRAN_METRIC_NAMES:
        value = getattr(metrics, name)
        if value is not None:
            payload[name] = finite(value)
    return payload


def _metrics_from_json(payload: Mapping[str, Any] | None) -> PerformanceMetrics | None:
    if payload is None:
        return None

    def value(key: str) -> float:
        raw = payload[key]
        return float("nan") if raw is None else float(raw)

    kwargs = {}
    for name in TRAN_METRIC_NAMES:
        if name in payload:
            kwargs[name] = value(name)
    return PerformanceMetrics(
        value("gain_db"), value("f3db_hz"), value("ugf_hz"), **kwargs
    )

_request_ids = itertools.count(1)


def _next_request_id() -> str:
    return f"req-{next(_request_ids):06d}"


@dataclass(frozen=True)
class SizingRequest:
    """One unit of sizing work: a topology name plus minimum targets.

    ``corners`` is the PVT corner axis: entries may be preset names,
    override mappings or :class:`~repro.devices.Corner` objects and are
    normalized to resolved corners at construction.  Empty (the default)
    means the nominal single-corner flow; non-empty requests succeed only
    when the design meets spec at every listed corner.

    ``analyses`` selects the measurement pipeline and is normalized to
    its canonical tuple at construction; a spec with transient targets
    automatically pulls ``"tran"`` in, so such a request can never be
    silently judged without the measurement it depends on.
    """

    topology: str
    spec: DesignSpec
    id: str = field(default_factory=_next_request_id)
    max_iterations: int = 6
    rel_tol: float = 0.0
    method: str = "copilot"
    budget: int | None = None
    corners: tuple[Corner, ...] = ()
    analyses: tuple[str, ...] = DEFAULT_ANALYSES

    def __post_init__(self) -> None:
        if not self.topology or not isinstance(self.topology, str):
            raise ValueError("topology must be a non-empty string")
        if not self.id or not isinstance(self.id, str):
            raise ValueError("request id must be a non-empty string")
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        if not (0.0 <= self.rel_tol < 1.0):
            raise ValueError("rel_tol must be in [0, 1)")
        if not self.method or not isinstance(self.method, str):
            raise ValueError("method must be a non-empty string")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be non-negative")
        # Normalize corner specifications (names / mappings / Corner
        # objects) to resolved, hashable Corner tuples: the cache key and
        # in-batch coalescing compare them structurally.
        object.__setattr__(self, "corners", resolve_corners(self.corners))
        resolved_analyses = resolve_analyses(self.analyses)
        if self.spec.requires_tran:
            resolved_analyses = TRAN_ANALYSES
        object.__setattr__(self, "analyses", resolved_analyses)

    @property
    def iteration_budget(self) -> int:
        """Copilot rounds: ``budget`` when given, else ``max_iterations``."""
        return self.max_iterations if self.budget is None else self.budget

    # ------------------------------------------------------------------
    @classmethod
    def for_spec(
        cls,
        topology: str,
        gain_db: float,
        f3db_hz: float,
        ugf_hz: float,
        **kwargs: Any,
    ) -> SizingRequest:
        """Convenience constructor from the three bare spec values."""
        return cls(topology=topology, spec=DesignSpec(gain_db, f3db_hz, ugf_hz), **kwargs)

    def to_json(self) -> dict[str, Any]:
        payload = {
            "id": self.id,
            "topology": self.topology,
            "gain_db": self.spec.gain_db,
            "f3db_hz": self.spec.f3db_hz,
            "ugf_hz": self.spec.ugf_hz,
            "max_iterations": self.max_iterations,
            "rel_tol": self.rel_tol,
            "method": self.method,
            "budget": self.budget,
            "corners": [corner.to_json() for corner in self.corners],
        }
        # Transient spec targets and a non-default analyses selector are
        # emitted only when present, keeping AC-only request lines
        # byte-identical to the pre-transient wire format.
        for name, value in self.spec.tran_targets().items():
            payload[name] = value
        if self.analyses != DEFAULT_ANALYSES:
            payload["analyses"] = list(self.analyses)
        return payload

    def to_json_line(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> SizingRequest:
        """Parse the stable flat schema; extra keys are rejected loudly."""
        known = {
            "id", "topology", "gain_db", "f3db_hz", "ugf_hz",
            "max_iterations", "rel_tol", "method", "budget", "corners",
            "analyses", *TRAN_METRIC_NAMES,
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        missing = {"topology", "gain_db", "f3db_hz", "ugf_hz"} - set(payload)
        if missing:
            raise ValueError(f"missing request fields: {sorted(missing)}")
        spec_kwargs: dict[str, Any] = {}
        for name in TRAN_METRIC_NAMES:
            if payload.get(name) is not None:
                spec_kwargs[name] = float(payload[name])
        spec = DesignSpec(
            gain_db=float(payload["gain_db"]),
            f3db_hz=float(payload["f3db_hz"]),
            ugf_hz=float(payload["ugf_hz"]),
            **spec_kwargs,
        )
        kwargs: dict[str, Any] = {}
        if "id" in payload:
            kwargs["id"] = str(payload["id"])
        if "max_iterations" in payload:
            kwargs["max_iterations"] = int(payload["max_iterations"])
        if "rel_tol" in payload:
            kwargs["rel_tol"] = float(payload["rel_tol"])
        if "method" in payload:
            kwargs["method"] = str(payload["method"])
        if payload.get("budget") is not None:
            kwargs["budget"] = int(payload["budget"])
        if payload.get("corners"):
            kwargs["corners"] = tuple(payload["corners"])
        if payload.get("analyses"):
            kwargs["analyses"] = tuple(payload["analyses"])
        return cls(topology=str(payload["topology"]), spec=spec, **kwargs)

    @classmethod
    def from_json_line(cls, line: str) -> SizingRequest:
        return cls.from_json(json.loads(line))


@dataclass(frozen=True)
class SizingResponse:
    """Outcome of one :class:`SizingRequest`.

    On corner-aware requests ``metrics`` is the binding worst corner's
    measurement, ``corner_metrics`` maps corner names to per-corner
    metrics and ``worst_corner`` names the binding corner (``None`` on
    nominal requests and when no design was measured).
    """

    request_id: str
    topology: str
    success: bool
    widths: dict[str, float] | None
    metrics: PerformanceMetrics | None
    iterations: int
    spice_simulations: int
    wall_time_s: float
    cached: bool = False
    error: str | None = None
    decoded_texts: tuple[str, ...] = ()
    method: str = "copilot"
    corner_metrics: dict[str, PerformanceMetrics] | None = None
    worst_corner: str | None = None

    @property
    def single_simulation(self) -> bool:
        """True when the very first verification already satisfied specs."""
        return self.success and self.spice_simulations == 1

    def with_request_id(self, request_id: str, cached: bool = True) -> SizingResponse:
        """A copy re-addressed to another request (cache/duplicate hits)."""
        return replace(self, request_id=request_id, cached=cached)

    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        corner_metrics = None
        if self.corner_metrics is not None:
            corner_metrics = {
                name: _metrics_json(metrics)
                for name, metrics in self.corner_metrics.items()
            }
        return {
            "request_id": self.request_id,
            "topology": self.topology,
            "method": self.method,
            "success": self.success,
            "widths": dict(self.widths) if self.widths is not None else None,
            "metrics": _metrics_json(self.metrics),
            "iterations": self.iterations,
            "spice_simulations": self.spice_simulations,
            "wall_time_s": self.wall_time_s,
            "cached": self.cached,
            "error": self.error,
            "decoded_texts": list(self.decoded_texts),
            "corner_metrics": corner_metrics,
            "worst_corner": self.worst_corner,
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> SizingResponse:
        widths = payload.get("widths")
        corner_payload = payload.get("corner_metrics")
        corner_metrics = None
        if corner_payload is not None:
            corner_metrics = {
                name: _metrics_from_json(entry)
                for name, entry in corner_payload.items()
            }
        worst_corner = payload.get("worst_corner")
        return cls(
            request_id=str(payload["request_id"]),
            topology=str(payload["topology"]),
            success=bool(payload["success"]),
            widths={k: float(v) for k, v in widths.items()} if widths is not None else None,
            metrics=_metrics_from_json(payload.get("metrics")),
            iterations=int(payload["iterations"]),
            spice_simulations=int(payload["spice_simulations"]),
            wall_time_s=float(payload["wall_time_s"]),
            cached=bool(payload.get("cached", False)),
            error=payload.get("error"),
            decoded_texts=tuple(payload.get("decoded_texts", ())),
            method=str(payload.get("method", "copilot")),
            corner_metrics=corner_metrics,
            worst_corner=str(worst_corner) if worst_corner is not None else None,
        )

    @classmethod
    def from_json_line(cls, line: str) -> SizingResponse:
        return cls.from_json(json.loads(line))
