"""Gradient and behaviour tests of the transformer building blocks.

Every analytic backward pass is validated against central finite
differences -- the canonical correctness check for hand-written backprop.
"""

import numpy as np
import pytest

from repro.transformer import (
    Dropout,
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    MultiHeadAttention,
    causal_mask,
    combine_masks,
    padding_mask,
    sinusoidal_positional_encoding,
    softmax,
)
from repro.transformer.functional import softmax_backward


def numeric_grad(fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn()
        flat[i] = original - eps
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(3, 7))
        probs = softmax(x)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)

    def test_softmax_stability_large_inputs(self):
        probs = softmax(np.array([1e30, 0.0, -1e30]))
        assert np.isfinite(probs).all()

    def test_softmax_backward_matches_numeric(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 5))
        dout = rng.normal(size=(2, 5))

        def loss():
            return float((softmax(x) * dout).sum())

        analytic = softmax_backward(softmax(x), dout)
        numeric = numeric_grad(loss, x)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-8)

    def test_positional_encoding_shape_and_range(self):
        pe = sinusoidal_positional_encoding(50, 16)
        assert pe.shape == (50, 16)
        assert np.abs(pe).max() <= 1.0

    def test_positional_encoding_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            sinusoidal_positional_encoding(10, 15)

    def test_causal_mask_blocks_future(self):
        mask = causal_mask(4)[0, 0]
        assert mask[0, 1] < -1e20
        assert mask[3, 0] == 0.0

    def test_padding_mask_blocks_pads(self):
        pads = np.array([[False, True]])
        mask = padding_mask(pads)
        assert mask[0, 0, 0, 1] < -1e20
        assert mask[0, 0, 0, 0] == 0.0

    def test_combine_masks(self):
        assert combine_masks(None, None) is None
        merged = combine_masks(causal_mask(3), None)
        assert merged.shape == (1, 1, 3, 3)


class TestLinear:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 6, rng)
        out = layer.forward(np.ones((2, 3, 4)))
        assert out.shape == (2, 3, 6)

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        dout = rng.normal(size=(4, 2))

        def loss():
            return float((layer.forward(x) * dout).sum())

        layer.zero_grad()
        layer.forward(x)
        dx = layer.backward(dout)
        np.testing.assert_allclose(layer.grads["weight"], numeric_grad(loss, layer.weight), rtol=1e-6, atol=1e-9)
        np.testing.assert_allclose(layer.grads["bias"], numeric_grad(loss, layer.bias), rtol=1e-6, atol=1e-9)
        np.testing.assert_allclose(dx, numeric_grad(loss, x), rtol=1e-6, atol=1e-9)

    def test_no_bias_option(self):
        layer = Linear(3, 2, np.random.default_rng(0), bias=False)
        assert "bias" not in layer.params


class TestEmbedding:
    def test_lookup(self):
        layer = Embedding(10, 4, np.random.default_rng(0))
        ids = np.array([[1, 2], [2, 3]])
        out = layer.forward(ids)
        np.testing.assert_allclose(out[0, 1], layer.table[2])
        np.testing.assert_allclose(out[1, 0], layer.table[2])

    def test_backward_scatter_adds(self):
        layer = Embedding(5, 3, np.random.default_rng(0))
        ids = np.array([[1, 1]])
        layer.zero_grad()
        layer.forward(ids)
        layer.backward(np.ones((1, 2, 3)))
        np.testing.assert_allclose(layer.grads["table"][1], 2.0 * np.ones(3))
        np.testing.assert_allclose(layer.grads["table"][0], 0.0)


class TestLayerNorm:
    def test_output_statistics(self):
        layer = LayerNorm(8)
        x = np.random.default_rng(0).normal(2.0, 3.0, size=(4, 8))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, rtol=1e-3)

    def test_gradients_match_numeric(self):
        layer = LayerNorm(5)
        rng = np.random.default_rng(2)
        layer.gamma[...] = rng.normal(1.0, 0.1, size=5)
        layer.beta[...] = rng.normal(0.0, 0.1, size=5)
        x = rng.normal(size=(3, 5))
        dout = rng.normal(size=(3, 5))

        def loss():
            return float((layer.forward(x) * dout).sum())

        layer.zero_grad()
        layer.forward(x)
        dx = layer.backward(dout)
        np.testing.assert_allclose(dx, numeric_grad(loss, x), rtol=1e-5, atol=1e-8)
        np.testing.assert_allclose(layer.grads["gamma"], numeric_grad(loss, layer.gamma), rtol=1e-5, atol=1e-8)
        np.testing.assert_allclose(layer.grads["beta"], numeric_grad(loss, layer.beta), rtol=1e-5, atol=1e-8)


class TestDropout:
    def test_identity_when_not_training(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((4, 4))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_scaling_preserves_expectation(self):
        layer = Dropout(0.25, np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, rel=0.05)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((8, 8))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0, np.random.default_rng(0))


class TestFeedForward:
    def test_gradcheck(self):
        rng = np.random.default_rng(3)
        ffn = FeedForward(4, 7, dropout=0.0, rng=rng)
        x = rng.normal(size=(2, 3, 4))
        dout = rng.normal(size=(2, 3, 4))

        def loss():
            return float((ffn.forward(x, training=False) * dout).sum())

        ffn.zero_grad()
        ffn.forward(x, training=False)
        dx = ffn.backward(dout)
        np.testing.assert_allclose(dx, numeric_grad(loss, x), rtol=1e-5, atol=1e-8)
        w1 = ffn.linear1.weight
        ffn.zero_grad()
        ffn.forward(x, training=False)
        ffn.backward(dout)
        np.testing.assert_allclose(ffn.linear1.grads["weight"], numeric_grad(loss, w1), rtol=1e-5, atol=1e-8)


class TestMultiHeadAttention:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        attn = MultiHeadAttention(8, 2, dropout=0.0, rng=rng)
        q = rng.normal(size=(2, 5, 8))
        kv = rng.normal(size=(2, 7, 8))
        out = attn.forward(q, kv, mask=None, training=False)
        assert out.shape == (2, 5, 8)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, dropout=0.0, rng=np.random.default_rng(0))

    def test_self_attention_gradcheck(self):
        rng = np.random.default_rng(4)
        attn = MultiHeadAttention(6, 2, dropout=0.0, rng=rng)
        x = rng.normal(size=(2, 4, 6))
        dout = rng.normal(size=(2, 4, 6))

        def loss():
            return float((attn.forward(x, x, None, training=False) * dout).sum())

        attn.zero_grad()
        attn.forward(x, x, None, training=False)
        dq, dkv = attn.backward(dout)
        np.testing.assert_allclose(dq + dkv, numeric_grad(loss, x), rtol=1e-5, atol=1e-8)

    def test_cross_attention_gradcheck(self):
        rng = np.random.default_rng(5)
        attn = MultiHeadAttention(6, 2, dropout=0.0, rng=rng)
        q = rng.normal(size=(1, 3, 6))
        kv = rng.normal(size=(1, 5, 6))
        dout = rng.normal(size=(1, 3, 6))

        def loss():
            return float((attn.forward(q, kv, None, training=False) * dout).sum())

        attn.zero_grad()
        attn.forward(q, kv, None, training=False)
        dq, dkv = attn.backward(dout)
        np.testing.assert_allclose(dq, numeric_grad(loss, q), rtol=1e-5, atol=1e-8)
        np.testing.assert_allclose(dkv, numeric_grad(loss, kv), rtol=1e-5, atol=1e-8)

    def test_weight_gradcheck(self):
        rng = np.random.default_rng(6)
        attn = MultiHeadAttention(4, 2, dropout=0.0, rng=rng)
        x = rng.normal(size=(1, 3, 4))
        dout = rng.normal(size=(1, 3, 4))

        def loss():
            return float((attn.forward(x, x, None, training=False) * dout).sum())

        attn.zero_grad()
        attn.forward(x, x, None, training=False)
        attn.backward(dout)
        for name, layer in (("w_q", attn.w_q), ("w_o", attn.w_o)):
            np.testing.assert_allclose(
                layer.grads["weight"], numeric_grad(loss, layer.weight), rtol=1e-5, atol=1e-8
            )

    def test_mask_blocks_positions(self):
        rng = np.random.default_rng(7)
        attn = MultiHeadAttention(4, 1, dropout=0.0, rng=rng)
        q = rng.normal(size=(1, 2, 4))
        kv_a = rng.normal(size=(1, 3, 4))
        kv_b = kv_a.copy()
        kv_b[0, 2] += 100.0  # perturb the masked key/value
        mask = padding_mask(np.array([[False, False, True]]))
        out_a = attn.forward(q, kv_a, mask, training=False)
        out_b = attn.forward(q, kv_b, mask, training=False)
        np.testing.assert_allclose(out_a, out_b, atol=1e-10)
