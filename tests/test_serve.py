"""Tests of the HTTP serving layer: micro-batcher, protocol, end to end.

The end-to-end suites run a real ``SizingServer`` on an ephemeral port
with the shared oracle model, so the contracts under test are the ones
clients see: concurrent POSTs coalesce into fewer ``size_batch`` calls
yet return responses bit-identical to calling the engine directly, a
full queue answers 503 before any engine work, an expired deadline
answers 504 without the handler ever seeing the request, and a graceful
shutdown drains what was queued.
"""

import http.client
import json
import threading
import time

import pytest

from repro.serve import (
    BatcherClosedError,
    MicroBatcher,
    QueueFullError,
    ServeStats,
    create_server,
    serve_forever_in_thread,
)
from repro.serve.protocol import (
    BAD_REQUEST_PREFIX,
    RequestError,
    error_response,
    invalid_request_response,
    parse_request_payload,
    parse_request_text,
)
from repro.service import SizingEngine, SizingRequest, SizingResponse
from repro.service.engine import EngineStats

from tests.conftest import BatchedOracleModel, assert_responses_identical


# ----------------------------------------------------------------------
# MicroBatcher planning logic (engine-free: opaque requests and handlers)
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def _echo(self, requests):
        return [f"response:{request}" for request in requests]

    def test_flush_on_size(self):
        batcher = MicroBatcher(self._echo, max_batch_size=4, max_wait_ms=10_000.0)
        try:
            tickets = [batcher.submit(f"r{i}") for i in range(4)]
            for ticket in tickets:
                assert ticket.wait(timeout=5.0)
            assert [t.response for t in tickets] == [f"response:r{i}" for i in range(4)]
            assert batcher.stats.batches == 1
            assert batcher.stats.flush_reasons["size"] == 1
            assert batcher.stats.batch_size_histogram[4] == 1
        finally:
            batcher.close(timeout=5.0)

    def test_flush_on_timeout(self):
        batcher = MicroBatcher(self._echo, max_batch_size=16, max_wait_ms=50.0)
        try:
            tickets = [batcher.submit("a"), batcher.submit("b")]
            for ticket in tickets:
                assert ticket.wait(timeout=5.0)
            assert batcher.stats.flush_reasons["timeout"] >= 1
            assert batcher.stats.served == 2
        finally:
            batcher.close(timeout=5.0)

    def _blocking_batcher(self, **kwargs):
        """A batcher whose first handler call blocks until released."""
        entered, release = threading.Event(), threading.Event()
        calls = []

        def handler(requests):
            calls.append(list(requests))
            if len(calls) == 1:
                entered.set()
                assert release.wait(timeout=10.0)
            return [f"response:{request}" for request in requests]

        batcher = MicroBatcher(handler, max_batch_size=1, max_wait_ms=0.0, **kwargs)
        return batcher, entered, release, calls

    def test_backpressure_queue_full(self):
        batcher, entered, release, calls = self._blocking_batcher(queue_depth=1)
        try:
            first = batcher.submit("first")
            assert entered.wait(timeout=5.0)
            second = batcher.submit("second")  # fills the single queue slot
            assert batcher.queue_depth() == 1
            with pytest.raises(QueueFullError, match="queue full"):
                batcher.submit("third")
            assert batcher.stats.rejected_queue_full == 1
            release.set()
            assert first.wait(timeout=5.0) and second.wait(timeout=5.0)
            assert second.response == "response:second"
            # The rejected request never reached the handler.
            assert ["third"] not in calls
        finally:
            release.set()
            batcher.close(timeout=5.0)

    def test_deadline_expired_at_dequeue_skips_handler(self):
        batcher, entered, release, calls = self._blocking_batcher(queue_depth=8)
        try:
            batcher.submit("first")
            assert entered.wait(timeout=5.0)
            doomed = batcher.submit("doomed", deadline_ms=1.0)
            time.sleep(0.05)  # let the deadline lapse while queued
            release.set()
            assert doomed.wait(timeout=5.0)
            assert doomed.expired
            assert doomed.response is None and doomed.error is None
            assert batcher.stats.expired_deadline == 1
            assert ["doomed"] not in calls
        finally:
            release.set()
            batcher.close(timeout=5.0)

    def test_close_drains_queued_work(self):
        batcher, entered, release, calls = self._blocking_batcher(queue_depth=8)
        first = batcher.submit("first")
        assert entered.wait(timeout=5.0)
        queued = [batcher.submit("b"), batcher.submit("c")]
        releaser = threading.Timer(0.1, release.set)
        releaser.start()
        batcher.close(timeout=10.0)
        releaser.join()
        assert first.wait(timeout=1.0)
        for ticket in queued:
            assert ticket.wait(timeout=1.0)
            assert ticket.response is not None
        assert batcher.stats.served == 3
        with pytest.raises(BatcherClosedError):
            batcher.submit("late")

    def test_handler_exception_isolated_per_batch(self):
        poisoned = []

        def handler(requests):
            if poisoned:
                raise ValueError("boom")
            return [f"response:{request}" for request in requests]

        batcher = MicroBatcher(handler, max_batch_size=2, max_wait_ms=10_000.0)
        try:
            poisoned.append(True)
            bad = [batcher.submit("a"), batcher.submit("b")]
            for ticket in bad:
                assert ticket.wait(timeout=5.0)
                assert ticket.error == "ValueError: boom"
                assert ticket.response is None
            assert batcher.stats.failed == 2
            # One bad batch must not kill the dispatcher.
            poisoned.clear()
            good = [batcher.submit("c"), batcher.submit("d")]
            for ticket in good:
                assert ticket.wait(timeout=5.0)
                assert ticket.response is not None
        finally:
            batcher.close(timeout=5.0)

    def test_misaligned_handler_reported_as_error(self):
        batcher = MicroBatcher(lambda requests: [], max_batch_size=1, max_wait_ms=0.0)
        try:
            ticket = batcher.submit("a")
            assert ticket.wait(timeout=5.0)
            assert ticket.error is not None and "0 responses" in ticket.error
        finally:
            batcher.close(timeout=5.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(self._echo, max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(self._echo, max_wait_ms=-1.0)
        with pytest.raises(ValueError, match="queue_depth"):
            MicroBatcher(self._echo, queue_depth=0)


# ----------------------------------------------------------------------
# Shared protocol: one request schema, one error payload, two transports
# ----------------------------------------------------------------------
class TestProtocol:
    GOOD = {"topology": "5T-OTA", "gain_db": 25.0, "f3db_hz": 5e6, "ugf_hz": 8e7}

    def test_parse_valid_payload(self):
        request, deadline = parse_request_payload(dict(self.GOOD))
        assert request.topology == "5T-OTA" and deadline is None

    def test_invalid_json_rejected(self):
        with pytest.raises(RequestError, match="invalid JSON"):
            parse_request_text("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            parse_request_text("[1, 2]")

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError, match="unknown"):
            parse_request_payload({**self.GOOD, "bogus": 1})

    def test_deadline_is_serving_only(self):
        # The HTTP transport strips it before shared validation ...
        request, deadline = parse_request_payload(
            {**self.GOOD, "deadline_ms": 250}, allow_deadline=True
        )
        assert deadline == 250.0
        # ... an explicit null means "no deadline" ...
        _, deadline = parse_request_payload(
            {**self.GOOD, "deadline_ms": None}, allow_deadline=True
        )
        assert deadline is None
        # ... and the JSONL CLI rejects it like any unknown field.
        with pytest.raises(RequestError, match="unknown"):
            parse_request_payload({**self.GOOD, "deadline_ms": 250})

    def test_deadline_validation(self):
        with pytest.raises(RequestError, match="number of milliseconds"):
            parse_request_payload({**self.GOOD, "deadline_ms": "soon"}, allow_deadline=True)
        with pytest.raises(RequestError, match="positive"):
            parse_request_payload({**self.GOOD, "deadline_ms": 0}, allow_deadline=True)
        with pytest.raises(RequestError, match="positive"):
            parse_request_payload({**self.GOOD, "deadline_ms": -5}, allow_deadline=True)

    def test_error_payloads_are_wire_schema(self):
        """Every failure payload round-trips through the standard schema."""
        payload = invalid_request_response("missing field").to_json()
        restored = SizingResponse.from_json(payload)
        assert not restored.success
        assert restored.error == f"{BAD_REQUEST_PREFIX}: missing field"
        assert restored.widths is None and restored.metrics is None
        stamped = error_response("late", request_id="r9", topology="5T-OTA", method="pso")
        assert stamped.request_id == "r9" and stamped.method == "pso"


# ----------------------------------------------------------------------
# Serving counters
# ----------------------------------------------------------------------
class TestServeStats:
    def test_percentiles_nearest_rank(self):
        stats = ServeStats()
        for i in range(1, 101):
            stats.record_served(i / 1e3)
        latency = stats.latency_ms()
        assert latency["count"] == 100
        assert latency["p50"] == pytest.approx(50.0)
        assert latency["p95"] == pytest.approx(95.0)
        assert latency["p99"] == pytest.approx(99.0)
        assert latency["max"] == pytest.approx(100.0)

    def test_empty_latency_window(self):
        latency = ServeStats().latency_ms()
        assert latency == {"count": 0, "p50": None, "p95": None, "p99": None, "max": None}

    def test_as_dict_is_json_ready(self):
        stats = ServeStats()
        stats.record_received()
        stats.record_batch(3, "timeout")
        stats.record_served(0.010)
        payload = stats.as_dict(queue_depth=2, queue_capacity=64)
        assert payload["received"] == 1 and payload["served"] == 1
        assert payload["batch_size_histogram"] == {"3": 1}
        # All flush reasons are always present (dashboards need stable keys).
        assert payload["flush_reasons"] == {"size": 0, "timeout": 1, "drain": 0}
        assert payload["queue_depth"] == 2 and payload["queue_capacity"] == 64
        json.dumps(payload)  # must be serializable as-is

    def test_recorders_are_thread_safe(self):
        stats = ServeStats()

        def hammer():
            for _ in range(500):
                stats.record_received()
                stats.record_batch(1, "size")
                stats.record_served(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.received == 4000
        assert stats.served == 4000
        assert stats.batches == 4000


class TestEngineStatsThreadSafety:
    def test_concurrent_add_is_atomic(self):
        stats = EngineStats()

        def hammer():
            for _ in range(1000):
                stats.add(requests=1, spice_simulations=2, inference_seconds=0.5)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.requests == 8000
        assert stats.spice_simulations == 16000
        assert stats.inference_seconds == pytest.approx(4000.0)

    def test_snapshot_and_as_dict(self):
        stats = EngineStats()
        stats.add(requests=3, cache_hits=1)
        copy = stats.snapshot()
        stats.add(requests=1)
        assert copy.requests == 3 and stats.requests == 4
        assert stats.as_dict()["cache_hits"] == 1


# ----------------------------------------------------------------------
# End to end over HTTP (ephemeral port, real engine, real sockets)
# ----------------------------------------------------------------------
def _request_json(port, method, path, payload=None, timeout=60.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        return response.status, dict(response.getheaders()), data
    finally:
        connection.close()


def _achievable(record, **kwargs):
    return SizingRequest.for_spec(
        "5T-OTA",
        record.gain_db * 0.995,
        record.f3db_hz * 0.98,
        record.ugf_hz * 0.98,
        **kwargs,
    )


def _stub_responses(requests):
    return [
        error_response("stub", request_id=r.id, topology=r.topology, method=r.method)
        for r in requests
    ]


@pytest.fixture()
def oracle_engine(oracle_setup):
    topology, records, luts = oracle_setup
    engine = SizingEngine(BatchedOracleModel(topology, records, luts), cache_size=0)
    engine.adopt_topology(topology)
    return engine, records


class _RunningServer:
    """Context manager: serve on an ephemeral port, always shut down."""

    def __init__(self, server):
        self.server = server
        self.port = server.server_address[1]

    def __enter__(self):
        self.thread = serve_forever_in_thread(self.server)
        return self

    def __exit__(self, *exc_info):
        self.server.shutdown_gracefully(timeout=10.0)
        self.thread.join(timeout=10.0)


class TestHTTPServing:
    def test_concurrent_posts_coalesce_and_match_direct_size_batch(
        self, oracle_setup, oracle_engine
    ):
        engine, records = oracle_engine
        requests = [
            _achievable(record, id=f"r{i}") for i, record in enumerate(records[:6])
        ]
        server = create_server(
            engine, max_batch_size=len(requests), max_wait_ms=2000.0, queue_depth=32
        )
        barrier = threading.Barrier(len(requests))
        results = {}

        def client(request):
            barrier.wait(timeout=10.0)
            results[request.id] = _request_json(
                server.server_address[1], "POST", "/v1/size", request.to_json()
            )

        with _RunningServer(server):
            threads = [threading.Thread(target=client, args=(r,)) for r in requests]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)

        assert len(results) == len(requests)
        assert all(status == 200 for status, _, _ in results.values())
        # Coalescing actually happened: fewer engine batches than requests.
        assert 1 <= server.serve_stats.batches < len(requests)
        assert max(server.serve_stats.batch_size_histogram) >= 2
        assert server.serve_stats.served == len(requests)
        assert engine.stats.requests == len(requests)

        # Bit-identical to the direct library path: a *fresh* identical
        # engine sizing the same batch must produce the same wire payloads
        # (modulo wall_time_s, which measures the run it came from).
        topology, all_records, luts = oracle_setup
        direct_engine = SizingEngine(
            BatchedOracleModel(topology, all_records, luts), cache_size=0
        )
        direct_engine.adopt_topology(topology)
        direct = direct_engine.size_batch(requests)
        served = [
            SizingResponse.from_json(results[request.id][2]) for request in requests
        ]
        assert_responses_identical(direct, served)
        for reference, (_, _, payload) in zip(direct, (results[r.id] for r in requests), strict=True):
            expected = reference.to_json()
            expected.pop("wall_time_s")
            payload = dict(payload)
            payload.pop("wall_time_s")
            assert payload == expected

    def test_queue_full_returns_503_with_retry_after(self, oracle_engine):
        engine, records = oracle_engine
        entered, release = threading.Event(), threading.Event()

        def blocking_handler(requests):
            entered.set()
            assert release.wait(timeout=30.0)
            return _stub_responses(requests)

        server = create_server(
            engine,
            handler=blocking_handler,
            max_batch_size=1,
            max_wait_ms=0.0,
            queue_depth=1,
            retry_after_s=7,
        )
        payload = _achievable(records[0]).to_json()
        blocked = []

        def blocked_client():
            blocked.append(
                _request_json(server.server_address[1], "POST", "/v1/size", payload)
            )

        with _RunningServer(server):
            first = threading.Thread(target=blocked_client)
            first.start()
            assert entered.wait(timeout=10.0)
            second = threading.Thread(target=blocked_client)
            second.start()
            deadline = time.monotonic() + 10.0
            while server.batcher.queue_depth() < 1:
                assert time.monotonic() < deadline, "second request never queued"
                time.sleep(0.005)
            status, headers, body = _request_json(
                server.server_address[1], "POST", "/v1/size", payload
            )
            release.set()
            first.join(timeout=30.0)
            second.join(timeout=30.0)

        assert status == 503
        assert headers["Retry-After"] == "7"
        assert not body["success"]
        assert "server overloaded" in body["error"]
        assert server.serve_stats.rejected_queue_full == 1
        assert all(result[0] == 200 for result in blocked)

    def test_expired_deadline_returns_504_without_engine_work(self, oracle_engine):
        engine, records = oracle_engine
        entered, release = threading.Event(), threading.Event()
        seen_ids = []

        def blocking_handler(requests):
            seen_ids.extend(r.id for r in requests)
            if not release.is_set():
                entered.set()
                assert release.wait(timeout=30.0)
            return _stub_responses(requests)

        server = create_server(
            engine, handler=blocking_handler, max_batch_size=1, max_wait_ms=0.0,
            queue_depth=8,
        )
        first_payload = _achievable(records[0], id="blocker").to_json()
        doomed_payload = {**_achievable(records[1], id="doomed").to_json(),
                          "deadline_ms": 20}
        results = {}

        def client(name, payload):
            results[name] = _request_json(
                server.server_address[1], "POST", "/v1/size", payload
            )

        with _RunningServer(server):
            first = threading.Thread(target=client, args=("first", first_payload))
            first.start()
            assert entered.wait(timeout=10.0)
            doomed = threading.Thread(target=client, args=("doomed", doomed_payload))
            doomed.start()
            deadline = time.monotonic() + 10.0
            while server.batcher.queue_depth() < 1:
                assert time.monotonic() < deadline, "doomed request never queued"
                time.sleep(0.005)
            time.sleep(0.05)  # let deadline_ms=20 lapse in the queue
            release.set()
            first.join(timeout=30.0)
            doomed.join(timeout=30.0)

        status, _, body = results["doomed"]
        assert status == 504
        assert not body["success"]
        assert "deadline expired in queue" in body["error"]
        assert body["request_id"] == "doomed"
        assert results["first"][0] == 200
        # The expired request never reached the handler: no engine work.
        assert seen_ids == ["blocker"]
        assert server.serve_stats.expired_deadline == 1

    def test_bad_request_returns_shared_400_payload(self, oracle_engine):
        engine, _ = oracle_engine
        server = create_server(engine)
        with _RunningServer(server):
            port = server.server_address[1]
            for body in ("{not json", '["array"]',
                         '{"topology": "5T-OTA", "gain_db": 25.0}'):
                connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
                try:
                    connection.request("POST", "/v1/size", body=body)
                    response = connection.getresponse()
                    status = response.status
                    payload = json.loads(response.read().decode("utf-8"))
                finally:
                    connection.close()
                assert status == 400
                # Byte-for-byte the same structured payload a bad JSONL
                # line gets from the CLI: the shared constructor applied
                # to the same validation message.
                prefix = f"{BAD_REQUEST_PREFIX}: "
                assert payload["error"].startswith(prefix)
                message = payload["error"][len(prefix):]
                assert payload == invalid_request_response(message).to_json()
            # Empty body and bad deadlines are caught before the queue.
            status, _, payload = _request_json(port, "POST", "/v1/size", None)
            assert status == 400 and "empty request body" in payload["error"]
            status, _, payload = _request_json(
                port, "POST", "/v1/size",
                {"topology": "5T-OTA", "gain_db": 25.0, "f3db_hz": 5e6,
                 "ugf_hz": 8e7, "deadline_ms": -1},
            )
            assert status == 400 and "must be positive" in payload["error"]
        assert server.serve_stats.bad_requests == 5
        assert engine.stats.requests == 0

    def test_observability_endpoints(self, oracle_setup):
        topology, records, luts = oracle_setup
        engine = SizingEngine(BatchedOracleModel(topology, records, luts), cache_size=8)
        engine.adopt_topology(topology)
        server = create_server(engine, max_wait_ms=5.0)
        with _RunningServer(server):
            port = server.server_address[1]
            status, _, health = _request_json(port, "GET", "/healthz")
            assert status == 200 and health == {"status": "ok"}

            status, _, listing = _request_json(port, "GET", "/topologies")
            assert status == 200 and "5T-OTA" in listing["topologies"]

            request = _achievable(records[0], id="warm")
            status, _, _ = _request_json(port, "POST", "/v1/size", request.to_json())
            assert status == 200

            status, _, stats = _request_json(port, "GET", "/stats")
            assert status == 200
            assert stats["server"]["received"] == 1
            assert stats["server"]["served"] == 1
            assert stats["server"]["batches"] == 1
            assert stats["server"]["queue_depth"] == 0
            assert stats["server"]["queue_capacity"] == 256
            assert stats["server"]["latency_ms"]["count"] == 1
            assert stats["server"]["latency_ms"]["p50"] > 0
            assert set(stats["server"]["flush_reasons"]) == {"size", "timeout", "drain"}
            assert stats["engine"]["requests"] == 1
            assert stats["engine"]["spice_simulations"] >= 1
            assert stats["cache"]["misses"] == 1 and stats["cache"]["maxsize"] == 8

            status, _, body = _request_json(port, "GET", "/nope")
            assert status == 404 and "no such endpoint" in body["error"]

    def test_graceful_shutdown_drains_queued_requests(self, oracle_engine):
        engine, records = oracle_engine
        entered, release = threading.Event(), threading.Event()

        def blocking_handler(requests):
            if not release.is_set():
                entered.set()
                assert release.wait(timeout=30.0)
            return _stub_responses(requests)

        server = create_server(
            engine, handler=blocking_handler, max_batch_size=16, max_wait_ms=0.0,
            queue_depth=8,
        )
        results = []

        def client(request_id):
            payload = _achievable(records[0], id=request_id).to_json()
            results.append(
                _request_json(server.server_address[1], "POST", "/v1/size", payload)
            )

        thread = serve_forever_in_thread(server)
        clients = [threading.Thread(target=client, args=(f"q{i}",)) for i in range(3)]
        clients[0].start()
        assert entered.wait(timeout=10.0)
        for other in clients[1:]:
            other.start()
        deadline = time.monotonic() + 10.0
        while server.batcher.queue_depth() < 2:
            assert time.monotonic() < deadline, "requests never queued"
            time.sleep(0.005)

        def release_once_draining():
            # Unblock the handler only after close() flags the batcher as
            # draining, so the queued pair flushes with reason ``drain``.
            stop_at = time.monotonic() + 10.0
            while not server.batcher.closed and time.monotonic() < stop_at:
                time.sleep(0.005)
            release.set()

        releaser = threading.Thread(target=release_once_draining)
        releaser.start()
        server.shutdown_gracefully(timeout=30.0)
        releaser.join()
        thread.join(timeout=10.0)
        for other in clients:
            other.join(timeout=30.0)

        # Every accepted request was answered before the listener closed.
        assert len(results) == 3
        assert all(status == 200 for status, _, _ in results)
        assert server.serve_stats.served == 3
        assert server.serve_stats.flush_reasons["drain"] >= 1
        assert server.batcher.closed


# ----------------------------------------------------------------------
# The engine under concurrent callers (the serving layer's contract)
# ----------------------------------------------------------------------
class TestEngineConcurrency:
    def test_shared_engine_concurrent_size_batch(self, oracle_setup):
        topology, records, luts = oracle_setup
        engine = SizingEngine(BatchedOracleModel(topology, records, luts), cache_size=16)
        engine.adopt_topology(topology)
        responses = {}

        def worker(index):
            requests = [
                _achievable(records[(index + j) % len(records)], id=f"w{index}-{j}")
                for j in range(2)
            ]
            responses[index] = engine.size_batch(requests)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)

        assert len(responses) == 4
        assert all(r.success for batch in responses.values() for r in batch)
        assert engine.stats.requests == 8
        assert engine.stats.batches == 4
        # Counters stayed consistent under concurrency.
        assert engine.stats.cache_hits == engine.cache.hits
