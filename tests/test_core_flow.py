"""Tests of specs, margin allocation and the end-to-end sizing flow.

The flow tests use an *oracle* model -- a stand-in for the transformer
that returns the true device parameters of a nearby dataset design -- so
Stage III (width estimation) and Stage IV (verification + copilot loop)
are validated independently of training quality.
"""

import numpy as np
import pytest

from repro.core import DesignSpec, SizingFlow, tighten_spec
from repro.core.bundle import SizingModel
from repro.datagen import SequenceBuilder, SequenceConfig
from repro.devices import NMOS_65NM, PMOS_65NM
from repro.lut import build_lut
from repro.spice import PerformanceMetrics



class TestDesignSpec:
    def test_satisfied(self):
        spec = DesignSpec(gain_db=20.0, f3db_hz=1e7, ugf_hz=1e8)
        assert spec.satisfied(PerformanceMetrics(21.0, 1.2e7, 1.5e8))
        assert not spec.satisfied(PerformanceMetrics(19.0, 1.2e7, 1.5e8))

    def test_satisfied_with_tolerance(self):
        spec = DesignSpec(gain_db=20.0, f3db_hz=1e7, ugf_hz=1e8)
        assert spec.satisfied(PerformanceMetrics(19.9, 1e7, 1e8), rel_tol=0.01)

    def test_invalid_metrics_not_satisfied(self):
        spec = DesignSpec(20.0, 1e7, 1e8)
        assert not spec.satisfied(PerformanceMetrics(30.0, float("nan"), 1e8))

    def test_miss_fractions(self):
        spec = DesignSpec(20.0, 1e7, 1e8)
        misses = spec.miss_fractions(PerformanceMetrics(18.0, 2e7, 0.9e8))
        assert misses["gain_db"] == pytest.approx(0.1)
        assert misses["f3db_hz"] == 0.0
        assert misses["ugf_hz"] == pytest.approx(0.1)

    def test_scaled(self):
        spec = DesignSpec(20.0, 1e7, 1e8)
        tightened = spec.scaled({"gain_db": 1.1})
        assert tightened.gain_db == pytest.approx(22.0)
        assert tightened.ugf_hz == pytest.approx(1e8)

    def test_from_metrics_with_slack(self):
        metrics = PerformanceMetrics(20.0, 1e7, 1e8)
        spec = DesignSpec.from_metrics(metrics, slack=0.1)
        assert spec.gain_db == pytest.approx(18.0)

    def test_positive_targets_required(self):
        with pytest.raises(ValueError):
            DesignSpec(-1.0, 1e7, 1e8)


class TestMarginAllocation:
    def test_shortfall_tightens_proportionally(self):
        original = DesignSpec(20.0, 1e7, 1e8)
        measured = PerformanceMetrics(18.0, 1.2e7, 1.2e8)  # 10% gain shortfall
        tightened = tighten_spec(original, original, measured, padding=0.0)
        assert tightened.gain_db == pytest.approx(22.0)
        assert tightened.f3db_hz == pytest.approx(1e7)

    def test_padding_overshoots(self):
        original = DesignSpec(20.0, 1e7, 1e8)
        measured = PerformanceMetrics(18.0, 1.2e7, 1.2e8)
        tightened = tighten_spec(original, original, measured, padding=0.05)
        assert tightened.gain_db == pytest.approx(20.0 * 1.15)

    def test_cumulative_tightening_capped(self):
        original = DesignSpec(20.0, 1e7, 1e8)
        request = original
        measured = PerformanceMetrics(10.0, 1e6, 1e7)  # massive shortfall
        for _ in range(10):
            request = tighten_spec(request, original, measured)
        assert request.gain_db <= original.gain_db * 1.5 + 1e-9
        assert request.ugf_hz <= original.ugf_hz * 1.5 + 1e-9

    def test_met_specs_untouched(self):
        original = DesignSpec(20.0, 1e7, 1e8)
        measured = PerformanceMetrics(25.0, 2e7, 2e8)
        tightened = tighten_spec(original, original, measured)
        assert tightened == original


class _OracleModel(SizingModel):
    """A 'perfect transformer': returns the device parameters of the
    dataset design whose metrics are closest to the request."""

    def __init__(self, topology, records, luts, noise=0.0, seed=0):
        builder = SequenceBuilder(topology, SequenceConfig())
        super().__init__(
            transformer=None,
            bpe=None,
            vocab=None,
            sequence_config=builder.config,
            builders={topology.name: builder},
            luts=luts,
        )
        self._records = records
        self._rng = np.random.default_rng(seed)
        self._noise = noise

    def predict_params(self, topology_name, spec, max_len=None):
        from repro.datagen.serialize import ParsedParams

        def distance(record):
            return (
                abs(np.log(record.gain_db / spec.gain_db))
                + abs(np.log(record.f3db_hz / spec.f3db_hz))
                + abs(np.log(record.ugf_hz / spec.ugf_hz))
            )

        best = min(self._records, key=distance)
        values = {}
        for group, params in best.device_params.items():
            values[group] = {
                key: value * float(np.exp(self._rng.normal(0.0, self._noise)))
                for key, value in params.items()
            }
        return ParsedParams(values=values, complete=True), "<oracle>"


@pytest.fixture(scope="module")
def oracle_records(five_t_module):
    """A handful of measured designs to serve as the oracle's memory."""
    from repro.datagen import DesignFilter, generate_dataset

    rng = np.random.default_rng(21)
    dataset = generate_dataset(
        five_t_module, 15, rng,
        design_filter=DesignFilter(five_t_module, check_icmr=False),
        max_attempts=400,
    )
    assert len(dataset) >= 10
    return dataset.records


@pytest.fixture(scope="module")
def five_t_module():
    from repro.topologies import FiveTransistorOTA

    return FiveTransistorOTA()


@pytest.fixture(scope="module")
def luts_module():
    return {
        NMOS_65NM.name: build_lut(NMOS_65NM),
        PMOS_65NM.name: build_lut(PMOS_65NM),
    }


class TestSizingFlowWithOracle:
    def test_exact_oracle_sizes_in_one_simulation(self, five_t_module, oracle_records, luts_module):
        model = _OracleModel(five_t_module, oracle_records, luts_module, noise=0.0)
        flow = SizingFlow(five_t_module, model)
        record = oracle_records[0]
        # Ask for exactly what a known design achieves (with a hair of slack).
        spec = DesignSpec(record.gain_db * 0.995, record.f3db_hz * 0.98, record.ugf_hz * 0.98)
        result = flow.size(spec)
        assert result.success
        assert result.spice_simulations == 1
        assert result.single_simulation

    def test_widths_recovered_close_to_truth(self, five_t_module, oracle_records, luts_module):
        model = _OracleModel(five_t_module, oracle_records, luts_module, noise=0.0)
        flow = SizingFlow(five_t_module, model)
        record = oracle_records[1]
        parsed, _ = model.predict_params("5T-OTA", DesignSpec(record.gain_db, record.f3db_hz, record.ugf_hz))
        widths = flow.widths_from_params(parsed.values)
        for group, width in widths.items():
            assert width == pytest.approx(record.widths[group], rel=0.1)

    def test_noisy_oracle_recovers_with_copilot(self, five_t_module, oracle_records, luts_module):
        """With parameter noise some first attempts miss; the margin loop
        must close most of them within a few iterations."""
        model = _OracleModel(five_t_module, oracle_records, luts_module, noise=0.05, seed=3)
        flow = SizingFlow(five_t_module, model)
        successes = 0
        for record in oracle_records[:8]:
            spec = DesignSpec(record.gain_db * 0.98, record.f3db_hz * 0.9, record.ugf_hz * 0.9)
            result = flow.size(spec, max_iterations=6)
            successes += int(result.success)
        assert successes >= 6

    def test_result_accounting(self, five_t_module, oracle_records, luts_module):
        model = _OracleModel(five_t_module, oracle_records, luts_module)
        flow = SizingFlow(five_t_module, model)
        record = oracle_records[2]
        spec = DesignSpec(record.gain_db * 0.99, record.f3db_hz * 0.95, record.ugf_hz * 0.95)
        result = flow.size(spec)
        assert result.iterations == len(result.trace)
        assert result.wall_time_s > 0
        assert result.spec == spec

    def test_impossible_spec_fails_gracefully(self, five_t_module, oracle_records, luts_module):
        model = _OracleModel(five_t_module, oracle_records, luts_module)
        flow = SizingFlow(five_t_module, model)
        impossible = DesignSpec(gain_db=90.0, f3db_hz=1e9, ugf_hz=1e11)
        result = flow.size(impossible, max_iterations=3)
        assert not result.success
        assert result.spice_simulations <= 3
        assert result.metrics is not None  # best effort reported
