"""Edge-case and failure-injection tests across the substrates."""

import numpy as np
import pytest

from repro.devices import NMOS_65NM
from repro.dpsfg import MasonEvaluator, build_dpsfg
from repro.spice import Circuit, ConvergenceError, solve_dc
from repro.spice.dc import _MNASystem


class TestDCSolverFailurePaths:
    def test_convergence_error_when_budget_exhausted(self, five_t):
        """With a 1-iteration Newton budget every strategy must fail and
        the solver must raise rather than return garbage."""
        circuit = five_t.build({"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6})
        with pytest.raises(ConvergenceError, match="all strategies"):
            solve_dc(circuit, max_iterations=1)

    def test_singular_system_falls_back_to_lstsq(self):
        """Two identical parallel voltage sources make the MNA matrix
        singular; the solver must still produce the obvious solution."""
        circuit = Circuit("parallel_sources")
        circuit.add_vsource("V1", "a", "0", 1.0)
        circuit.add_vsource("V2", "a", "0", 1.0)
        circuit.add_resistor("R", "a", "0", 1e3)
        solution = solve_dc(circuit)
        assert solution.voltage("a") == pytest.approx(1.0, abs=1e-6)

    def test_empty_circuit(self):
        solution = solve_dc(Circuit("empty"))
        assert solution.node_voltages == {}

    def test_mna_pack_unpack_roundtrip(self, five_t):
        circuit = five_t.build({"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6})
        system = _MNASystem(circuit)
        voltages = {name: float(i) / 10 for i, name in enumerate(circuit.nodes())}
        currents = {src.name: 1e-6 * i for i, src in enumerate(circuit.vsources)}
        packed = system.pack(voltages, currents)
        unpacked_v, unpacked_i = system.unpack(packed)
        assert unpacked_v == voltages
        assert unpacked_i == currents


class TestMasonEdgeCases:
    def test_loopless_graph(self):
        """A plain RC divider SFG has no loops; Delta must be exactly 1."""
        circuit = Circuit("rc")
        circuit.add_vsource("VIN", "in", "0", 0.0, ac=1.0)
        circuit.add_resistor("R", "in", "mid", 1e3)
        circuit.add_capacitor("C", "mid", "0", 1e-12)
        sfg = build_dpsfg(circuit, "mid")
        evaluator = MasonEvaluator(sfg)
        assert evaluator.loops == []
        delta = evaluator.determinant(1j, sfg.merged_env())
        assert delta == pytest.approx(1.0)

    def test_unknown_excitation_rejected(self):
        circuit = Circuit("rc")
        circuit.add_vsource("VIN", "in", "0", 0.0, ac=1.0)
        circuit.add_resistor("R", "in", "mid", 1e3)
        circuit.add_capacitor("C", "mid", "0", 1e-12)
        sfg = build_dpsfg(circuit, "mid")
        from repro.dpsfg import forward_paths

        with pytest.raises(KeyError):
            forward_paths(sfg, "Vnope")

    def test_zero_gain_for_disconnected_source(self):
        """An excitation with no path to the output contributes nothing."""
        circuit = Circuit("two_islands")
        circuit.add_vsource("VIN", "in", "0", 0.0, ac=1.0)
        circuit.add_resistor("R1", "in", "mid", 1e3)
        circuit.add_capacitor("C1", "mid", "0", 1e-12)
        # A second, galvanically isolated island observed at "mid".
        circuit.add_isource("IX", "0", "island", 0.0, ac=1.0)
        circuit.add_resistor("R2", "island", "0", 1e3)
        sfg = build_dpsfg(circuit, "mid")
        evaluator = MasonEvaluator(sfg)
        assert evaluator.gain("IX", 1j) == pytest.approx(0.0)

    def test_dpsfg_handles_multiple_isources(self):
        circuit = Circuit("multi_i")
        circuit.add_resistor("R1", "n", "0", 1e3)
        circuit.add_isource("I1", "0", "n", 0.0, ac=1.0)
        circuit.add_isource("I2", "0", "n", 0.0, ac=0.5)
        sfg = build_dpsfg(circuit, "n")
        evaluator = MasonEvaluator(sfg)
        # Superposition: 1.5 total AC amps into 1k.
        assert evaluator.transfer(1j) == pytest.approx(1500.0)


class TestDeviceEdgeCases:
    def test_zero_vgs_currents_tiny(self):
        from repro.devices import EKVModel

        model = EKVModel(NMOS_65NM)
        leakage = float(model.drain_current(0.0, 1.2, 1e-6, 180e-9))
        on_current = float(model.drain_current(1.2, 1.2, 1e-6, 180e-9))
        assert leakage < on_current * 1e-4
        assert leakage > 0  # subthreshold conduction, not hard zero

    def test_vectorized_evaluation_shapes(self):
        from repro.devices import EKVModel

        model = EKVModel(NMOS_65NM)
        vgs = np.linspace(0, 1.2, 5)[:, None]
        vds = np.linspace(0, 1.2, 7)[None, :]
        values = model.evaluate_all(vgs, vds, 1e-6, 180e-9)
        for table in values.values():
            assert np.asarray(table).shape == (5, 7)
