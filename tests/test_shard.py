"""Tests of the multiprocess sharded engine and its shared substrate.

Three contracts from the sharding tentpole are pinned here:

* **Zero-copy artifact** — a model exported to the mmap artifact and
  loaded back predicts bit-identically, its weight arrays and LUT grids
  are read-only views over one memory-mapped file (``/proc/<pid>/maps``
  shows the file in every worker), and a format-version mismatch fails
  loudly instead of mis-slicing.
* **Cross-process result cache** — the sqlite-backed store applies the
  same transfer rule as the in-process LRU, keeps hit/miss accounting in
  the database (exact across the pool), serves a spec computed in one
  process to another bit-identically, and is last-writer-wins when two
  writers race on a key (the benign double-compute window).
* **Crash containment** — a request that kills its worker mid-batch
  fails alone: neighbors come back bit-identical to a single-process
  run, the worker restarts (``/healthz`` goes degraded → healthy), and
  spawn-start means no worker ever inherits the parent's HTTP listener
  socket (pinned against ``/proc/<pid>/fd``).

Worker factories used here are module-level (spawn pickles them by
qualified name into the fresh child interpreter).
"""

from __future__ import annotations

import http.client
import json
import mmap
import multiprocessing
import os
import signal
import sys
import time
from functools import partial

import numpy as np
import pytest

from repro.core import PipelineConfig, train_sizing_model
from repro.serve import create_server, serve_forever_in_thread
from repro.service import SharedResultCache, SizingEngine, SizingRequest, SizingResponse
from repro.shard import ShardedEngine, SharedArtifact, engine_from_artifact, load_shared_model
from repro.spice import PerformanceMetrics

TINY_SHARD = PipelineConfig(
    designs_per_topology=(("5T-OTA", 25),),
    epochs=2,
    d_model=32,
    n_heads=4,
    d_ff=48,
    dropout=0.0,
    num_merges=150,
    encoder_max_paths=1,
    learning_rate=1e-3,
    batch_size=8,
    dtype="float32",
    seed=5,
)

LINUX_ONLY = pytest.mark.skipif(sys.platform != "linux", reason="needs /proc")


@pytest.fixture(scope="module")
def artifacts():
    return train_sizing_model(TINY_SHARD)


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory, artifacts):
    directory = tmp_path_factory.mktemp("shared_artifact")
    artifacts.model.export_shared_artifact(directory)
    return directory


@pytest.fixture(scope="module")
def reference_engine(artifact_dir):
    """Single-process engine over the same artifact (no cache: every
    response is a fresh computation to compare the pool against)."""
    return SizingEngine(load_shared_model(artifact_dir), cache_size=0)


@pytest.fixture(scope="module")
def pool(artifact_dir, tmp_path_factory):
    """The happy-path pool: two spawn workers, shared sqlite cache,
    round-robin routing (so repeated specs must cross workers)."""
    engine = ShardedEngine.from_artifact(
        artifact_dir,
        workers=2,
        cache_dir=tmp_path_factory.mktemp("shard_cache"),
        shard_by="round-robin",
    )
    yield engine
    engine.close()


def _requests_from(records, count, prefix):
    return [
        SizingRequest.for_spec(
            "5T-OTA",
            record.gain_db,
            record.f3db_hz,
            record.ugf_hz,
            id=f"{prefix}{i}",
            max_iterations=2,
        )
        for i, record in enumerate(records[:count])
    ]


def _comparable(response_json):
    """Response payload minus the fields that legitimately differ between
    a fresh run and a pooled/cached one."""
    payload = dict(response_json)
    payload.pop("wall_time_s")
    payload.pop("cached", None)
    return payload


def _assert_parity(reference_responses, responses):
    assert len(reference_responses) == len(responses)
    for reference, got in zip(reference_responses, responses, strict=True):
        assert _comparable(reference.to_json()) == _comparable(got.to_json())


def _mmap_base(array):
    """The root of a view chain; a shared array bottoms out at the mmap."""
    base = array
    while getattr(base, "base", None) is not None:
        base = base.base
    return base


# ----------------------------------------------------------------------
# Spawn-picklable worker factories for the crash tests
# ----------------------------------------------------------------------
class _PoisonEngine:
    """Engine wrapper that hard-kills its process on marked requests —
    a stand-in for a segfaulting native extension, the failure mode the
    pool must contain."""

    def __init__(self, engine):
        self._engine = engine

    @property
    def stats(self):
        return self._engine.stats

    @property
    def cache(self):
        return self._engine.cache

    def size_batch(self, requests):
        if any(request.id.startswith("poison") for request in requests):
            os._exit(17)
        return self._engine.size_batch(requests)


def _poison_factory(artifact_dir):
    return _PoisonEngine(engine_from_artifact(artifact_dir))


def _failing_factory():
    raise RuntimeError("deliberately broken factory")


def _child_put(directory, request, response):
    SharedResultCache(directory).put(request, response)


def _child_race_put(directory, barrier, request, response):
    cache = SharedResultCache(directory)
    barrier.wait(timeout=30.0)
    cache.put(request, response)


# ----------------------------------------------------------------------
# Shared artifact: export / mmap-load roundtrip
# ----------------------------------------------------------------------
class TestSharedArtifact:
    def test_roundtrip_predictions_identical(self, artifacts, artifact_dir):
        shared = load_shared_model(artifact_dir)
        record = artifacts.val_records["5T-OTA"][0]
        spec = SizingRequest.for_spec(
            "5T-OTA", record.gain_db, record.f3db_hz, record.ugf_hz
        ).spec
        reference_params, reference_text = artifacts.model.predict_params("5T-OTA", spec)
        shared_params, shared_text = shared.predict_params("5T-OTA", spec)
        assert shared_text == reference_text
        assert shared_params.values == reference_params.values
        assert shared_params.complete == reference_params.complete

    def test_weights_are_readonly_views_over_one_mmap(self, artifact_dir):
        shared = load_shared_model(artifact_dir)
        arrays = [value for _, value in shared.transformer.named_parameters()]
        tech = sorted(shared.luts)[0]
        arrays.append(shared.luts[tech].vgs_grid)
        arrays.append(next(iter(shared.luts[tech].tables.values())))
        bases = set()
        for array in arrays:
            assert not array.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                array[(0,) * array.ndim] = 0.0
            base = _mmap_base(array)
            assert isinstance(base, (mmap.mmap, np.memmap))
            bases.add(id(base))
        # Every parameter and grid is a view over the *same* mapping —
        # N workers cost one physical copy of the model, not N.
        assert len(bases) == 1

    def test_format_version_mismatch_rejected(self, artifact_dir, tmp_path):
        manifest = json.loads((artifact_dir / "manifest.json").read_text())
        manifest["format_version"] = 999
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format_version"):
            SharedArtifact.open(tmp_path)

    def test_adopt_parameters_validates(self, artifacts):
        transformer = artifacts.model.transformer
        state = dict(transformer.named_parameters())
        name = next(iter(state))
        with pytest.raises(KeyError, match="missing"):
            transformer.adopt_parameters({k: v for k, v in state.items() if k != name})
        state[name] = np.zeros(tuple(d + 1 for d in state[name].shape), dtype=state[name].dtype)
        with pytest.raises(ValueError, match="shape"):
            transformer.adopt_parameters(state)


# ----------------------------------------------------------------------
# SharedResultCache: same transfer rule, cross-process semantics
# ----------------------------------------------------------------------
class TestSharedResultCache:
    def _request(self, gain=25.0, **kwargs):
        return SizingRequest.for_spec("5T-OTA", gain, 5e6, 8e7, **kwargs)

    def _response(self, request, success=True, metrics="auto", m1=1e-6):
        if metrics == "auto":
            metrics = PerformanceMetrics(26.0, 6e6, 9e7)
        return SizingResponse(
            request_id=request.id, topology=request.topology, success=success,
            widths={"M1": m1}, metrics=metrics, iterations=1,
            spice_simulations=1, wall_time_s=0.1,
        )

    def test_roundtrip_bit_identical(self, tmp_path):
        cache = SharedResultCache(tmp_path)
        request = self._request(id="writer")
        response = self._response(request)
        cache.put(request, response)
        hit = cache.get(self._request(id="reader"))
        assert hit == response.with_request_id("reader", cached=True)

    def test_near_duplicate_transfer_rule_matches_lru(self, tmp_path):
        cache = SharedResultCache(tmp_path)
        request = self._request(gain=25.0)
        cache.put(request, self._response(request))
        # 25.004 quantizes to the same key and the measured 26 dB
        # satisfies the new exact target: transfers.
        assert cache.get(self._request(gain=25.004, id="near")) is not None
        # Measured 25.01 dB does not satisfy an exact 25.04 target.
        cache.clear()
        cache.put(
            request, self._response(request, metrics=PerformanceMetrics(25.01, 6e6, 9e7))
        )
        assert cache.get(self._request(gain=25.04, id="tighter")) is None

    def test_failure_served_only_for_exact_spec(self, tmp_path):
        cache = SharedResultCache(tmp_path)
        request = self._request(gain=25.0)
        cache.put(request, self._response(request, success=False, metrics=None))
        assert cache.get(self._request(gain=25.0, id="same")) is not None
        assert cache.get(self._request(gain=25.004, id="near")) is None

    def test_lru_eviction_by_global_clock(self, tmp_path):
        cache = SharedResultCache(tmp_path, maxsize=2)
        first, second, third = (self._request(gain=20.0 + i) for i in range(3))
        cache.put(first, self._response(first))
        cache.put(second, self._response(second))
        assert cache.get(first) is not None  # refresh: now `second` is LRU
        cache.put(third, self._response(third))
        assert len(cache) == 2
        assert cache.get(second) is None
        assert cache.get(first) is not None
        assert cache.get(third) is not None

    def test_counters_live_in_the_database(self, tmp_path):
        writer = SharedResultCache(tmp_path)
        request = self._request()
        writer.put(request, self._response(request))
        assert writer.get(self._request(id="hit")) is not None
        assert writer.get(self._request(gain=99.0, id="miss")) is None
        # A *different* instance over the same directory sees the same
        # accounting: the counters are pool-wide, not per process.
        reader = SharedResultCache(tmp_path)
        stats = reader.as_dict()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["shared"] is True

    def test_cross_process_hit(self, tmp_path):
        request = self._request(id="producer")
        response = self._response(request)
        ctx = multiprocessing.get_context("spawn")
        child = ctx.Process(
            target=_child_put, args=(str(tmp_path), request, response)
        )
        child.start()
        child.join(timeout=60.0)
        assert child.exitcode == 0
        hit = SharedResultCache(tmp_path).get(self._request(id="consumer"))
        assert hit == response.with_request_id("consumer", cached=True)

    def test_racing_writers_are_last_writer_wins(self, tmp_path):
        # The benign double-compute window: both workers missed, both
        # computed, both put.  The store must end with exactly one valid
        # entry (one of the two), never a torn or duplicated one.
        request = self._request(id="racer")
        first = self._response(request, m1=1e-6)
        second = self._response(request, m1=2e-6)
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        children = [
            ctx.Process(
                target=_child_race_put,
                args=(str(tmp_path), barrier, request, response),
            )
            for response in (first, second)
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=60.0)
            assert child.exitcode == 0
        cache = SharedResultCache(tmp_path)
        assert len(cache) == 1
        hit = cache.get(self._request(id="reader"))
        assert hit is not None
        assert hit.widths in (first.widths, second.widths)
        # Deterministic ordering: the later put overwrites.
        cache.put(request, first)
        cache.put(request, second)
        assert cache.get(self._request(id="again")).widths == second.widths


# ----------------------------------------------------------------------
# ShardedEngine over the happy-path pool
# ----------------------------------------------------------------------
class TestShardedEngine:
    def test_spawn_only_daemon_workers(self, pool):
        # Fork would inherit the parent's sockets/queues/locks; the
        # fork-safety rule pins this statically, this pins it at runtime.
        assert pool._ctx.get_start_method() == "spawn"
        for handle in pool._handles:
            assert handle.process.daemon
            assert handle.state == "healthy"

    def test_parity_with_single_process_engine(self, pool, reference_engine, artifacts):
        requests = _requests_from(artifacts.val_records["5T-OTA"], 4, "parity-")
        reference = reference_engine.size_batch(requests)
        responses = pool.size_batch(requests)
        assert [r.request_id for r in responses] == [r.id for r in requests]
        _assert_parity(reference, responses)

    def test_cross_worker_cache_hits(self, pool, artifacts):
        records = artifacts.val_records["5T-OTA"]
        before = pool.cache.as_dict()
        pool.size_batch(_requests_from(records, 3, "warm-"))
        # An *odd* batch size flips the round-robin parity: the repeat of
        # each spec is guaranteed to land on the other worker, so these
        # hits can only come from the shared cross-process store.
        responses = pool.size_batch(_requests_from(records, 3, "replay-"))
        assert all(response.cached for response in responses)
        after = pool.cache.as_dict()
        assert after["hits"] >= before["hits"] + 3

    def test_stats_health_and_workers_payload(self, pool):
        stats = pool.stats
        assert stats.requests >= 7  # 4 parity + 3 warm (replays hit too)
        assert stats.cache_hits >= 3
        health = pool.health()
        assert health["status"] == "ok"
        assert [worker["state"] for worker in health["workers"]] == ["healthy"] * 2
        payload = pool.workers_payload()
        assert len(payload) == 2
        for worker in payload:
            assert set(worker) >= {
                "index", "pid", "state", "restarts", "batches", "requests",
                "cache_hits", "cache",
            }
            assert worker["cache"] is None or worker["cache"]["shared"] is True
        # Both workers actually served work (round-robin spreads it).
        assert all(worker["requests"] > 0 for worker in payload)
        assert sum(worker["cache_hits"] for worker in payload) >= 3

    @LINUX_ONLY
    def test_workers_map_the_artifact_not_copy_it(self, pool, artifact_dir):
        arrays_path = str(artifact_dir / "arrays.npy")
        for handle in pool._handles:
            maps = open(f"/proc/{handle.pid}/maps").read()
            assert arrays_path in maps


# ----------------------------------------------------------------------
# Crash containment (dedicated pools: these tests kill workers)
# ----------------------------------------------------------------------
class TestCrashContainment:
    def test_poison_request_fails_alone_and_workers_restart(
        self, artifact_dir, reference_engine, artifacts
    ):
        goods = _requests_from(artifacts.val_records["5T-OTA"], 3, "good-")
        poison = SizingRequest.for_spec(
            "5T-OTA", 25.0, 5e6, 8e7, id="poison-1", max_iterations=2
        )
        engine = ShardedEngine(
            partial(_poison_factory, str(artifact_dir)), workers=2, shard_by="round-robin"
        )
        try:
            responses = engine.size_batch([*goods, poison])
            # Neighbors are bit-identical to a single-process run: the
            # crash cost them nothing but a retry.
            _assert_parity(reference_engine.size_batch(goods), responses[:3])
            failed = responses[3]
            assert not failed.success
            assert failed.error is not None and "worker" in failed.error
            # The poison request killed its first worker, then the
            # fallback during the singleton retry: exactly two restarts.
            assert sum(handle.restarts for handle in engine._handles) == 2
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and engine.health()["status"] != "ok":
                time.sleep(0.05)
            assert engine.health()["status"] == "ok"
            # The recovered pool still serves, and still matches.
            again = engine.size_batch([goods[0]])
            _assert_parity(reference_engine.size_batch([goods[0]]), again)
        finally:
            engine.close()

    def test_all_workers_failing_startup_raises(self):
        with pytest.raises(RuntimeError, match="failed to start"):
            ShardedEngine(_failing_factory, workers=2, startup_timeout_s=60.0)


# ----------------------------------------------------------------------
# End to end over HTTP: sharded pool behind the serving layer
# ----------------------------------------------------------------------
def _http_json(port, method, path, payload=None, timeout=120.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


@LINUX_ONLY
class TestServeSharded:
    def test_e2e_parity_stats_fd_isolation_and_recovery(
        self, artifact_dir, tmp_path_factory, reference_engine, artifacts
    ):
        requests = _requests_from(artifacts.val_records["5T-OTA"], 3, "http-")
        reference = reference_engine.size_batch(requests)
        engine = ShardedEngine.from_artifact(
            artifact_dir,
            workers=2,
            cache_dir=tmp_path_factory.mktemp("serve_cache"),
            shard_by="round-robin",
        )
        server = create_server(
            engine, max_batch_size=4, max_wait_ms=20.0, concurrent_batches=2
        )
        port = server.server_address[1]
        thread = serve_forever_in_thread(server)
        try:
            for request, expected in zip(requests, reference, strict=True):
                status, payload = _http_json(port, "POST", "/v1/size", request.to_json())
                assert status == 200
                assert _comparable(payload) == _comparable(expected.to_json())

            status, health = _http_json(port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            assert len(health["workers"]) == 2

            status, stats = _http_json(port, "GET", "/stats")
            assert status == 200
            workers = stats["workers"]["workers"]
            assert len(workers) == 2
            assert stats["workers"]["total"]["requests"] == 3
            assert stats["engine"]["requests"] == 3
            assert stats["cache"]["shared"] is True

            # No worker inherited the parent's listener socket: spawn
            # starts from a fresh interpreter, and the satellite rule
            # exists precisely to keep it that way.
            listener_inode = f"socket:[{os.fstat(server.socket.fileno()).st_ino}]"
            for worker in workers:
                fd_dir = f"/proc/{worker['pid']}/fd"
                for fd in os.listdir(fd_dir):
                    try:
                        target = os.readlink(f"{fd_dir}/{fd}")
                    except FileNotFoundError:
                        continue
                    assert target != listener_inode

            # Kill a worker: /healthz must pass through degraded and
            # come back ok with the restart counted.
            os.kill(workers[0]["pid"], signal.SIGKILL)
            saw_degraded = recovered = False
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                _, health = _http_json(port, "GET", "/healthz")
                if health["status"] == "degraded":
                    saw_degraded = True
                restarts = sum(w["restarts"] for w in health.get("workers", []))
                if health["status"] == "ok" and restarts >= 1:
                    recovered = True
                    break
                time.sleep(0.01)
            assert saw_degraded, "kill was never observed as degraded"
            assert recovered, "pool did not recover within 60s"

            # The disk-backed cache survived the worker death: an exact
            # replay is a cross-process (and cross-incarnation) hit.
            replay = SizingRequest.for_spec(
                "5T-OTA",
                requests[0].spec.gain_db,
                requests[0].spec.f3db_hz,
                requests[0].spec.ugf_hz,
                id="after-restart",
                max_iterations=2,
            )
            status, payload = _http_json(port, "POST", "/v1/size", replay.to_json())
            assert status == 200
            assert payload["cached"] is True
            assert _comparable(payload) == _comparable(
                reference[0].to_json() | {"request_id": "after-restart"}
            )
        finally:
            server.shutdown_gracefully(timeout=10.0)
            thread.join(timeout=10.0)
            engine.close()
