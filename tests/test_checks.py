"""Tests for :mod:`repro.checks` — the repo's AST invariant linter.

Each rule is exercised four ways: a positive fixture reproducing the
historical bug shape the rule encodes, a clean fixture, a suppressed hit
(``# checks: ignore[...]``), and an unused suppression.  A meta-test
pins the live ``src/repro`` tree clean under every default rule, which
is the same gate CI enforces.
"""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.checks import DEFAULT_RULES, run_checks
from repro.checks.cli import main as checks_main
from repro.checks.core import UNUSED_SUPPRESSION
from repro.checks.json_safety import JsonSafetyRule
from repro.checks.lock_discipline import LockDisciplineRule
from repro.checks.registry import rule_by_id
from repro.checks.rng import RngDeterminismRule
from repro.checks.wire_format import WireFormatRule


def check_source(tmp_path: Path, source: str, rules, name: str = "fixture.py"):
    """Write one fixture module and run ``rules`` over it."""
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    report = run_checks([target], list(rules), display_root=tmp_path)
    return report.findings


# ----------------------------------------------------------------------
# Framework: suppressions, unused suppressions, report shape, CLI
# ----------------------------------------------------------------------
class TestFramework:
    def test_rule_ids_registered(self):
        assert [rule.id for rule in DEFAULT_RULES] == [
            "lock-discipline",
            "wire-format-drift",
            "rng-determinism",
            "json-safety",
        ]
        assert rule_by_id("json-safety").id == "json-safety"

    def test_suppression_silences_finding(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import json

            def emit(payload):
                return json.dumps(payload)  # checks: ignore[json-safety]
            """,
            [JsonSafetyRule()],
        )
        assert findings == []

    def test_suppression_is_rule_specific(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import json

            def emit(payload):
                return json.dumps(payload)  # checks: ignore[lock-discipline]
            """,
            [JsonSafetyRule()],
        )
        rules = {finding.rule for finding in findings}
        # The real finding survives AND the mismatched ignore is stale.
        assert rules == {"json-safety", UNUSED_SUPPRESSION}

    def test_unused_suppression_reported(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def fine():
                return 1  # checks: ignore[json-safety]
            """,
            [JsonSafetyRule()],
        )
        assert len(findings) == 1
        assert findings[0].rule == UNUSED_SUPPRESSION
        assert "json-safety" in findings[0].message

    def test_syntax_error_becomes_finding(self, tmp_path):
        findings = check_source(tmp_path, "def broken(:\n", DEFAULT_RULES)
        assert [finding.rule for finding in findings] == ["syntax-error"]

    def test_report_dict_shape(self, tmp_path):
        target = tmp_path / "fixture.py"
        target.write_text("import json\njson.dumps({})\n")
        report = run_checks([target], [JsonSafetyRule()], display_root=tmp_path)
        payload = report.as_dict()
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"json-safety": 1}
        assert payload["findings"][0]["path"] == "fixture.py"
        # The report itself must round-trip as strict JSON.
        assert json.loads(json.dumps(payload, allow_nan=False)) == payload

    def test_cli_exit_codes_and_report_file(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import json\njson.dumps({})\n")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        out = tmp_path / "report.json"

        assert checks_main([str(clean)]) == 0
        assert checks_main([str(dirty), "--output", str(out)]) == 1
        assert checks_main([str(tmp_path / "missing.py")]) == 2

        payload = json.loads(out.read_text())
        assert payload["counts"] == {"json-safety": 1}
        capsys.readouterr()

    def test_cli_list_rules(self, capsys):
        assert checks_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in DEFAULT_RULES:
            assert rule.id in out


# ----------------------------------------------------------------------
# lock-discipline (the PR 6 EngineStats/ResultCache retrofit)
# ----------------------------------------------------------------------
class TestLockDiscipline:
    RULE = [LockDisciplineRule()]

    def test_unlocked_stats_write_flagged(self, tmp_path):
        # Minimal repro of the historical bug: a counter increment on a
        # thread-shared stats object without the lock.
        findings = check_source(
            tmp_path,
            """
            import threading

            class EngineStats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._requests = 0

                def record(self):
                    self._requests += 1
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert findings[0].rule == "lock-discipline"
        assert "self._requests" in findings[0].message

    def test_locked_write_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading

            class EngineStats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._requests = 0

                def record(self):
                    with self._lock:
                        self._requests += 1
            """,
            self.RULE,
        )
        assert findings == []

    def test_init_is_exempt_and_mutator_calls_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading
            from collections import OrderedDict

            class ResultCache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = OrderedDict()

                def clear(self):
                    self._entries.clear()
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "self._entries.clear()" in findings[0].message

    def test_nested_function_is_treated_as_unlocked(self, tmp_path):
        # A closure created under the lock may run after release.
        findings = check_source(
            tmp_path,
            """
            import threading

            class ServeStats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def deferred(self):
                    with self._lock:
                        def later():
                            self._count += 1
                        return later
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "self._count" in findings[0].message

    def test_marker_comment_opts_in_new_class(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading

            class ShardPool:  # checks: thread-shared[_guard]
                def __init__(self):
                    self._guard = threading.Lock()
                    self._shards = []

                def locked_add(self, shard):
                    with self._guard:
                        self._shards.append(shard)

                def unlocked_add(self, shard):
                    self._shards.append(shard)
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "ShardPool.unlocked_add" in findings[0].message

    def test_suppressed_hit_and_unused_suppression(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading

            class MicroBatcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = []

                def helper(self):
                    # Caller holds the lock (see test fixture rationale).
                    self._queue.pop()  # checks: ignore[lock-discipline]

                def fine(self):
                    with self._lock:
                        self._queue.append(1)  # checks: ignore[lock-discipline]
            """,
            self.RULE,
        )
        # The helper's ignore is consumed; the locked line's ignore is stale.
        assert [finding.rule for finding in findings] == [UNUSED_SUPPRESSION]
        assert findings[0].line == 15


# ----------------------------------------------------------------------
# wire-format-drift (the PR 4/5 corners/analyses/tran-targets drift)
# ----------------------------------------------------------------------
class TestWireFormat:
    RULE = [WireFormatRule()]

    CLEAN = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class SizingRequest:
        topology: str
        corners: tuple = ()
        id: str = "req-0"
        deadline_ms: float = 0.0

        def to_json(self):
            return {"topology": self.topology, "corners": list(self.corners), "id": self.id}

        @classmethod
        def from_json(cls, data):
            return cls(
                topology=data["topology"],
                corners=tuple(data["corners"]),
                id=data["id"],
            )

    class ResultCache:
        @staticmethod
        def key(request):
            return (request.topology, request.corners)
    """

    def test_clean_fixture(self, tmp_path):
        assert check_source(tmp_path, self.CLEAN, self.RULE) == []

    def test_field_missing_from_cache_key_flagged(self, tmp_path):
        # Minimal repro of the PR 4 hazard: `corners` serialized but not
        # part of the cache key -> requests differing only in corners
        # would collide and transfer each other's verdicts.
        source = self.CLEAN.replace(
            "return (request.topology, request.corners)",
            "return (request.topology,)",
        )
        findings = check_source(tmp_path, source, self.RULE)
        assert len(findings) == 1
        assert "`corners`" in findings[0].message
        assert "ResultCache.key" in findings[0].message

    def test_field_missing_from_serializers_flagged(self, tmp_path):
        source = self.CLEAN.replace(
            '"corners": list(self.corners), ', ""
        ).replace("corners=tuple(data[\"corners\"]),\n", "")
        findings = check_source(tmp_path, source, self.RULE)
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("SizingRequest.to_json" in message for message in messages)
        assert any("SizingRequest.from_json" in message for message in messages)

    def test_reference_via_string_collection_constant(self, tmp_path):
        # The live tree references transient fields through constants
        # (`for name in TRAN_METRIC_NAMES`); the rule must see through it.
        findings = check_source(
            tmp_path,
            """
            from dataclasses import dataclass

            FIELD_NAMES = ("topology", "corners")

            @dataclass(frozen=True)
            class SizingRequest:
                topology: str
                corners: tuple = ()

                def to_json(self):
                    return {name: getattr(self, name) for name in FIELD_NAMES}

                @classmethod
                def from_json(cls, data):
                    return cls(**{name: data[name] for name in FIELD_NAMES})

            class ResultCache:
                @staticmethod
                def key(request):
                    return tuple(getattr(request, name) for name in FIELD_NAMES)
            """,
            self.RULE,
        )
        assert findings == []

    def test_no_request_class_means_no_findings(self, tmp_path):
        assert check_source(tmp_path, "x = 1\n", self.RULE) == []


# ----------------------------------------------------------------------
# rng-determinism (explicit-Generator protocol)
# ----------------------------------------------------------------------
class TestRngDeterminism:
    RULE = [RngDeterminismRule()]

    def test_module_level_np_random_call_flagged(self, tmp_path):
        # Minimal repro of the bug shape: process-global RNG state.
        findings = check_source(
            tmp_path,
            """
            import numpy as np

            def jitter(widths):
                return widths + np.random.rand(len(widths))
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "np.random.rand" in findings[0].message

    def test_stdlib_random_import_flagged(self, tmp_path):
        findings = check_source(tmp_path, "import random\n", self.RULE)
        assert len(findings) == 1
        assert "stdlib `random`" in findings[0].message

    def test_legacy_numpy_random_import_flagged(self, tmp_path):
        findings = check_source(
            tmp_path, "from numpy.random import shuffle\n", self.RULE
        )
        assert len(findings) == 1
        assert "numpy.random.shuffle" in findings[0].message

    def test_time_derived_seed_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import time
            import numpy as np

            rng = np.random.default_rng(int(time.time()))
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "time.time" in findings[0].message

    def test_explicit_generator_protocol_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import zlib
            import numpy as np

            def make_rng(request_id: str) -> np.random.Generator:
                return np.random.default_rng(zlib.crc32(request_id.encode()))

            def sample(rng: np.random.Generator) -> float:
                return float(rng.normal())
            """,
            self.RULE,
        )
        assert findings == []

    def test_suppressed_hit(self, tmp_path):
        findings = check_source(
            tmp_path,
            "import random  # checks: ignore[rng-determinism]\n",
            self.RULE,
        )
        assert findings == []


# ----------------------------------------------------------------------
# json-safety (the PR 3 bare-Infinity solver-history bug)
# ----------------------------------------------------------------------
class TestJsonSafety:
    RULE = [JsonSafetyRule()]

    def test_bare_dumps_flagged(self, tmp_path):
        # Minimal repro of the historical bug: an inf objective reaches
        # json.dumps, which would emit bare `Infinity` (not JSON).
        findings = check_source(
            tmp_path,
            """
            import json

            def history_line(best_objective: float) -> str:
                return json.dumps({"best": best_objective})
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "allow_nan" in findings[0].message

    def test_allow_nan_false_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import json

            def emit(payload) -> str:
                return json.dumps(payload, sort_keys=True, allow_nan=False)
            """,
            self.RULE,
        )
        assert findings == []

    def test_allow_nan_true_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            "import json\njson.dumps({}, allow_nan=True)\n",
            self.RULE,
        )
        assert len(findings) == 1
        assert "does not pin" in findings[0].message

    def test_from_import_alias_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            "from json import dumps as to_text\nto_text({})\n",
            self.RULE,
        )
        assert len(findings) == 1

    def test_json_dump_to_file_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import io
            import json

            json.dump({}, io.StringIO())
            """,
            self.RULE,
        )
        assert len(findings) == 1

    def test_enforcement_is_real(self):
        # The convention the rule enforces actually catches the PR 3 bug.
        with pytest.raises(ValueError):
            json.dumps({"best": float("inf")}, allow_nan=False)


# ----------------------------------------------------------------------
# Meta: the live tree is clean (the CI gate)
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_src_repro_is_clean_under_all_default_rules(self):
        package_root = Path(repro.__file__).resolve().parent
        report = run_checks([package_root], list(DEFAULT_RULES))
        assert report.findings == [], "\n".join(
            finding.format() for finding in report.findings
        )
        assert report.files_checked > 50
