"""Tests for :mod:`repro.checks` — the repo's AST invariant linter.

Each rule is exercised four ways: a positive fixture reproducing the
historical bug shape the rule encodes, a clean fixture, a suppressed hit
(``# checks: ignore[...]``), and an unused suppression.  A meta-test
pins the live ``src/repro`` tree clean under every default rule, which
is the same gate CI enforces.
"""

import json
import shutil
import subprocess
import textwrap
from pathlib import Path

import pytest

import repro
from repro.checks import DEFAULT_RULES, ProjectGraph, run_checks
from repro.checks.cli import main as checks_main
from repro.checks.core import UNUSED_SUPPRESSION, FileContext, ProjectContext
from repro.checks.fork_safety import ForkSafetyRule
from repro.checks.hot_loop import HotLoopRule
from repro.checks.json_safety import JsonSafetyRule
from repro.checks.lock_discipline import LockDisciplineRule
from repro.checks.lock_order import LockOrderRule
from repro.checks.registry import rule_by_id
from repro.checks.rng import RngDeterminismRule
from repro.checks.wire_format import WireFormatRule


def check_source(tmp_path: Path, source: str, rules, name: str = "fixture.py"):
    """Write one fixture module and run ``rules`` over it."""
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    report = run_checks([target], list(rules), display_root=tmp_path)
    return report.findings


def write_package(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write a fixture package (``pkg/...`` relative paths) under tmp_path."""
    for relative, source in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def check_package(tmp_path: Path, files: dict[str, str], rules):
    """Write a multi-module fixture package and run ``rules`` over it."""
    write_package(tmp_path, files)
    report = run_checks([tmp_path], list(rules), display_root=tmp_path)
    return report.findings


def build_graph(tmp_path: Path, files: dict[str, str]) -> ProjectGraph:
    """Pass-1 symbol table / call graph of a fixture package."""
    write_package(tmp_path, files)
    contexts = [
        FileContext.parse(path, display_path=str(path.relative_to(tmp_path)))
        for path in sorted(tmp_path.rglob("*.py"))
    ]
    return ProjectContext(contexts).graph


# ----------------------------------------------------------------------
# Framework: suppressions, unused suppressions, report shape, CLI
# ----------------------------------------------------------------------
class TestFramework:
    def test_rule_ids_registered(self):
        assert [rule.id for rule in DEFAULT_RULES] == [
            "lock-discipline",
            "lock-order",
            "fork-safety",
            "hot-loop",
            "wire-format-drift",
            "rng-determinism",
            "json-safety",
        ]
        assert rule_by_id("json-safety").id == "json-safety"

    def test_suppression_silences_finding(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import json

            def emit(payload):
                return json.dumps(payload)  # checks: ignore[json-safety]
            """,
            [JsonSafetyRule()],
        )
        assert findings == []

    def test_suppression_is_rule_specific(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import json

            def emit(payload):
                return json.dumps(payload)  # checks: ignore[lock-discipline]
            """,
            [JsonSafetyRule()],
        )
        rules = {finding.rule for finding in findings}
        # The real finding survives AND the mismatched ignore is stale.
        assert rules == {"json-safety", UNUSED_SUPPRESSION}

    def test_unused_suppression_reported(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def fine():
                return 1  # checks: ignore[json-safety]
            """,
            [JsonSafetyRule()],
        )
        assert len(findings) == 1
        assert findings[0].rule == UNUSED_SUPPRESSION
        assert "json-safety" in findings[0].message

    def test_syntax_error_becomes_finding(self, tmp_path):
        findings = check_source(tmp_path, "def broken(:\n", DEFAULT_RULES)
        assert [finding.rule for finding in findings] == ["syntax-error"]

    def test_report_dict_shape(self, tmp_path):
        target = tmp_path / "fixture.py"
        target.write_text("import json\njson.dumps({})\n")
        report = run_checks([target], [JsonSafetyRule()], display_root=tmp_path)
        payload = report.as_dict()
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"json-safety": 1}
        assert payload["findings"][0]["path"] == "fixture.py"
        # The report itself must round-trip as strict JSON.
        assert json.loads(json.dumps(payload, allow_nan=False)) == payload

    def test_cli_exit_codes_and_report_file(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import json\njson.dumps({})\n")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        out = tmp_path / "report.json"

        assert checks_main([str(clean)]) == 0
        assert checks_main([str(dirty), "--output", str(out)]) == 1
        assert checks_main([str(tmp_path / "missing.py")]) == 2

        payload = json.loads(out.read_text())
        assert payload["counts"] == {"json-safety": 1}
        capsys.readouterr()

    def test_cli_list_rules(self, capsys):
        assert checks_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in DEFAULT_RULES:
            assert rule.id in out


# ----------------------------------------------------------------------
# lock-discipline (the PR 6 EngineStats/ResultCache retrofit)
# ----------------------------------------------------------------------
class TestLockDiscipline:
    RULE = [LockDisciplineRule()]

    def test_unlocked_stats_write_flagged(self, tmp_path):
        # Minimal repro of the historical bug: a counter increment on a
        # thread-shared stats object without the lock.
        findings = check_source(
            tmp_path,
            """
            import threading

            class EngineStats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._requests = 0

                def record(self):
                    self._requests += 1
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert findings[0].rule == "lock-discipline"
        assert "self._requests" in findings[0].message

    def test_locked_write_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading

            class EngineStats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._requests = 0

                def record(self):
                    with self._lock:
                        self._requests += 1
            """,
            self.RULE,
        )
        assert findings == []

    def test_init_is_exempt_and_mutator_calls_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading
            from collections import OrderedDict

            class ResultCache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = OrderedDict()

                def clear(self):
                    self._entries.clear()
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "self._entries.clear()" in findings[0].message

    def test_nested_function_is_treated_as_unlocked(self, tmp_path):
        # A closure created under the lock may run after release.
        findings = check_source(
            tmp_path,
            """
            import threading

            class ServeStats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def deferred(self):
                    with self._lock:
                        def later():
                            self._count += 1
                        return later
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "self._count" in findings[0].message

    def test_marker_comment_opts_in_new_class(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading

            class ShardPool:  # checks: thread-shared[_guard]
                def __init__(self):
                    self._guard = threading.Lock()
                    self._shards = []

                def locked_add(self, shard):
                    with self._guard:
                        self._shards.append(shard)

                def unlocked_add(self, shard):
                    self._shards.append(shard)
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "ShardPool.unlocked_add" in findings[0].message

    def test_suppressed_hit_and_unused_suppression(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading

            class MicroBatcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = []

                def helper(self):
                    # Caller holds the lock (see test fixture rationale).
                    self._queue.pop()  # checks: ignore[lock-discipline]

                def fine(self):
                    with self._lock:
                        self._queue.append(1)  # checks: ignore[lock-discipline]
            """,
            self.RULE,
        )
        # The helper's ignore is consumed; the locked line's ignore is stale.
        assert [finding.rule for finding in findings] == [UNUSED_SUPPRESSION]
        assert findings[0].line == 15


# ----------------------------------------------------------------------
# wire-format-drift (the PR 4/5 corners/analyses/tran-targets drift)
# ----------------------------------------------------------------------
class TestWireFormat:
    RULE = [WireFormatRule()]

    CLEAN = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class SizingRequest:
        topology: str
        corners: tuple = ()
        id: str = "req-0"
        deadline_ms: float = 0.0

        def to_json(self):
            return {"topology": self.topology, "corners": list(self.corners), "id": self.id}

        @classmethod
        def from_json(cls, data):
            return cls(
                topology=data["topology"],
                corners=tuple(data["corners"]),
                id=data["id"],
            )

    class ResultCache:
        @staticmethod
        def key(request):
            return (request.topology, request.corners)
    """

    def test_clean_fixture(self, tmp_path):
        assert check_source(tmp_path, self.CLEAN, self.RULE) == []

    def test_field_missing_from_cache_key_flagged(self, tmp_path):
        # Minimal repro of the PR 4 hazard: `corners` serialized but not
        # part of the cache key -> requests differing only in corners
        # would collide and transfer each other's verdicts.
        source = self.CLEAN.replace(
            "return (request.topology, request.corners)",
            "return (request.topology,)",
        )
        findings = check_source(tmp_path, source, self.RULE)
        assert len(findings) == 1
        assert "`corners`" in findings[0].message
        assert "ResultCache.key" in findings[0].message

    def test_field_missing_from_serializers_flagged(self, tmp_path):
        source = self.CLEAN.replace(
            '"corners": list(self.corners), ', ""
        ).replace("corners=tuple(data[\"corners\"]),\n", "")
        findings = check_source(tmp_path, source, self.RULE)
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("SizingRequest.to_json" in message for message in messages)
        assert any("SizingRequest.from_json" in message for message in messages)

    def test_reference_via_string_collection_constant(self, tmp_path):
        # The live tree references transient fields through constants
        # (`for name in TRAN_METRIC_NAMES`); the rule must see through it.
        findings = check_source(
            tmp_path,
            """
            from dataclasses import dataclass

            FIELD_NAMES = ("topology", "corners")

            @dataclass(frozen=True)
            class SizingRequest:
                topology: str
                corners: tuple = ()

                def to_json(self):
                    return {name: getattr(self, name) for name in FIELD_NAMES}

                @classmethod
                def from_json(cls, data):
                    return cls(**{name: data[name] for name in FIELD_NAMES})

            class ResultCache:
                @staticmethod
                def key(request):
                    return tuple(getattr(request, name) for name in FIELD_NAMES)
            """,
            self.RULE,
        )
        assert findings == []

    def test_no_request_class_means_no_findings(self, tmp_path):
        assert check_source(tmp_path, "x = 1\n", self.RULE) == []


# ----------------------------------------------------------------------
# rng-determinism (explicit-Generator protocol)
# ----------------------------------------------------------------------
class TestRngDeterminism:
    RULE = [RngDeterminismRule()]

    def test_module_level_np_random_call_flagged(self, tmp_path):
        # Minimal repro of the bug shape: process-global RNG state.
        findings = check_source(
            tmp_path,
            """
            import numpy as np

            def jitter(widths):
                return widths + np.random.rand(len(widths))
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "np.random.rand" in findings[0].message

    def test_stdlib_random_import_flagged(self, tmp_path):
        findings = check_source(tmp_path, "import random\n", self.RULE)
        assert len(findings) == 1
        assert "stdlib `random`" in findings[0].message

    def test_legacy_numpy_random_import_flagged(self, tmp_path):
        findings = check_source(
            tmp_path, "from numpy.random import shuffle\n", self.RULE
        )
        assert len(findings) == 1
        assert "numpy.random.shuffle" in findings[0].message

    def test_time_derived_seed_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import time
            import numpy as np

            rng = np.random.default_rng(int(time.time()))
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "time.time" in findings[0].message

    def test_explicit_generator_protocol_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import zlib
            import numpy as np

            def make_rng(request_id: str) -> np.random.Generator:
                return np.random.default_rng(zlib.crc32(request_id.encode()))

            def sample(rng: np.random.Generator) -> float:
                return float(rng.normal())
            """,
            self.RULE,
        )
        assert findings == []

    def test_suppressed_hit(self, tmp_path):
        findings = check_source(
            tmp_path,
            "import random  # checks: ignore[rng-determinism]\n",
            self.RULE,
        )
        assert findings == []


# ----------------------------------------------------------------------
# json-safety (the PR 3 bare-Infinity solver-history bug)
# ----------------------------------------------------------------------
class TestJsonSafety:
    RULE = [JsonSafetyRule()]

    def test_bare_dumps_flagged(self, tmp_path):
        # Minimal repro of the historical bug: an inf objective reaches
        # json.dumps, which would emit bare `Infinity` (not JSON).
        findings = check_source(
            tmp_path,
            """
            import json

            def history_line(best_objective: float) -> str:
                return json.dumps({"best": best_objective})
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "allow_nan" in findings[0].message

    def test_allow_nan_false_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import json

            def emit(payload) -> str:
                return json.dumps(payload, sort_keys=True, allow_nan=False)
            """,
            self.RULE,
        )
        assert findings == []

    def test_allow_nan_true_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            "import json\njson.dumps({}, allow_nan=True)\n",
            self.RULE,
        )
        assert len(findings) == 1
        assert "does not pin" in findings[0].message

    def test_from_import_alias_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            "from json import dumps as to_text\nto_text({})\n",
            self.RULE,
        )
        assert len(findings) == 1

    def test_json_dump_to_file_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import io
            import json

            json.dump({}, io.StringIO())
            """,
            self.RULE,
        )
        assert len(findings) == 1

    def test_enforcement_is_real(self):
        # The convention the rule enforces actually catches the PR 3 bug.
        with pytest.raises(ValueError):
            json.dumps({"best": float("inf")}, allow_nan=False)


# ----------------------------------------------------------------------
# Pass 1: the project-wide symbol table / call graph
# ----------------------------------------------------------------------
class TestProjectGraph:
    PKG = {
        "pkg/__init__.py": """
            from .solvers import dense_solve
            """,
        "pkg/solvers.py": """
            import numpy as np

            def dense_solve(matrix, rhs):
                return np.linalg.solve(matrix, rhs)
            """,
        "pkg/callers.py": """
            from pkg import dense_solve
            from pkg import solvers as sv

            class Runner:
                def run(self, matrix, rhs):
                    return self.helper(matrix, rhs)

                def helper(self, matrix, rhs):
                    return dense_solve(matrix, rhs)

            def via_alias(matrix, rhs):
                return sv.dense_solve(matrix, rhs)

            def via_reexport(matrix, rhs):
                return dense_solve(matrix, rhs)
            """,
    }

    @staticmethod
    def resolved_calls(graph, qualname):
        summary = graph.functions[qualname]
        return [site.target for site in summary.calls if site.target is not None]

    def test_import_as_resolves_module_alias(self, tmp_path):
        graph = build_graph(tmp_path, self.PKG)
        assert self.resolved_calls(graph, "pkg.callers.via_alias") == [
            "pkg.solvers.dense_solve"
        ]

    def test_reexport_resolves_through_package_init(self, tmp_path):
        # `from pkg import dense_solve` must chase pkg/__init__.py back
        # to the defining module, not invent a `pkg.dense_solve` symbol.
        graph = build_graph(tmp_path, self.PKG)
        assert self.resolved_calls(graph, "pkg.callers.via_reexport") == [
            "pkg.solvers.dense_solve"
        ]

    def test_self_method_call_resolves_to_own_class(self, tmp_path):
        graph = build_graph(tmp_path, self.PKG)
        assert self.resolved_calls(graph, "pkg.callers.Runner.run") == [
            "pkg.callers.Runner.helper"
        ]

    def test_transitive_solve_closure_crosses_modules(self, tmp_path):
        graph = build_graph(tmp_path, self.PKG)
        assert graph.functions["pkg.solvers.dense_solve"].t_solves == ()
        # Runner.run -> Runner.helper -> dense_solve, two hops with the
        # last one in another module.
        assert graph.functions["pkg.callers.Runner.run"].t_solves == (
            "pkg.callers.Runner.helper",
            "pkg.solvers.dense_solve",
        )


# ----------------------------------------------------------------------
# lock-order (cycles, reacquisition, blocking work under a lock)
# ----------------------------------------------------------------------
class TestLockOrder:
    RULE = [LockOrderRule()]

    def test_two_lock_cycle_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            self.RULE,
        )
        assert len(findings) == 2  # one per conflicting site
        assert all(finding.rule == "lock-order" for finding in findings)
        assert all("cycle" in finding.message for finding in findings)

    def test_consistent_order_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """,
            self.RULE,
        )
        assert findings == []

    def test_interprocedural_cycle_two_calls_deep(self, tmp_path):
        # The acceptance shape: the nested acquisition happens two
        # resolved calls away from the `with` that holds the first lock.
        findings = check_source(
            tmp_path,
            """
            import threading

            class Engine:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def outer(self):
                    with self._a:
                        self.mid()

                def mid(self):
                    self.deep()

                def deep(self):
                    with self._b:
                        pass

                def reversed_order(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            self.RULE,
        )
        cycles = [f for f in findings if "cycle" in f.message]
        assert len(cycles) == 2
        interprocedural = [f for f in cycles if "via" in f.message]
        assert len(interprocedural) == 1
        assert "Engine.mid -> Engine.deep" in interprocedural[0].message

    def test_nonreentrant_reacquisition_flagged_rlock_clean(self, tmp_path):
        source = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.{lock_type}()

            def get(self):
                with self._lock:
                    return self.peek()

            def peek(self):
                with self._lock:
                    return 1
        """
        findings = check_source(tmp_path, source.format(lock_type="Lock"), self.RULE)
        assert len(findings) == 1
        assert "reacquired" in findings[0].message
        assert check_source(tmp_path, source.format(lock_type="RLock"), self.RULE) == []

    def test_blocking_call_under_lock_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading
            import time

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()

                def snooze(self):
                    with self._lock:
                        time.sleep(0.1)
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        assert "Stats._lock" in findings[0].message

    def test_interprocedural_blocking_two_calls_deep(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading
            import time

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.mid()

                def mid(self):
                    self.deep()

                def deep(self):
                    time.sleep(0.1)
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "via Engine.mid -> Engine.deep" in findings[0].message

    def test_blocking_outside_lock_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading
            import time

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()

                def snooze(self):
                    with self._lock:
                        pending = True
                    if pending:
                        time.sleep(0.1)
            """,
            self.RULE,
        )
        assert findings == []

    def test_suppressed_hit_and_unused_suppression(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading
            import time

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()

                def snooze(self):
                    with self._lock:
                        time.sleep(0.1)  # checks: ignore[lock-order]

                def fine(self):
                    with self._lock:
                        pass  # checks: ignore[lock-order]
            """,
            self.RULE,
        )
        assert [finding.rule for finding in findings] == [UNUSED_SUPPRESSION]


# ----------------------------------------------------------------------
# fork-safety (process-shared objects stay plain data)
# ----------------------------------------------------------------------
class TestForkSafety:
    RULE = [ForkSafetyRule()]

    def test_direct_lock_attribute_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading

            class Bundle:  # checks: process-shared
                def __init__(self):
                    self._lock = threading.Lock()
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "threading.Lock" in findings[0].message
        assert "Bundle -> _lock" in findings[0].message

    def test_transitive_attribute_typing_across_files(self, tmp_path):
        # The lock hides one class and one module away from the marker.
        findings = check_package(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/inner.py": """
                    import threading

                    class Inner:
                        def __init__(self):
                            self._guard = threading.Lock()
                    """,
                "pkg/outer.py": """
                    from pkg.inner import Inner

                    class Bundle:  # checks: process-shared
                        def __init__(self):
                            self.inner = Inner()
                    """,
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "Bundle -> inner: Inner -> _guard" in findings[0].message

    def test_bound_method_and_generator_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            class Model:  # checks: process-shared
                def __init__(self, items):
                    self.hook = self.step
                    self.stream = (item for item in items)

                def step(self):
                    return 1
            """,
            self.RULE,
        )
        messages = " ".join(finding.message for finding in findings)
        assert len(findings) == 2
        assert "bound method" in messages
        assert "generator" in messages

    def test_plain_data_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import numpy as np

            class Tables:  # checks: process-shared
                def __init__(self, grid):
                    self.grid = np.asarray(grid)
                    self.names = ("id", "gm")
            """,
            self.RULE,
        )
        assert findings == []

    def test_http_server_socket_flagged(self, tmp_path):
        # A worker entrypoint must never inherit the parent's listener.
        findings = check_source(
            tmp_path,
            """
            from http.server import ThreadingHTTPServer

            class WorkerContext:  # checks: process-shared
                def __init__(self, handler):
                    self.server = ThreadingHTTPServer(("", 0), handler)
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "listening HTTP server" in findings[0].message
        assert "WorkerContext -> server" in findings[0].message

    def test_sqlite_connection_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import sqlite3

            class Cache:  # checks: process-shared
                def __init__(self, path):
                    self._conn = sqlite3.connect(path)
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "sqlite3 connection" in findings[0].message

    def test_multiprocessing_queue_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import multiprocessing

            class Pool:  # checks: process-shared
                def __init__(self):
                    self.inbox = multiprocessing.Queue()
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "multiprocessing.Queue" in findings[0].message

    def test_batcher_queue_flagged_transitively(self, tmp_path):
        # The satellite pin: parent's MicroBatcher-shaped object (its
        # internal queue.Queue and dispatcher thread) caught through the
        # project-class descent, not by naming the class in the rule.
        findings = check_package(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/batcher.py": """
                    import queue
                    import threading

                    class MicroBatcher:
                        def __init__(self):
                            self._queue = queue.Queue()
                            self._thread = threading.Thread(target=self._loop)

                        def _loop(self):
                            pass
                    """,
                "pkg/worker.py": """
                    from pkg.batcher import MicroBatcher

                    class WorkerContext:  # checks: process-shared
                        def __init__(self):
                            self.batcher = MicroBatcher()
                    """,
            },
            self.RULE,
        )
        messages = " ".join(finding.message for finding in findings)
        assert len(findings) == 2
        assert "WorkerContext -> batcher: MicroBatcher -> _queue" in messages
        assert "WorkerContext -> batcher: MicroBatcher -> _thread" in messages

    def test_module_state_under_size_batch_is_warning(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            _CACHE = {}

            def remember(key, value):
                _CACHE[key] = value

            class SizingEngine:
                def size_batch(self, requests):
                    for request in requests:
                        remember(request, 1)
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "_CACHE" in findings[0].message
        assert "size_batch" in findings[0].message


# ----------------------------------------------------------------------
# hot-loop (vectorization discipline in marked kernels)
# ----------------------------------------------------------------------
class TestHotLoop:
    RULE = [HotLoopRule()]

    def test_per_item_solve_in_loop_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import numpy as np

            def solve_each(mats, rhs):  # checks: hot-path
                outs = []
                for m, r in zip(mats, rhs):
                    outs.append(np.linalg.solve(m, r))
                return outs
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "per-item" in findings[0].message

    def test_chunked_stacked_solve_clean(self, tmp_path):
        # The run_ac_many shape: a chunking loop whose solve consumes
        # loop-invariant locals staged by gather ops must stay clean.
        findings = check_source(
            tmp_path,
            """
            import numpy as np

            def solve_chunks(mats, rhs):  # checks: hot-path
                outs = []
                for start in range(0, len(mats), 64):
                    m_stack = np.stack(mats[start : start + 64])
                    r_stack = np.stack(rhs[start : start + 64])
                    outs.append(np.linalg.solve(m_stack, r_stack))
                return outs
            """,
            self.RULE,
        )
        assert findings == []

    def test_allocation_inside_solve_loop_flagged(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import numpy as np

            def newton(mats, x):  # checks: hot-path
                for _ in range(10):
                    f = np.zeros(len(x))
                    x = x - np.linalg.solve(mats, f)
                return x
            """,
            self.RULE,
        )
        assert len(findings) == 1
        assert "np.zeros" in findings[0].message
        assert "preallocate" in findings[0].message

    def test_allocation_in_non_solving_loop_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import numpy as np

            def stage(batches):  # checks: hot-path
                staged = []
                for batch in batches:
                    staged.append(np.zeros(len(batch)))
                return staged
            """,
            self.RULE,
        )
        assert findings == []

    def test_interprocedural_per_item_solve_flagged(self, tmp_path):
        findings = check_package(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/solvers.py": """
                    import numpy as np

                    def dense_solve(matrix, rhs):
                        return np.linalg.solve(matrix, rhs)
                    """,
                "pkg/hot.py": """
                    from pkg.solvers import dense_solve

                    def drive(mats, rhs):  # checks: hot-path
                        outs = []
                        for m, r in zip(mats, rhs):
                            outs.append(dense_solve(m, r))
                        return outs
                    """,
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "solvers.dense_solve" in findings[0].message
        assert "reaches a dense solve" in findings[0].message

    def test_sanctioned_solve_layer_call_clean(self, tmp_path):
        # The linsolve entry point is the blessed stacked-solve layer:
        # handing it per-group chunk arrays from a hot-path loop is the
        # intended shape, not a per-item regression.
        findings = check_package(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/spice/__init__.py": "",
                "repro/spice/linsolve.py": """
                    import numpy as np

                    def solve_stacked(jac, rhs, pattern=None):
                        return np.linalg.solve(jac, rhs[..., None])[..., 0]
                    """,
                "repro/spice/dc.py": """
                    from repro.spice.linsolve import solve_stacked

                    def newton_groups(groups):  # checks: hot-path
                        outs = []
                        for jac, rhs in groups:
                            outs.append(solve_stacked(jac, rhs))
                        return outs
                    """,
            },
            self.RULE,
        )
        assert findings == []

    def test_sanctioned_loop_still_counts_for_allocations(self, tmp_path):
        # The sanction only silences the transitive-solve finding: a loop
        # around solve_stacked is still a solve loop, so fresh work-array
        # allocations inside it keep getting flagged.
        findings = check_package(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/spice/__init__.py": "",
                "repro/spice/linsolve.py": """
                    import numpy as np

                    def solve_stacked(jac, rhs, pattern=None):
                        return np.linalg.solve(jac, rhs[..., None])[..., 0]
                    """,
                "repro/spice/dc.py": """
                    import numpy as np

                    from repro.spice.linsolve import solve_stacked

                    def newton_groups(groups):  # checks: hot-path
                        outs = []
                        for jac, rhs in groups:
                            scratch = np.empty(rhs.shape)
                            outs.append(solve_stacked(jac, rhs + scratch))
                        return outs
                    """,
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "np.empty" in findings[0].message

    def test_except_handler_fallback_exempt(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import numpy as np

            def robust(mats, rhs):  # checks: hot-path
                try:
                    return np.linalg.solve(mats, rhs)
                except np.linalg.LinAlgError:
                    outs = []
                    for m, r in zip(mats, rhs):
                        outs.append(np.linalg.solve(m, r))
                    return outs
            """,
            self.RULE,
        )
        assert findings == []

    def test_unmarked_function_not_checked(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import numpy as np

            def reference(mats, rhs):
                return [np.linalg.solve(m, r) for m, r in zip(mats, rhs)]
            """,
            self.RULE,
        )
        assert findings == []

    def test_suppressed_hit_and_unused_suppression(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import numpy as np

            def solve_each(mats, rhs):  # checks: hot-path
                outs = []
                for m, r in zip(mats, rhs):
                    outs.append(np.linalg.solve(m, r))  # checks: ignore[hot-loop]
                return outs

            def stacked(mats, rhs):  # checks: hot-path
                return np.linalg.solve(mats, rhs)  # checks: ignore[hot-loop]
            """,
            self.RULE,
        )
        assert [finding.rule for finding in findings] == [UNUSED_SUPPRESSION]


# ----------------------------------------------------------------------
# Baseline, severities, --fix, --changed-only (the CLI workflow)
# ----------------------------------------------------------------------
class TestBaselineAndSeverity:
    DIRTY = "import json\njson.dumps({})\n"

    def test_write_then_apply_baseline_grandfathers(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.DIRTY)
        baseline = tmp_path / "baseline.json"

        assert checks_main([str(dirty)]) == 1
        assert (
            checks_main([str(dirty), "--baseline", str(baseline), "--write-baseline"])
            == 0
        )
        assert checks_main([str(dirty), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr()
        assert "1 grandfathered" in out.err

    def test_new_finding_not_in_baseline_fails(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.DIRTY)
        baseline = tmp_path / "baseline.json"
        assert (
            checks_main([str(dirty), "--baseline", str(baseline), "--write-baseline"])
            == 0
        )
        dirty.write_text(self.DIRTY + "import random\n")
        assert checks_main([str(dirty), "--baseline", str(baseline)]) == 1
        capsys.readouterr()

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert checks_main([str(clean), "--baseline", str(tmp_path / "no.json")]) == 2
        capsys.readouterr()

    def test_warnings_pass_by_default_fail_under_strict(self, tmp_path, capsys):
        fixture = tmp_path / "engine.py"
        fixture.write_text(
            textwrap.dedent(
                """
                _CACHE = {}

                class SizingEngine:
                    def size_batch(self, requests):
                        _CACHE["latest"] = requests
                """
            )
        )
        assert checks_main([str(fixture)]) == 0
        assert checks_main([str(fixture), "--strict"]) == 1
        capsys.readouterr()

    def test_report_severities_and_grandfathered_in_json(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.DIRTY)
        out = tmp_path / "report.json"
        assert checks_main([str(dirty), "--output", str(out)]) == 1
        payload = json.loads(out.read_text())
        assert payload["severities"] == {"error": 1}
        assert payload["grandfathered"] == 0
        assert payload["findings"][0]["severity"] == "error"
        capsys.readouterr()


class TestFix:
    SOURCE = """
    import json

    def emit(payload):
        return json.dumps(payload, allow_nan=False)  # checks: ignore[json-safety]

    def bad(payload):
        return json.dumps(payload)  # checks: ignore[json-safety]
    """

    def test_fix_removes_stale_keeps_live(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        fixture = tmp_path / "fixture.py"
        fixture.write_text(textwrap.dedent(self.SOURCE))
        assert checks_main([str(fixture), "--fix"]) == 0
        text = fixture.read_text()
        # The stale ignore on the allow_nan=False line is deleted; the
        # ignore still excusing a real finding survives.
        lines = text.splitlines()
        assert lines[4] == "    return json.dumps(payload, allow_nan=False)"
        assert "# checks: ignore[json-safety]" in lines[7]
        capsys.readouterr()

    def test_default_is_check_only(self, tmp_path, capsys):
        fixture = tmp_path / "fixture.py"
        original = textwrap.dedent(self.SOURCE)
        fixture.write_text(original)
        assert checks_main([str(fixture)]) == 1  # the unused suppression
        assert fixture.read_text() == original
        capsys.readouterr()


@pytest.mark.skipif(shutil.which("git") is None, reason="git not available")
class TestChangedOnly:
    def _git(self, cwd, *argv):
        subprocess.run(
            ["git", *argv],
            cwd=cwd,
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(cwd),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )

    def test_changed_file_uses_full_symbol_table(self, tmp_path, capsys, monkeypatch):
        # The finding in the changed file is interprocedural: it needs
        # `dense_solve` resolved from the *unchanged* module, proving the
        # symbol table still covers the full tree.  The unchanged module
        # carries its own finding, which must NOT be reported.
        write_package(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/solvers.py": """
                    import json
                    import numpy as np

                    def dense_solve(matrix, rhs):
                        return np.linalg.solve(matrix, rhs)

                    def emit(payload):
                        return json.dumps(payload)
                    """,
                "pkg/hot.py": """
                    from pkg.solvers import dense_solve

                    def drive(mats, rhs):
                        return dense_solve(mats, rhs)
                    """,
            },
        )
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")

        (tmp_path / "pkg" / "hot.py").write_text(
            textwrap.dedent(
                """
                from pkg.solvers import dense_solve

                def drive(mats, rhs):  # checks: hot-path
                    outs = []
                    for m, r in zip(mats, rhs):
                        outs.append(dense_solve(m, r))
                    return outs
                """
            )
        )
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "report.json"
        code = checks_main(
            [str(tmp_path / "pkg"), "--changed-only", "HEAD", "--output", str(out)]
        )
        capsys.readouterr()
        assert code == 1
        payload = json.loads(out.read_text())
        paths = {finding["path"] for finding in payload["findings"]}
        assert paths == {str(Path("pkg") / "hot.py")}
        assert payload["counts"] == {"hot-loop": 1}
        # The interprocedural message proves cross-module resolution.
        assert "solvers.dense_solve" in payload["findings"][0]["message"]

    def test_unchanged_tree_reports_nothing(self, tmp_path, capsys, monkeypatch):
        write_package(
            tmp_path,
            {"pkg/__init__.py": "", "pkg/mod.py": "import json\njson.dumps({})\n"},
        )
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)
        assert checks_main([str(tmp_path / "pkg"), "--changed-only", "HEAD"]) == 0
        assert checks_main([str(tmp_path / "pkg")]) == 1
        capsys.readouterr()


# ----------------------------------------------------------------------
# Meta: the live tree is clean (the CI gate)
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_src_repro_is_clean_under_all_default_rules(self):
        package_root = Path(repro.__file__).resolve().parent
        report = run_checks([package_root], list(DEFAULT_RULES))
        assert report.findings == [], "\n".join(
            finding.format() for finding in report.findings
        )
        assert report.files_checked > 50
