"""Tests of the layout-in-the-loop parasitic evaluation (no-SPICE path)."""

import pytest

from repro.core.layout import ParasiticEstimate, evaluate_with_parasitics
from repro.spice import run_ac, extract_metrics, solve_dc



class TestParasiticEstimate:
    def test_negative_caps_rejected(self):
        with pytest.raises(ValueError):
            ParasiticEstimate(node_caps={"out": -1e-15})
        with pytest.raises(ValueError):
            ParasiticEstimate(coupling_caps={("a", "b"): -1e-15})

    def test_empty_estimate_allowed(self):
        estimate = ParasiticEstimate()
        assert not estimate.node_caps and not estimate.coupling_caps


class TestEvaluateWithParasitics:
    def test_zero_parasitics_reproduce_verification_metrics(self, five_t, five_t_measurement):
        metrics = evaluate_with_parasitics(five_t, five_t_measurement, ParasiticEstimate())
        reference = five_t_measurement.metrics
        assert metrics.gain_db == pytest.approx(reference.gain_db, abs=0.05)
        assert metrics.f3db_hz == pytest.approx(reference.f3db_hz, rel=0.02)
        assert metrics.ugf_hz == pytest.approx(reference.ugf_hz, rel=0.02)

    def test_output_load_parasitic_cuts_bandwidth(self, five_t, five_t_measurement):
        heavy = ParasiticEstimate(node_caps={"out": 500e-15})  # doubles CL
        metrics = evaluate_with_parasitics(five_t, five_t_measurement, heavy)
        reference = five_t_measurement.metrics
        assert metrics.f3db_hz == pytest.approx(reference.f3db_hz / 2.0, rel=0.1)
        assert metrics.gain_db == pytest.approx(reference.gain_db, abs=0.1)

    def test_matches_full_spice_reference(self, five_t, five_t_measurement):
        """The no-SPICE Mason path must agree with re-simulating the
        parasitic-laden netlist (the expensive route it replaces)."""
        estimate = ParasiticEstimate(
            node_caps={"out": 120e-15, "d1": 40e-15},
            coupling_caps={("d1", "out"): 15e-15},
        )
        fast = evaluate_with_parasitics(five_t, five_t_measurement, estimate)

        reference_circuit = five_t_measurement.circuit.copy()
        reference_circuit.add_capacitor("CW1", "out", "0", 120e-15)
        reference_circuit.add_capacitor("CW2", "d1", "0", 40e-15)
        reference_circuit.add_capacitor("CW3", "d1", "out", 15e-15)
        dc = solve_dc(reference_circuit, initial_guess=five_t.initial_guess())
        slow = extract_metrics(run_ac(dc), "out")

        assert fast.gain_db == pytest.approx(slow.gain_db, abs=0.05)
        assert fast.f3db_hz == pytest.approx(slow.f3db_hz, rel=0.02)
        assert fast.ugf_hz == pytest.approx(slow.ugf_hz, rel=0.02)

    def test_works_on_two_stage(self, two_stage, two_stage_measurement):
        estimate = ParasiticEstimate(node_caps={"o1": 30e-15})
        metrics = evaluate_with_parasitics(two_stage, two_stage_measurement, estimate)
        assert metrics.is_valid()
        assert metrics.gain_db == pytest.approx(two_stage_measurement.metrics.gain_db, abs=0.2)
