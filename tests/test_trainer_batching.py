"""Extra tests for length-bucketed batching and flow robustness paths."""

import numpy as np

from repro.transformer import SequencePair, make_batches


def _pairs(lengths):
    return [
        SequencePair(source=tuple(range(4, 4 + n)), target=tuple(range(4, 4 + n)))
        for n in lengths
    ]


class TestBucketedBatching:
    def test_all_pairs_present_once(self):
        pairs = _pairs([3, 9, 2, 7, 5, 4, 8, 6])
        rng = np.random.default_rng(0)
        batches = make_batches(pairs, batch_size=3, pad_id=0, bos_id=1, eos_id=2, rng=rng)
        seen = []
        for batch in batches:
            for row, pad_row in zip(batch.src, batch.src_pad, strict=True):
                seen.append(tuple(int(v) for v, p in zip(row, pad_row, strict=True) if not p))
        assert sorted(seen) == sorted(p.source for p in pairs)

    def test_buckets_group_similar_lengths(self):
        # With wildly mixed lengths, bucketing must prevent the worst-case
        # padding: no batch may pair the shortest with the longest.
        pairs = _pairs([2] * 8 + [50] * 8)
        batches = make_batches(pairs, batch_size=8, pad_id=0, bos_id=1, eos_id=2)
        widths = sorted(batch.src.shape[1] for batch in batches)
        assert widths == [2, 50]

    def test_shuffling_changes_batch_composition(self):
        pairs = _pairs(list(range(2, 34)))
        a = make_batches(pairs, 4, 0, 1, 2, rng=np.random.default_rng(1))
        b = make_batches(pairs, 4, 0, 1, 2, rng=np.random.default_rng(2))
        first_a = [batch.src.shape for batch in a]
        first_b = [batch.src.shape for batch in b]
        # Same multiset of shapes (bucketing) ...
        assert sorted(first_a) == sorted(first_b)
        # ... but not necessarily the same order (shuffled batch order).
        total_a = [tuple(batch.src[0]) for batch in a]
        total_b = [tuple(batch.src[0]) for batch in b]
        assert total_a != total_b

    def test_eval_batching_deterministic(self):
        pairs = _pairs([5, 3, 8, 2])
        a = make_batches(pairs, 2, 0, 1, 2, rng=None)
        b = make_batches(pairs, 2, 0, 1, 2, rng=None)
        for batch_a, batch_b in zip(a, b, strict=True):
            np.testing.assert_array_equal(batch_a.src, batch_b.src)
            np.testing.assert_array_equal(batch_a.tgt_out, batch_b.tgt_out)

    def test_target_shift_alignment(self):
        pairs = [SequencePair(source=(5, 6), target=(7, 8, 9))]
        batch = make_batches(pairs, 1, 0, 1, 2)[0]
        # Decoder input: BOS then target; decoder output: target then EOS.
        np.testing.assert_array_equal(batch.tgt_in[0], [1, 7, 8, 9])
        np.testing.assert_array_equal(batch.tgt_out[0], [7, 8, 9, 2])
