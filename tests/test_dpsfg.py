"""Tests of DP-SFG construction, enumeration, Mason evaluation and
serialization -- including the paper's active-inductor running example."""

import numpy as np
import pytest

from repro.dpsfg import (
    MasonEvaluator,
    build_dpsfg,
    enumerate_paths,
    render_cycle,
    render_path,
    render_sequences,
    transfer_function,
)
from repro.dpsfg.expr import Atom, Reciprocal, capacitance, conductance, one, transconductance
from repro.spice import Circuit, run_ac, solve_dc
from repro.topologies import build_active_inductor

L = 180e-9
FREQS = np.logspace(3, 9, 13)


def small_signals_of(dc):
    return {m.name: dc.op(m.name).small_signal for m in dc.circuit.mosfets}


def mason_vs_mna_error(circuit, output_node):
    dc = solve_dc(circuit)
    sfg = build_dpsfg(circuit, output_node, small_signals_of(dc))
    h_mason = transfer_function(sfg, FREQS)
    h_mna = run_ac(dc, FREQS).transfer(output_node)
    return float(np.max(np.abs(h_mason - h_mna) / np.maximum(np.abs(h_mna), 1e-30)))


class TestExpressions:
    def test_lincomb_render_symbolic(self):
        expr = conductance("gdsM0") + capacitance("CdsM0") + transconductance("gmM0", -1.0)
        assert expr.render() == "gdsM0+sCdsM0-gmM0"

    def test_reciprocal_render(self):
        expr = Reciprocal(conductance("G") + capacitance("C"))
        assert expr.render() == "1/(G+sC)"

    def test_render_with_values(self):
        expr = conductance("gdsM0") + capacitance("CdsM0")
        text = expr.render({"gdsM0": 101e-6, "CdsM0": 0.9e-15})
        assert text == "101uS+s900aF"

    def test_collect_merges_duplicates(self):
        expr = conductance("g") + conductance("g")
        collected = expr.collect()
        assert len(collected.terms) == 1
        assert collected.terms[0][0] == 2.0

    def test_collect_drops_cancelled(self):
        expr = conductance("g") + (-conductance("g"))
        assert expr.collect().is_empty()

    def test_evaluate(self):
        expr = conductance("g") + capacitance("c")
        value = expr.evaluate(2j, {"g": 3.0, "c": 0.5})
        assert value == pytest.approx(3.0 + 1j)

    def test_reciprocal_evaluate(self):
        expr = Reciprocal(conductance("g"))
        assert expr.evaluate(0, {"g": 4.0}) == pytest.approx(0.25)

    def test_missing_parameter_raises(self):
        expr = conductance("g")
        with pytest.raises(KeyError):
            expr.evaluate(0, {})

    def test_unit_weight(self):
        assert one().render() == "1"
        assert one().evaluate(1j, {}) == pytest.approx(1.0)

    def test_atom_kind_validation(self):
        with pytest.raises(ValueError):
            Atom("x", "bogus")


class TestActiveInductorExample:
    """The Fig. 2 / Fig. 4 running example, checked structurally."""

    @pytest.fixture(scope="class")
    def sfg(self):
        circuit = build_active_inductor()
        dc = solve_dc(circuit)
        return build_dpsfg(circuit, "1", small_signals_of(dc))

    def test_z1_matches_equation_2(self, sfg):
        z1 = sfg.weight("I1", "V1")
        assert isinstance(z1, Reciprocal)
        assert z1.inner.parameter_names() == {"C", "gdsM", "CdsM", "CgsM"}

    def test_z2_matches_equation_2(self, sfg):
        z2 = sfg.weight("I2", "V2")
        assert isinstance(z2, Reciprocal)
        assert z2.inner.parameter_names() == {"C", "CgsM", "G"}

    def test_negative_gm_self_loop(self, sfg):
        weight = sfg.weight("V1", "I1")
        terms = dict((atom.name, coef) for coef, atom in weight.collect().terms)
        assert terms == {"gmM": -1.0}

    def test_gate_coupling_edge_includes_gm(self, sfg):
        weight = sfg.weight("V2", "I1")
        names = {atom.name: coef for coef, atom in weight.collect().terms}
        assert names["gmM"] == 1.0
        assert names["C"] == 1.0
        assert names["CgsM"] == 1.0

    def test_forward_path_structure(self, sfg):
        inventory = enumerate_paths(sfg)
        paths = inventory.paths_by_source["Iin"]
        assert ["Iin", "I1", "V1", "Vout"] in paths

    def test_cycle_count(self, sfg):
        inventory = enumerate_paths(sfg)
        # The paper's Fig. 4 shows two loops: the -gm self-loop at node 1
        # and the C/Cgs coupling loop through node 2.
        assert inventory.n_cycles == 2

    def test_sequences_match_fig4_style(self, sfg):
        lines = render_sequences(sfg)
        assert lines[0] == "Iin 1 I1 1/(sC+gdsM+sCdsM+sCgsM) V1 1 Vout"
        assert any("-gmM" in line for line in lines)
        assert any("1/(G+sC+sCgsM)" in line for line in lines)

    def test_sequences_with_values_substituted(self, sfg):
        env = {k: v for k, v in sfg.values.items() if k != "C" and k != "G"}
        lines = render_sequences(sfg, env=env)
        assert "gdsM" not in lines[0]
        assert "sC+" in lines[0]  # load cap stays symbolic as in Fig. 4

    def test_mason_matches_mna(self):
        assert mason_vs_mna_error(build_active_inductor(), "1") < 1e-10

    def test_inductive_input_impedance(self, sfg):
        """The active inductor's port impedance must rise with frequency
        over some band -- the circuit's defining behaviour."""
        evaluator = MasonEvaluator(sfg)
        freqs = np.logspace(6, 9, 31)
        z = np.array([evaluator.transfer(2j * np.pi * f) for f in freqs])
        magnitude = np.abs(z)
        assert magnitude[-5] > magnitude[0]


class TestMasonEquivalence:
    def test_rc_ladder(self):
        circuit = Circuit("ladder")
        circuit.add_vsource("VIN", "in", "0", 0.0, ac=1.0)
        circuit.add_resistor("R1", "in", "n1", 1e3)
        circuit.add_resistor("R2", "n1", "n2", 2e3)
        circuit.add_capacitor("C1", "n1", "0", 1e-12)
        circuit.add_capacitor("C2", "n2", "0", 2e-12)
        assert mason_vs_mna_error(circuit, "n2") < 1e-10

    def test_5t_ota(self, five_t):
        circuit = five_t.build({"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6})
        assert mason_vs_mna_error(circuit, "out") < 1e-9

    def test_cm_ota(self, cm_ota):
        circuit = cm_ota.build({"M1": 1.0e-6, "M3": 15e-6, "M5": 4e-6, "M6": 2.0e-6, "M8": 1.0e-6})
        assert mason_vs_mna_error(circuit, "out") < 1e-9

    def test_two_stage_ota(self, two_stage):
        circuit = two_stage.build({"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6, "M6": 5e-6, "M7": 6e-6})
        assert mason_vs_mna_error(circuit, "out") < 1e-9

    def test_mason_equals_direct_graph_solve(self, five_t):
        """Mason's formula must agree with solving the SFG as a linear
        system -- an internal consistency check independent of MNA."""
        circuit = five_t.build({"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6})
        dc = solve_dc(circuit)
        sfg = build_dpsfg(circuit, "out", small_signals_of(dc))
        s = 2j * np.pi * 1e6
        env = sfg.merged_env()

        vertices = list(sfg.graph.nodes)
        index = {v: i for i, v in enumerate(vertices)}
        matrix = np.eye(len(vertices), dtype=complex)
        rhs = np.zeros(len(vertices), dtype=complex)
        for vertex in vertices:
            if vertex in sfg.excitations:
                rhs[index[vertex]] = sfg.excitations[vertex]
                continue
            for pred in sfg.graph.predecessors(vertex):
                matrix[index[vertex], index[pred]] -= sfg.weight(pred, vertex).evaluate(s, env)
        direct = np.linalg.solve(matrix, rhs)[index[sfg.output]]

        mason = MasonEvaluator(sfg).transfer(s)
        assert mason == pytest.approx(direct, rel=1e-10)


class TestBuilderValidation:
    def test_floating_vsource_rejected(self):
        circuit = Circuit("bad")
        circuit.add_vsource("V1", "a", "b", 1.0, ac=1.0)
        circuit.add_resistor("R", "a", "b", 1e3)
        with pytest.raises(ValueError, match="grounded"):
            build_dpsfg(circuit, "a")

    def test_driven_output_rejected(self):
        circuit = Circuit("bad")
        circuit.add_vsource("V1", "a", "0", 1.0, ac=1.0)
        circuit.add_resistor("R", "a", "0", 1e3)
        with pytest.raises(ValueError, match="internal"):
            build_dpsfg(circuit, "a")

    def test_isolated_internal_node_rejected(self):
        circuit = Circuit("bad")
        circuit.add_vsource("V1", "a", "0", 1.0, ac=1.0)
        circuit.add_resistor("R", "a", "0", 1e3)
        circuit.add_isource("I1", "0", "b", 0.0, ac=1.0)
        with pytest.raises(ValueError, match="admittance"):
            build_dpsfg(circuit, "b")

    def test_output_node_named_out_gets_no_self_loop(self, five_t):
        circuit = five_t.build({"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6})
        sfg = build_dpsfg(circuit, "out")
        assert not sfg.graph.has_edge("Vout", "Vout")
        assert sfg.output == "Vout"

    def test_symbolic_graph_without_small_signals(self, five_t):
        circuit = five_t.build({"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6})
        sfg = build_dpsfg(circuit, "out")
        # Passive values known, device values absent.
        assert "CL" in sfg.values
        assert "gmM3" not in sfg.values
        assert "gmM3" in sfg.parameter_names()


class TestSerialization:
    def test_render_path_alternates_vertices_and_weights(self, five_t):
        circuit = five_t.build({"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6})
        sfg = build_dpsfg(circuit, "out")
        inventory = enumerate_paths(sfg)
        path = inventory.all_forward_paths()[0]
        text = render_path(sfg, path)
        fields = text.split(" ")
        assert len(fields) == 2 * len(path) - 1
        assert fields[0] == path[0]
        assert fields[-1] == path[-1]

    def test_render_cycle_closes(self, five_t):
        circuit = five_t.build({"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6})
        sfg = build_dpsfg(circuit, "out")
        cycle = enumerate_paths(sfg).loop_list[0]
        text = render_cycle(sfg, cycle)
        fields = text.split(" ")
        assert fields[0] == fields[-1] == cycle[0]

    def test_max_paths_truncation(self, five_t):
        sfg = five_t.symbolic_dpsfg()
        full = render_sequences(sfg)
        truncated = render_sequences(sfg, max_paths=2)
        inventory = enumerate_paths(sfg)
        assert len(truncated) == 2 + inventory.n_cycles
        assert len(full) == inventory.n_forward_paths + inventory.n_cycles

    def test_deterministic_ordering(self, five_t):
        sfg = five_t.symbolic_dpsfg()
        assert render_sequences(sfg) == render_sequences(sfg)
