"""Tests of the pluggable linear-solve layer (``repro.spice.linsolve``).

Three layers of guarantees:

* the dense backend is the bit-identity reference -- routing through
  :func:`solve_stacked` reproduces ``np.linalg.solve`` (and its per-item
  ``lstsq`` recovery on singular batches) bit for bit;
* the sparse backend agrees with the dense one to a pinned tolerance on
  every registered topology at every PVT corner across all three
  analyses, and shares the dense fallback semantics on singular systems;
* :class:`StructurePattern` is a faithful symbolic CSC skeleton for any
  coordinate set (property-tested), and the auto-dispatch policy only
  engages SuperLU above the size threshold.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice import (
    SPARSE_MIN_SIZE,
    StructurePattern,
    backend_mode,
    factorize_structure,
    pattern_from_matrices,
    solve_dc,
    solve_dc_many,
    solve_stacked,
    use_backend,
)
from repro.spice.linsolve import HAVE_SPARSE
from repro.topologies import available_topologies, topology_by_name

from tests.conftest import GOOD_WIDTHS

requires_sparse = pytest.mark.skipif(
    not HAVE_SPARSE, reason="scipy not installed; sparse backend degrades to dense"
)

#: Pinned sparse-vs-dense agreement on raw solve_stacked solutions.
#: Measured ~1e-16 relative on well-conditioned MNA-scale systems; two
#: orders of slack keep the pin meaningful without flaking.
SOLVE_RTOL = 1e-12

#: Pinned sparse-vs-dense agreement on end-to-end measured metrics
#: (Newton iteration and metric extraction amplify the solver-level ulps).
METRIC_RTOL = 1e-6


def _well_conditioned(shape, size, rng, complex_=False):
    """A diagonally dominated random stack: never singular, cond ~ O(1)."""
    jac = rng.standard_normal(shape + (size, size))
    if complex_:
        jac = jac + 1j * rng.standard_normal(shape + (size, size))
    jac = jac + size * np.eye(size)
    rhs = rng.standard_normal(shape + (size,))
    if complex_:
        rhs = rhs + 1j * rng.standard_normal(shape + (size,))
    return jac, rhs


def _full_pattern(size):
    rows, cols = np.mgrid[0:size, 0:size]
    return factorize_structure(rows.ravel(), cols.ravel(), size)


class TestDenseBackend:
    def test_matches_numpy_bitwise(self, rng):
        jac, rhs = _well_conditioned((3, 4), 9, rng)
        expected = np.linalg.solve(jac, rhs[..., None])[..., 0]
        assert np.array_equal(solve_stacked(jac, rhs), expected)

    def test_auto_stays_dense_below_threshold(self, rng):
        """A pattern alone must not change bits on paper-scale systems."""
        size = SPARSE_MIN_SIZE // 4
        jac, rhs = _well_conditioned((5,), size, rng)
        expected = np.linalg.solve(jac, rhs[..., None])[..., 0]
        assert backend_mode() == "auto"
        assert np.array_equal(solve_stacked(jac, rhs, _full_pattern(size)), expected)

    def test_dense_mode_pins_reference_at_any_size(self, rng):
        size = SPARSE_MIN_SIZE + 16
        jac, rhs = _well_conditioned((2,), size, rng)
        expected = np.linalg.solve(jac, rhs[..., None])[..., 0]
        with use_backend("dense"):
            assert np.array_equal(solve_stacked(jac, rhs, _full_pattern(size)), expected)

    def test_singular_batch_falls_back_per_item(self, rng):
        """One singular item must not poison the batch: the healthy items
        keep their ``np.linalg.solve`` answers, the singular one gets the
        scalar path's ``lstsq`` minimum-norm solution."""
        jac, rhs = _well_conditioned((3,), 4, rng)
        jac[1, 2] = jac[1, 3]  # duplicate row: exactly rank-deficient
        out = solve_stacked(jac, rhs)
        for k in (0, 2):
            assert np.array_equal(out[k], np.linalg.solve(jac[k], rhs[k]))
        expected = np.linalg.lstsq(jac[1], rhs[1], rcond=None)[0]
        assert np.array_equal(out[1], expected)

    def test_complex_systems_supported(self, rng):
        jac, rhs = _well_conditioned((2, 3), 7, rng, complex_=True)
        expected = np.linalg.solve(jac, rhs[..., None])[..., 0]
        assert np.array_equal(solve_stacked(jac, rhs), expected)


@requires_sparse
class TestSparseBackend:
    def test_parity_with_dense_real(self, rng):
        jac, rhs = _well_conditioned((4,), 24, rng)
        expected = solve_stacked(jac, rhs)
        with use_backend("sparse"):
            out = solve_stacked(jac, rhs, _full_pattern(24))
        np.testing.assert_allclose(out, expected, rtol=SOLVE_RTOL, atol=0.0)

    def test_parity_with_dense_complex(self, rng):
        jac, rhs = _well_conditioned((2, 3), 24, rng, complex_=True)
        expected = solve_stacked(jac, rhs)
        with use_backend("sparse"):
            out = solve_stacked(jac, rhs, _full_pattern(24))
        np.testing.assert_allclose(out, expected, rtol=SOLVE_RTOL, atol=0.0)

    def test_pattern_superset_with_explicit_zeros(self, rng):
        """The pattern may hold entries that are numerically zero in a
        given iterate (the structural superset the engines rely on)."""
        size = 16
        jac = np.diag(rng.standard_normal(size) + 3.0)[None]
        rhs = rng.standard_normal((1, size))
        with use_backend("sparse"):
            out = solve_stacked(jac, rhs, _full_pattern(size))
        np.testing.assert_allclose(
            out, np.linalg.solve(jac, rhs[..., None])[..., 0],
            rtol=SOLVE_RTOL, atol=0.0,
        )

    def test_singular_fallback_matches_dense_backend(self, rng):
        """SuperLU raises on an exactly singular factor; the recovery must
        agree with the dense backend's lstsq answer bit for bit (it runs
        the identical per-item dense code on the identical values)."""
        size = 6
        jac = np.zeros((2, size, size))
        jac[:] = rng.standard_normal((size, size))
        jac[:, size - 1, :] = 0.0  # zero row: an exact zero pivot, every item
        rhs = rng.standard_normal((2, size))
        expected = solve_stacked(jac, rhs)
        with use_backend("sparse"):
            out = solve_stacked(jac, rhs, _full_pattern(size))
        assert np.array_equal(out, expected)

    def test_auto_dispatch_threshold(self, rng, monkeypatch):
        """Auto engages SuperLU exactly at ``sparse_min_size`` unknowns."""
        import repro.spice.linsolve as linsolve

        calls = []
        real_splu = linsolve._splu
        monkeypatch.setattr(
            linsolve, "_splu", lambda m: calls.append(m.shape) or real_splu(m)
        )
        with use_backend(sparse_min_size=8):
            small_jac, small_rhs = _well_conditioned((2,), 7, rng)
            solve_stacked(small_jac, small_rhs, _full_pattern(7))
            assert calls == []
            big_jac, big_rhs = _well_conditioned((2,), 8, rng)
            solve_stacked(big_jac, big_rhs, _full_pattern(8))
            assert len(calls) == 2  # one factorization per stacked item
            calls.clear()
            solve_stacked(big_jac, big_rhs)  # no pattern: always dense
            assert calls == []
        with use_backend("dense", sparse_min_size=8):
            solve_stacked(big_jac, big_rhs, _full_pattern(8))
            assert calls == []

    def test_pattern_size_mismatch_rejected(self, rng):
        jac, rhs = _well_conditioned((1,), 5, rng)
        with use_backend("sparse"), pytest.raises(ValueError, match="size"):
            solve_stacked(jac, rhs, _full_pattern(6))


class TestBackendSelection:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown linsolve mode"):
            with use_backend("cholesky"):
                pass  # pragma: no cover

    def test_mode_restored_after_exception(self):
        assert backend_mode() == "auto"
        with pytest.raises(RuntimeError):
            with use_backend("dense"):
                assert backend_mode() == "dense"
                raise RuntimeError("boom")
        assert backend_mode() == "auto"

    def test_nested_overrides_unwind(self):
        with use_backend("dense"):
            with use_backend("sparse"):
                assert backend_mode() == "sparse"
            assert backend_mode() == "dense"
        assert backend_mode() == "auto"


# ----------------------------------------------------------------------
# StructurePattern: property-based symbolic-skeleton checks
# ----------------------------------------------------------------------
coordinate_sets = st.integers(min_value=2, max_value=12).flatmap(
    lambda size: st.tuples(
        st.just(size),
        st.lists(
            st.tuples(
                st.integers(0, size - 1), st.integers(0, size - 1)
            ),
            min_size=size,  # keep the diagonal coverable
            max_size=4 * size,
        ),
    )
)


class TestStructurePattern:
    @given(coordinate_sets)
    @settings(max_examples=60, deadline=None)
    def test_csc_skeleton_is_faithful(self, case):
        """Dedup, CSC ordering, and the flat gather map all agree with the
        dense matrix the coordinates came from."""
        size, coords = case
        coords = coords + [(d, d) for d in range(size)]  # duplicates welcome
        rows = np.array([r for r, _ in coords])
        cols = np.array([c for _, c in coords])
        pattern = factorize_structure(rows, cols, size)

        unique_pairs = {(int(r), int(c)) for r, c in zip(rows, cols)}
        assert pattern.nnz == len(unique_pairs)
        assert pattern.indptr[0] == 0 and pattern.indptr[-1] == pattern.nnz
        assert np.all(np.diff(pattern.indptr) >= 0)

        dense = np.arange(1.0, size * size + 1).reshape(size, size)
        data = dense.ravel()[pattern.flat]
        for col in range(size):
            span = slice(pattern.indptr[col], pattern.indptr[col + 1])
            col_rows = pattern.indices[span]
            assert np.all(np.diff(col_rows) > 0)  # strictly ascending, deduped
            assert {(int(r), col) for r in col_rows} == {
                p for p in unique_pairs if p[1] == col
            }
            assert np.array_equal(data[span], dense[col_rows, col])

    @given(coordinate_sets)
    @settings(max_examples=25, deadline=None)
    def test_diagonal_dominant_solve_parity(self, case):
        """Any pattern covering the matrix nonzeros solves to dense parity."""
        if not HAVE_SPARSE:
            pytest.skip("scipy not installed")
        size, coords = case
        coords = coords + [(d, d) for d in range(size)]
        matrix = np.zeros((size, size))
        for r, c in coords:
            matrix[r, c] = 0.1 * (r + 2) * (c + 3)
        matrix += size * np.eye(size)
        rhs = np.arange(1.0, size + 1)
        pattern = factorize_structure(
            np.array([r for r, _ in coords]), np.array([c for _, c in coords]), size
        )
        with use_backend("sparse"):
            out = solve_stacked(matrix[None], rhs[None], pattern)
        np.testing.assert_allclose(
            out[0], np.linalg.solve(matrix, rhs), rtol=1e-10, atol=0.0
        )

    def test_out_of_range_coordinates_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            StructurePattern(np.array([0, 5]), np.array([0, 1]), 5)
        with pytest.raises(ValueError, match="out of range"):
            StructurePattern(np.array([-1]), np.array([0]), 3)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            StructurePattern(np.array([0, 1]), np.array([0]), 3)

    def test_pattern_from_matrices_unions_nonzeros(self):
        g = np.zeros((2, 4, 4))
        c = np.zeros((4, 4))
        g[0, 0, 1] = 1.0
        g[1, 2, 3] = 2.0
        c[3, 0] = 5.0
        pattern = pattern_from_matrices(g, c)
        entries = set()
        for col in range(4):
            for row in pattern.indices[pattern.indptr[col]:pattern.indptr[col + 1]]:
                entries.add((int(row), col))
        assert entries == {(0, 1), (2, 3), (3, 0)}

    def test_pattern_from_matrices_requires_input(self):
        with pytest.raises(ValueError, match="at least one"):
            pattern_from_matrices()


# ----------------------------------------------------------------------
# End-to-end parity: every topology x corner x analysis, sparse vs dense
# ----------------------------------------------------------------------
@requires_sparse
class TestTopologyParity:
    """The engines' contract with the layer: forcing the sparse backend on
    the real MNA hot paths (DC Newton, the stacked AC sweep, transient
    stepping) reproduces the dense measurements to the pinned tolerance
    for every registered topology at every PVT corner."""

    @pytest.mark.parametrize("corner", ["tt", "ss", "ff"])
    @pytest.mark.parametrize("name", sorted(available_topologies()))
    def test_measurement_parity(self, name, corner):
        topology = topology_by_name(name)
        widths = GOOD_WIDTHS[name]
        analyses = ("dc", "ac", "tran")
        with use_backend("dense"):
            reference = topology.measure(widths, corner=corner, analyses=analyses)
        with use_backend("sparse"):
            result = topology.measure(widths, corner=corner, analyses=analyses)

        for node, voltage in reference.dc.node_voltages.items():
            assert result.dc.node_voltages[node] == pytest.approx(
                voltage, rel=METRIC_RTOL, abs=1e-12
            ), node
        np.testing.assert_allclose(
            result.metrics.as_array(),
            reference.metrics.as_array(),
            rtol=METRIC_RTOL,
        )
        np.testing.assert_allclose(
            result.metrics.tran_as_array(),
            reference.metrics.tran_as_array(),
            rtol=METRIC_RTOL,
        )

    def test_default_mode_unchanged_bits(self):
        """Under ``auto`` the paper-scale topologies keep the dense path:
        the layer's introduction changes no bits in the default flow."""
        topology = topology_by_name("5T-OTA")
        widths = GOOD_WIDTHS["5T-OTA"]
        with use_backend("dense"):
            reference = topology.measure(widths)
        result = topology.measure(widths)  # auto (the default)
        assert reference.dc.node_voltages == result.dc.node_voltages
        assert np.array_equal(reference.metrics.as_array(), result.metrics.as_array())


# ----------------------------------------------------------------------
# Mixed-size structure grouping through the bulk DC path
# ----------------------------------------------------------------------
@requires_sparse
class TestMixedSizeBatches:
    def test_solve_dc_many_groups_by_structure(self):
        """One bulk call over circuits of three different MNA sizes (plus
        a structure-sharing duplicate) must solve each against its own
        pattern -- parity with the scalar path per circuit."""
        five_t = topology_by_name("5T-OTA")
        fc = topology_by_name("FC-OTA")
        tele = topology_by_name("TELE-OTA")
        wider = dict(GOOD_WIDTHS["5T-OTA"], M3=20e-6)
        plans = [
            (five_t, GOOD_WIDTHS["5T-OTA"]),
            (fc, GOOD_WIDTHS["FC-OTA"]),
            (tele, GOOD_WIDTHS["TELE-OTA"]),
            (five_t, wider),
        ]
        circuits = [topo.build(w) for topo, w in plans]
        guesses = [topo.initial_guess() for topo, _ in plans]

        references = [
            solve_dc(topo.build(w), initial_guess=topo.initial_guess())
            for topo, w in plans
        ]
        with use_backend("sparse"):
            solutions = solve_dc_many(circuits, initial_guess=guesses)

        sizes = {len(sol.node_voltages) for sol in solutions}
        assert len(sizes) == 3  # three distinct structures went through
        for reference, solution in zip(references, solutions, strict=True):
            for node, voltage in reference.node_voltages.items():
                assert solution.node_voltages[node] == pytest.approx(
                    voltage, rel=METRIC_RTOL, abs=1e-12
                ), node

    def test_auto_mode_bulk_path_bit_identical(self):
        """Same mixed batch under the default auto mode: every circuit is
        below the sparse threshold, so the bulk path stays bit-identical
        to the scalar dense solves."""
        five_t = topology_by_name("5T-OTA")
        fc = topology_by_name("FC-OTA")
        plans = [(five_t, GOOD_WIDTHS["5T-OTA"]), (fc, GOOD_WIDTHS["FC-OTA"])]
        circuits = [topo.build(w) for topo, w in plans]
        guesses = [topo.initial_guess() for topo, _ in plans]
        references = [
            solve_dc(topo.build(w), initial_guess=topo.initial_guess())
            for topo, w in plans
        ]
        solutions = solve_dc_many(circuits, initial_guess=guesses)
        for reference, solution in zip(references, solutions, strict=True):
            assert reference.node_voltages == solution.node_voltages
